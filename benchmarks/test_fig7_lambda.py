"""Figure 7: the effect of LC's dirty-fraction threshold λ on TPC-C.

Paper (4K warehouses): λ=90% gives 3.1x the steady-state throughput of
λ=10% and 1.6x that of λ=50%, because a larger λ lets the SSD absorb
more dirty-page traffic: the cleaner issued 950/769/521 disk IOPS at
λ=10/50/90%.

What reproduces at compressed scale: the *mechanism* — λ sets the dirty
ceiling (λ=90% holds ~9x the dirty pages of λ=10%), and the cleaner does
strictly more write-back work at smaller λ.  The throughput *magnitude*
does not reproduce: with a 2,000-frame memory pool absorbing most
re-dirtying, the cleaner's inflow is ~25% of the disk budget rather than
the paper's ~95%, and dirty evictions that overflow a λ=90% SSD fall
back to direct disk writes, costing about what the λ=10% cleaner costs.
EXPERIMENTS.md discusses the deviation.
"""

from benchmarks.common import oltp_run, once
from repro.harness.report import format_table

LAMBDAS = (0.10, 0.50, 0.90)


def run_sweep():
    return {
        lam: oltp_run("tpcc", 4_000, "LC", dirty_threshold=lam)
        for lam in LAMBDAS
    }


def test_fig7_lambda_sweep(benchmark):
    results = once(benchmark, run_sweep)
    throughputs = {lam: r.steady_state_throughput()
                   for lam, r in results.items()}
    dirty = {lam: r.system.ssd_manager.dirty_frames
             for lam, r in results.items()}
    cleaner = {lam: r.system.ssd_manager.stats.cleaner_pages
               for lam, r in results.items()}
    rows = [
        [f"{lam:.0%}", f"{throughputs[lam]:,.0f}", f"{dirty[lam]:,}",
         f"{cleaner[lam]:,}"]
        for lam in LAMBDAS
    ]
    print()
    print(format_table(
        "Figure 7 — LC λ sweep, TPC-C 4K warehouses "
        "(paper: 90% ≈ 3.1x 10% tpmC; cleaner 521 vs 950 IOPS)",
        ["lambda", "steady tpmC", "dirty SSD pages", "cleaner pages"],
        rows))
    # Smaller λ forces more write-back work on the cleaner (the paper's
    # 950 vs 521 cleaner IOPS at λ=10% vs 90%).
    assert cleaner[0.10] > cleaner[0.90]
    # Larger λ never hurts throughput (the paper's direction, with a
    # tolerance reflecting the magnitude deviation documented above).
    assert throughputs[0.90] >= 0.95 * throughputs[0.10]
    assert throughputs[0.90] >= 0.95 * throughputs[0.50]


def test_fig7_cleaner_is_busy_at_low_lambda(benchmark):
    """At λ=10% the cleaner runs continuously — its sustained write-back
    rate is in the paper's hundreds-of-IOPS band."""
    result = once(benchmark, lambda: run_sweep()[0.10])
    manager = result.system.ssd_manager
    rate = manager.stats.cleaner_pages / result.duration
    print(f"\ncleaner wrote {manager.stats.cleaner_pages:,} pages "
          f"({rate:,.0f} pages/s; paper measured 950 IOPS at lambda=10%)")
    assert rate > 50
