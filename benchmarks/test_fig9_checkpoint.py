"""Figure 9: the effect of the checkpoint interval (TPC-E 20K).

Paper phenomena:

* (a) DW: once the SSD is filled, the long (5-hour) interval beats the
  40-minute one — frequent checkpoints flush pages that then bump useful
  pages out of the SSD.
* (b) LC (λ raised to 50%): the long interval is better early, but its
  first checkpoint has accumulated so many dirty SSD pages that the
  throughput dip is deep and long; checkpoints cost LC more than DW.
"""

from benchmarks.common import (
    CHECKPOINT_40MIN,
    CHECKPOINT_5H,
    oltp_run,
    once,
)
from repro.harness.report import format_table


def run_grid():
    results = {}
    for design in ("DW", "LC"):
        for label, interval in (("40min", CHECKPOINT_40MIN),
                                ("5h", CHECKPOINT_5H)):
            kwargs = dict(checkpoint_interval=interval)
            if design == "LC":
                kwargs["dirty_threshold"] = 0.5  # paper raises λ to 50%
            results[(design, label)] = oltp_run("tpce", 20, design, **kwargs)
    return results


def test_fig9_checkpoint_interval(benchmark):
    results = once(benchmark, run_grid)
    rows = []
    for (design, label), result in results.items():
        ck = result.system.checkpointer
        rows.append([
            design, label,
            f"{result.steady_state_throughput():,.1f}",
            f"{ck.checkpoints_taken}/{ck.checkpoints_started}",
            f"{max(ck.durations, default=0.0):.2f}s",
        ])
    print()
    print(format_table("Figure 9 analog — checkpoint interval, TPC-E 20K",
                       ["design", "interval", "steady tpsE",
                        "ckpts done/started", "longest ckpt"], rows))

    # (a) DW: fewer checkpoints -> at least as good in steady state.
    dw_long = results[("DW", "5h")].steady_state_throughput()
    dw_short = results[("DW", "40min")].steady_state_throughput()
    assert dw_long >= 0.9 * dw_short

    # (b) LC with the long interval accumulates dirty SSD pages, so its
    # (single, late) checkpoint takes far longer than the short
    # interval's checkpoints — possibly so long it is still draining
    # when the run ends (the paper's 1.5-hour dip).
    lc_long = results[("LC", "5h")].system.checkpointer
    lc_short = results[("LC", "40min")].system.checkpointer
    assert lc_long.checkpoints_started >= 1
    assert lc_short.checkpoints_taken >= 2
    if lc_long.durations:
        assert max(lc_long.durations) > max(lc_short.durations)
    else:
        # Never finished within the run: strictly longer than any of the
        # short-interval checkpoints by construction.
        assert lc_long.checkpoints_taken == 0

    # Checkpoints cost LC more than DW (it must drain the SSD too).
    dw_short_ck = results[("DW", "40min")].system.checkpointer
    assert max(lc_short.durations) >= max(dw_short_ck.durations)


def test_fig9_checkpoint_dip_visible_in_series(benchmark):
    result = once(benchmark, lambda: run_grid()[("LC", "40min")])
    series = result.throughput_series()
    ck = result.system.checkpointer
    assert ck.checkpoints_started >= 1
    rates = [rate for _, rate in series]
    peak = max(rates)
    trough = min(rates[len(rates) // 3:])  # after warm-up
    print(f"\npeak {peak:,.0f} trough {trough:,.0f}")
    assert trough < 0.9 * peak  # the periodic checkpoint dips
