"""Figure 8: I/O traffic to the disks and the SSD over a TPC-E run (DW).

Paper phenomena (20K customers, DW):

* an initial disk-read burst from SQL Server's expand-every-read-to-8-
  pages behaviour, collapsing once the buffer pool fills;
* SSD read traffic climbing steadily as the SSD fills;
* periodic write spikes from checkpoints;
* in steady state the *disks* are the bottleneck while the SSD is far
  below its bandwidth limit (§4.3.2's "a very high performance SSD may
  not be required").
"""

from repro.harness.experiments import SCALE_PROFILES, make_system, make_workload
from repro.harness.runner import WorkloadRunner
from benchmarks.common import BUCKET, CHECKPOINT_40MIN, OLTP_DURATION, PROFILE, once
from repro.harness.report import format_series


def run_with_traffic():
    workload = make_workload("tpce", 20, PROFILE)
    system = make_system("tpce", workload, "DW", PROFILE,
                         checkpoint_interval=CHECKPOINT_40MIN,
                         expand_reads=True)
    disk_traffic = system.data_device.attach_traffic_recorder(BUCKET)
    ssd_traffic = system.ssd_device.attach_traffic_recorder(BUCKET)
    runner = WorkloadRunner(system, workload, nworkers=32,
                            bucket_seconds=BUCKET)
    result = runner.run(OLTP_DURATION)
    return result, disk_traffic, ssd_traffic


def test_fig8_io_traffic(benchmark):
    result, disk_traffic, ssd_traffic = once(benchmark, run_with_traffic)
    until = result.start_time + OLTP_DURATION
    disk = disk_traffic.series(until)
    ssd = ssd_traffic.series(until)
    print()
    print(format_series("Figure 8(a) analog — disk read MB/s",
                        [(t, r) for t, r, _ in disk], "t(s)", "read MB/s"))
    print()
    print(format_series("Figure 8(b) analog — SSD read MB/s",
                        [(t, r) for t, r, _ in ssd], "t(s)", "read MB/s"))

    disk_reads = [r for _, r, __ in disk]
    ssd_reads = [r for _, r, __ in ssd]
    n = len(disk_reads)

    head = max(disk_reads[:max(2, n // 10)])
    tail = sum(disk_reads[-n // 4:]) / max(1, n // 4)
    early_ssd = sum(ssd_reads[:n // 4]) / max(1, n // 4)
    late_ssd = sum(ssd_reads[-n // 4:]) / max(1, n // 4)
    writes = [w for _, __, w in disk]
    write_peak = max(writes)
    write_mean = sum(writes) / len(writes)
    system = result.system
    disk_busy = system.data_device.stats.busy_time / 8 / OLTP_DURATION
    ssd_busy = system.ssd_device.stats.busy_time / 8 / OLTP_DURATION
    print(f"\ndisk read head {head:.1f} vs tail {tail:.1f} MB/s; "
          f"ssd read early {early_ssd:.1f} vs late {late_ssd:.1f} MB/s; "
          f"disk write peak {write_peak:.1f} vs mean {write_mean:.1f}; "
          f"disk util {disk_busy:.2f} vs ssd util {ssd_busy:.2f}")

    # (1) Initial disk-read burst, then a drop (expand-reads fills the
    # buffer pool quickly, after which single-page misses dominate and,
    # as the SSD absorbs them, disk reads fall further).
    assert head > 1.3 * tail, (head, tail)

    # (2) SSD read traffic grows as the SSD fills.
    assert late_ssd > early_ssd

    # (3) Checkpoints produce visible write spikes.  (At compressed
    # scale a checkpoint fires every ~2 buckets, so the spikes blur into
    # a ripple rather than the paper's isolated needles.)
    assert write_peak > 1.4 * write_mean

    # (4) Steady state: the disks do proportionally far more of the work
    # than the SSD relative to their capability — the disk subsystem is
    # the bottleneck ("a very high performance SSD may not be required").
    assert disk_busy > 1.5 * ssd_busy
