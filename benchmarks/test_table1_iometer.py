"""Table 1: maximum sustainable IOPS per device at 8 KB.

Paper values (disk write caching off):

    READ   random/seq   8 HDDs 1,015 / 26,370   SSD 12,182 / 15,980
    WRITE  random/seq   8 HDDs   895 /  9,463   SSD 12,374 / 14,965
"""

from benchmarks.common import once
from repro.harness.report import format_table
from repro.storage.iometer import run_table1


def test_table1_device_iops(benchmark):
    table = once(benchmark, lambda: run_table1(duration=5.0))
    rows = [
        [name, f"{measured:,.0f}", f"{paper:,}", f"{measured / paper:.3f}"]
        for name, measured, paper in table.rows()
    ]
    print()
    print(format_table("Table 1 — sustained IOPS (8 KB I/Os)",
                       ["device/pattern", "measured", "paper", "ratio"],
                       rows))
    for name, measured, paper in table.rows():
        assert abs(measured / paper - 1.0) < 0.05, name
    # The two structural facts the paper's design rests on:
    assert table.ssd_random_read / table.hdd_random_read > 10
    assert table.hdd_sequential_read > table.ssd_sequential_read
