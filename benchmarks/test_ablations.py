"""Ablations of the design choices the paper calls out.

* Admission classification: the read-ahead signal vs the 64-page-window
  heuristic (paper: 82% vs 51% accurate on a sequential-read query).
* Multi-page I/O trimming (§3.3.3): trim only the edges vs splitting a
  read-ahead request around every SSD-resident page.
* Group cleaning (§3.3.5): gathering consecutive dirty pages into one
  write vs cleaning page-at-a-time.
* Warm restart (§6 future work): reusing SSD contents after a restart
  removes the ramp-up the paper complains about.
"""

import random

from benchmarks.common import PROFILE, once
from repro.engine.readahead import ReadAheadAccuracy, WindowClassifier
from repro.engine.recovery import simulate_crash_and_recover
from repro.harness.experiments import make_system, make_workload
from repro.harness.runner import WorkloadRunner
from tests.conftest import MiniSystem, drive, settle


def test_ablation_admission_accuracy(benchmark):
    """Score both classifiers on a sequential scan running against
    concurrent random lookups (the paper's sequential-read query in a
    multi-user system)."""
    def run():
        sys_ = MiniSystem(design="noSSD", db_pages=4_000, bp_pages=1_600)
        from repro.engine.heap_file import HeapFile
        table = HeapFile("t", 0, 1_024)
        readahead_score = ReadAheadAccuracy()

        def scanner():
            yield from table.scan(sys_.bp, accuracy=readahead_score)

        def random_feed():
            rng = random.Random(9)
            for _ in range(600):
                frame = yield from sys_.bp.fetch(rng.randrange(2_000, 4_000))
                sys_.bp.unpin(frame)

        procs = [sys_.env.process(scanner()),
                 sys_.env.process(random_feed())]
        sys_.env.run(sys_.env.all_of(procs))

        # The window heuristic classifies the *global* disk-read stream,
        # where the concurrent random lookups interleave with the scan.
        window = WindowClassifier(window=64)
        rng = random.Random(10)
        scan_stream = [(pid, True) for pid in range(1_024)]
        random_stream = [(rng.randrange(2_000, 4_000), False)
                         for _ in range(600)]
        merged = scan_stream + random_stream
        rng.shuffle(merged)
        for address, truth in merged:
            window.classify(address, truth_sequential=truth)
        return readahead_score.accuracy, window.accuracy

    readahead_acc, window_acc = once(benchmark, run)
    print(f"\nread-ahead accuracy {readahead_acc:.0%} (paper 82%), "
          f"window accuracy {window_acc:.0%} (paper 51%)")
    assert readahead_acc > 0.7
    assert window_acc < 0.7
    assert readahead_acc > window_acc


def test_ablation_multipage_trimming(benchmark):
    """Edge-trimmed runs must issue at most one disk I/O per prefetch
    even when scattered pages are SSD-resident (vs the naive split the
    paper found slower)."""
    def run():
        sys_ = MiniSystem(design="DW", db_pages=2_000, bp_pages=128,
                          ssd_frames=256)
        # Cache scattered pages of a run in the SSD.
        for pid in (100, 101, 105, 107):
            drive(sys_.env, sys_.ssd_manager._cache_page(pid, 0, False))
        ios_before = sys_.disk.reads_issued
        drive(sys_.env, sys_.bp.prefetch(100, 8))
        return sys_.disk.reads_issued - ios_before

    disk_ios = once(benchmark, run)
    print(f"\ndisk I/Os for one trimmed 8-page prefetch: {disk_ios}")
    assert disk_ios <= 1


def test_ablation_group_cleaning(benchmark):
    """α > 1 turns consecutive dirty pages into single multi-page disk
    writes: far fewer cleaner I/Os than pages cleaned."""
    def run():
        out = {}
        for alpha in (1, 32):
            sys_ = MiniSystem(design="LC", db_pages=2_000, bp_pages=64,
                              ssd_frames=256, dirty_threshold=0.1,
                              group_clean_pages=alpha)
            from repro.engine.page import Frame
            for pid in range(160):
                frame = Frame(pid, version=1)
                frame.dirty = True
                drive(sys_.env, sys_.ssd_manager.on_evict_dirty(frame))
            settle(sys_.env, 10.0)
            stats = sys_.ssd_manager.stats
            out[alpha] = (stats.cleaner_pages, stats.cleaner_ios)
        return out

    results = once(benchmark, run)
    print("\ncleaner (pages, ios) by alpha:", results)
    pages_1, ios_1 = results[1]
    pages_32, ios_32 = results[32]
    assert ios_1 >= pages_1  # no grouping: one I/O per page
    assert ios_32 < pages_32 / 4  # grouping collapses consecutive runs


def test_ablation_warm_restart_removes_ramp_up(benchmark):
    """Persisting the SSD mapping across restart (§6) lets the restarted
    system start with a hot SSD instead of re-warming it."""
    def run():
        out = {}
        for warm in (False, True):
            workload = make_workload("tpce", 4, PROFILE)
            system = make_system("tpce", workload, "DW", PROFILE,
                                 warm_restart=warm)
            runner = WorkloadRunner(system, workload, nworkers=16)
            runner.run(20.0)
            runner.stop()  # quiesce the clients before the crash
            system.run(until=system.env.now + 2.0)
            before = system.ssd_manager.used_frames
            drive(system.env, simulate_crash_and_recover(system.env, system))
            out[warm] = (before, system.ssd_manager.used_frames)
        return out

    frames = once(benchmark, run)
    print(f"\nSSD frames (before -> after restart): "
          f"cold={frames[False][0]:,} -> {frames[False][1]:,}, "
          f"warm={frames[True][0]:,} -> {frames[True][1]:,}")
    assert frames[False][1] == 0
    assert frames[True][1] > frames[True][0] // 2


def test_ablation_aggressive_fill(benchmark):
    """§3.3.1: without aggressive filling (τ=0) the SSD fills only with
    admission-qualified pages, so it warms far more slowly."""
    def run():
        out = {}
        for tau in (0.0, 0.95):
            workload = make_workload("tpce", 4, PROFILE)
            system = make_system("tpce", workload, "DW", PROFILE)
            system.ssd_manager.config.fill_threshold = tau
            runner = WorkloadRunner(system, workload, nworkers=16)
            runner.run(15.0)
            out[tau] = system.ssd_manager.used_frames
        return out

    used = once(benchmark, run)
    print(f"\nSSD frames at t=15s: tau=0 {used[0.0]:,} vs "
          f"tau=0.95 {used[0.95]:,}")
    assert used[0.95] >= used[0.0]
