"""Sharp vs fuzzy checkpoints: the §2.3.3 trade, measured.

The paper implements LC against SQL Server's *sharp* checkpoints (flush
everything, fast restart) and repeatedly notes the alternative: fuzzy
checkpoints make the checkpoint itself nearly free but push work to
restart — and the more dirty pages LC parks in the SSD (higher λ), the
longer that restart gets.  This bench measures checkpoint cost and
restart redo volume under both policies.
"""

import random

from benchmarks.common import once
from repro.core import SsdDesignConfig
from repro.engine.recovery import simulate_crash_and_recover
from repro.harness.system import System, SystemConfig
from repro.harness.report import format_table
from tests.conftest import drive, settle


def run_one(policy, lam):
    system = System(SystemConfig(
        design="LC", db_pages=2_000, bp_pages=128,
        checkpoint_policy=policy,
        ssd=SsdDesignConfig(ssd_frames=700, dirty_threshold=lam)))
    rng = random.Random(41)

    def worker():
        for _ in range(400):
            frame = yield from system.bp.fetch(rng.randrange(1_000))
            system.bp.mark_dirty(frame)
            system.bp.unpin(frame)
            yield from system.wal.force(system.wal.tail_lsn)

    procs = [system.env.process(worker()) for _ in range(4)]
    system.env.run(system.env.all_of(procs))
    settle(system.env)
    drive(system.env, system.checkpointer.checkpoint())
    checkpoint_cost = system.checkpointer.durations[0]
    restart_start = system.env.now
    redone = drive(system.env,
                   simulate_crash_and_recover(system.env, system))
    restart_time = system.env.now - restart_start
    return checkpoint_cost, redone, restart_time


def test_checkpoint_policy_tradeoff(benchmark):
    def run():
        return {
            (policy, lam): run_one(policy, lam)
            for policy in ("sharp", "fuzzy")
            for lam in (0.1, 0.9)
        }

    results = once(benchmark, run)
    rows = [
        [policy, f"{lam:.0%}", f"{cost:.3f}s", f"{redone:,}",
         f"{restart:.3f}s"]
        for (policy, lam), (cost, redone, restart) in results.items()
    ]
    print()
    print(format_table(
        "Checkpoint policy trade (LC): cost now vs redo at restart",
        ["policy", "lambda", "checkpoint cost", "pages redone",
         "restart time"], rows))

    for lam in (0.1, 0.9):
        sharp_cost, sharp_redo, sharp_restart = results[("sharp", lam)]
        fuzzy_cost, fuzzy_redo, fuzzy_restart = results[("fuzzy", lam)]
        # Fuzzy: near-free checkpoint, more restart work.
        assert fuzzy_cost < sharp_cost / 5, lam
        assert fuzzy_redo >= sharp_redo, lam
        assert fuzzy_restart >= sharp_restart, lam
    # Higher λ makes the fuzzy restart strictly heavier.
    assert results[("fuzzy", 0.9)][1] >= results[("fuzzy", 0.1)][1]
