"""Figure 5(a–c): TPC-C speedups of DW/LC/TAC over noSSD.

Paper (steady-state tpmC speedups, checkpointing effectively off, λ=50%):

    1K warehouses (100 GB):  DW 2.2x   LC 9.1x   TAC 1.9x
    2K warehouses (200 GB):  DW 1.9x   LC 9.4x   TAC 1.4x
    4K warehouses (400 GB):  DW 2.2x   LC 6.2x   TAC 1.9x

Shape targets: every design beats noSSD; LC wins by a wide margin
(write-back absorbs TPC-C's re-dirtied hot pages); DW >= TAC.
"""

import pytest

from benchmarks.common import oltp_run, once
from repro.harness.experiments import speedup_over_nossd
from repro.harness.report import format_speedups

SCALES = {1_000: "(a) 1K warehouses", 2_000: "(b) 2K warehouses",
          4_000: "(c) 4K warehouses"}
PAPER = {
    1_000: {"DW": 2.2, "LC": 9.1, "TAC": 1.9},
    2_000: {"DW": 1.9, "LC": 9.4, "TAC": 1.4},
    4_000: {"DW": 2.2, "LC": 6.2, "TAC": 1.9},
}


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_fig5_tpcc_speedups(benchmark, scale):
    def run():
        return {
            design: oltp_run("tpcc", scale, design).steady_state_throughput()
            for design in ("noSSD", "DW", "LC", "TAC")
        }

    throughputs = once(benchmark, run)
    speedups = speedup_over_nossd(throughputs)
    print()
    print(format_speedups(
        f"Figure 5 {SCALES[scale]} — TPC-C speedup over noSSD "
        f"(paper: {PAPER[scale]})",
        {SCALES[scale]: speedups}))
    # Shape assertions (who wins, roughly by what factor).  At 4K the
    # working set far exceeds the SSD, so LC's margin narrows (the paper
    # shows the same: LC/DW is 4.8x at 1K/2K but 2.8x at 4K).
    lc_margin = 2.0 if scale < 4_000 else 1.5
    assert speedups["LC"] > 3.0, speedups
    assert speedups["LC"] > lc_margin * speedups["DW"], speedups
    assert speedups["LC"] > lc_margin * speedups["TAC"], speedups
    assert speedups["DW"] > 1.2, speedups
    assert speedups["TAC"] > 1.1, speedups
    assert speedups["DW"] >= 0.85 * speedups["TAC"], speedups
