"""Simulator microbenchmark: kernel events/sec and Figure 5 wall-clock.

Unlike the figure benches, this file measures the *reproduction itself*:
how many kernel events per wall-clock second the discrete-event core
sustains, and how long one Figure 5 grid cell takes end-to-end.  The
committed ``BENCH_sim.json`` records the numbers on the reference
machine; CI's perf-smoke job re-measures and asserts the kernel has not
regressed past a generous guard band (CI machines are slower and noisy,
so the band is a floor against order-of-magnitude regressions, not a
tight tolerance).

Regenerate the committed snapshot with::

    REPRO_BENCH_REGEN=1 python -m pytest benchmarks/test_simbench.py -q

This file needs only stock pytest (no pytest-benchmark fixture), so the
CI job can run it in isolation.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.sim import Environment, WheelEnvironment

from benchmarks.common import FAST, OLTP_DURATION, PROFILE_NAME
from repro.harness.sweep import RunSpec, execute

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
MEASURED_PATH = BENCH_PATH.with_name("BENCH_sim.measured.json")
REGEN = bool(os.environ.get("REPRO_BENCH_REGEN"))

#: CI floor: measured rate must stay above this fraction of the
#: committed reference rate.
GUARD_BAND = 0.20

#: Pre-optimization kernel rates (same machine, same workloads), kept
#: for the record: the slots + inlined-scheduling rewrite is measured
#: against these.
BASELINE_EVENTS_PER_SEC = {
    "timeout_chain": 297_421,
    "procs50": 245_927,
}


def _timeout_chain(n: int, envcls=Environment) -> float:
    """One process yielding ``n`` back-to-back timeouts; returns ev/s."""
    env = envcls()

    def proc():
        t = env.timeout
        for _ in range(n):
            yield t(0.001)

    env.process(proc())
    start = time.perf_counter()
    env.run()
    return n / (time.perf_counter() - start)


def _procs50(per_proc: int, envcls=Environment) -> float:
    """50 interleaved processes, ``per_proc`` timeouts each; ev/s."""
    env = envcls()

    def proc():
        t = env.timeout
        for _ in range(per_proc):
            yield t(0.001)

    for _ in range(50):
        env.process(proc())
    start = time.perf_counter()
    env.run()
    return 50 * per_proc / (time.perf_counter() - start)


def _fig5_cell() -> dict:
    """Wall-clock for one Figure 5 cell at the bench-wide profile."""
    spec = RunSpec(kind="oltp", benchmark="tpcc", scale=1_000, design="LC",
                   profile=PROFILE_NAME, duration=OLTP_DURATION,
                   nworkers=16)
    start = time.perf_counter()
    result = execute(spec)
    elapsed = time.perf_counter() - start
    return {
        "spec": spec.to_dict(),
        "wall_seconds": elapsed,
        "metric_txns": result.total_metric_txns,
    }


def measure(fast: bool = FAST) -> dict:
    """Run the full microbench suite; smaller sizes under FAST."""
    chain_n = 50_000 if fast else 200_000
    per_proc = 2_000 if fast else 10_000
    return {
        "schema": "repro-sim-bench/1",
        "fast": fast,
        "kernel": {
            "timeout_chain_events_per_sec": round(_timeout_chain(chain_n)),
            "procs50_events_per_sec": round(_procs50(per_proc)),
            "wheel_timeout_chain_events_per_sec": round(
                _timeout_chain(chain_n, WheelEnvironment)),
            "wheel_procs50_events_per_sec": round(
                _procs50(per_proc, WheelEnvironment)),
        },
        "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
        "fig5_cell": _fig5_cell(),
    }


def test_simbench_guard_band():
    """Kernel throughput stays within the guard band of the snapshot."""
    measured = measure()
    # Always drop the measurement next to the committed snapshot so the
    # run store can ingest it (repro runs record-bench + regress).
    with open(MEASURED_PATH, "w") as fh:
        json.dump(measured, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if REGEN or not BENCH_PATH.exists():
        with open(BENCH_PATH, "w") as fh:
            json.dump(measured, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {BENCH_PATH}")
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    print("\nkernel events/sec (measured vs committed):")
    for name, rate in measured["kernel"].items():
        reference = committed["kernel"][name]
        print(f"  {name}: {rate:,} vs {reference:,} "
              f"({rate / reference:.2f}x)")
        assert rate >= GUARD_BAND * reference, (
            f"{name}: {rate:,} ev/s is below {GUARD_BAND:.0%} of the "
            f"committed {reference:,} ev/s — kernel hot path regressed")
    cell = measured["fig5_cell"]
    print(f"fig5 cell ({cell['spec']['benchmark']} "
          f"scale={cell['spec']['scale']} {cell['spec']['design']}): "
          f"{cell['wall_seconds']:.1f}s wall, "
          f"{cell['metric_txns']:,} metric txns")
    assert cell["metric_txns"] > 0


def test_simbench_beats_recorded_baseline():
    """The optimized kernel clears the pre-rewrite rates (the PR's
    >=2x acceptance bar), with slack for slower CI machines."""
    measured = measure()
    for name, baseline in BASELINE_EVENTS_PER_SEC.items():
        rate = measured["kernel"][f"{name}_events_per_sec"]
        assert rate >= 0.8 * baseline, (
            f"{name}: {rate:,} ev/s does not clear the recorded "
            f"pre-optimization baseline {baseline:,} ev/s")
