"""LS-vs-LC write amplification on the FTL device model (DESIGN.md §10).

The log-structured design exists to stop paying the flash translation
layer's relocation tax: LC's steady-state random overwrites shred the
FTL's erase blocks (measured WAF ~2 on write-heavy TPC-C), while LS
writes sequentially, supersedes in place, and TRIMs whole segments so
the FTL's garbage collector almost never relocates a live page
(WAF ~1.07).  This bench pins the comparison at the operating point
documented in EXPERIMENTS.md ("Measuring write amplification"): TPC-C,
1,200 warehouses, small profile, 16 workers, FTL-backed SSD.

Expected shape: LS beats LC on WAF by a wide margin *without* giving up
throughput — the group-commit batches are striped across the device's
channels, so sequentiality costs no parallelism.
"""

import os

from benchmarks.common import DISK_CACHE, once
from repro.harness.sweep import RunSpec, run_cached

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
DURATION = 12.0 if FAST else 30.0


def ftl_run(design: str):
    spec = RunSpec(kind="oltp", benchmark="tpcc", scale=1_200,
                   design=design, profile="small", duration=DURATION,
                   nworkers=16, ftl=True)
    return run_cached(spec, use_cache=DISK_CACHE)


def test_ls_write_amplification_vs_lc(benchmark):
    def run():
        return {design: ftl_run(design) for design in ("LC", "LS")}

    results = once(benchmark, run)
    waf = {d: r.system.ssd_device.ftl.waf for d, r in results.items()}
    tput = {d: r.steady_state_throughput() for d, r in results.items()}
    nand = {d: r.system.ssd_device.ftl.stats.nand_writes
            for d, r in results.items()}
    print()
    print("Flash write amplification — TPC-C 1.2K warehouses (--ftl)")
    print(f"{'design':>6}  {'waf':>6}  {'nand_writes':>11}  {'tput/s':>8}")
    for design in ("LC", "LS"):
        print(f"{design:>6}  {waf[design]:6.3f}  {nand[design]:11d}"
              f"  {tput[design]:8.1f}")

    # The headline claim: the log layout roughly halves NAND wear per
    # host write...
    assert waf["LS"] < 1.5, waf
    assert waf["LS"] < 0.75 * waf["LC"], waf
    # ...at equal or better transaction throughput (striped log appends
    # keep the channels busy; a short FAST run gets a small grace).
    floor = 0.95 if FAST else 1.0
    assert tput["LS"] >= floor * tput["LC"], tput
