"""Extended design comparison: the paper's four designs plus the two §5
related-work designs (rotating SSD, exclusive caching).

Expected shape on update-intensive OLTP:

* LC remains the clear winner (write-back + good replacement);
* the rotating design trails the LRU-2-managed designs — its pointer
  displaces hot pages, which is exactly the quality-for-sequentiality
  trade the paper says no longer pays off on enterprise SSDs;
* the exclusive design lands between noSSD and LC: extra capacity from
  exclusivity vs an SSD write on every re-admission.
"""

from benchmarks.common import oltp_run, once
from repro.harness.experiments import speedup_over_nossd
from repro.harness.report import format_speedups

DESIGNS = ("noSSD", "CW", "DW", "LC", "TAC", "ROT", "EXCL")


def test_extended_design_comparison(benchmark):
    def run():
        return {
            design: oltp_run("tpcc", 2_000, design).steady_state_throughput()
            for design in DESIGNS
        }

    throughputs = once(benchmark, run)
    speedups = speedup_over_nossd(throughputs)
    print()
    print(format_speedups("Extended design comparison — TPC-C 2K warehouses",
                          {"2K wh": speedups},
                          designs=[d for d in DESIGNS if d != "noSSD"]))
    # All designs provide some benefit over the plain-disk baseline.
    for design in ("CW", "DW", "LC", "TAC", "EXCL"):
        assert speedups[design] > 1.0, speedups
    # LC stays on top.
    for design in ("CW", "DW", "TAC", "ROT", "EXCL"):
        assert speedups["LC"] > speedups[design], speedups
    # Rotation's replacement-quality sacrifice shows: it does not beat
    # the LRU-2 write-back design it is closest to mechanically.
    assert speedups["ROT"] < speedups["LC"], speedups
