"""Figure 5(g–h) and Table 3: TPC-H results.

Paper Table 3:

    30 SF:   LC    DW    TAC   noSSD        100 SF:  LC    DW    TAC   noSSD
    Power    5978  5917  6386  2733         Power    3836  3204  3705  1536
    Thpt     5601  6643  5639  1229         Thpt     3228  3691  3235   953
    QphH     5787  6269  6001  1832         QphH     3519  3439  3462  1210

Shape targets: all three SSD designs similar (read-intensive); overall
QphH speedups ~3.4x (30 SF) and ~2.9x (100 SF); the SSD helps the
throughput test (concurrent streams → random I/O) more than the power
test; noSSD's power exceeds its throughput number.
"""

import pytest

from benchmarks.common import once, tpch_run
from repro.harness.report import format_table

PAPER = {
    30: {"LC": 5787, "DW": 6269, "TAC": 6001, "noSSD": 1832},
    100: {"LC": 3519, "DW": 3439, "TAC": 3462, "noSSD": 1210},
}


def run_all(sf):
    return {design: tpch_run(sf, design)
            for design in ("LC", "DW", "TAC", "noSSD")}


@pytest.mark.parametrize("sf", [30, 100])
def test_table3_power_throughput_qphh(benchmark, sf):
    results = once(benchmark, lambda: run_all(sf))
    rows = [
        [design, f"{r.power:,.0f}", f"{r.throughput:,.0f}",
         f"{r.qphh:,.0f}", f"{PAPER[sf][design]:,}"]
        for design, r in results.items()
    ]
    print()
    print(format_table(
        f"Table 3 — TPC-H @{sf} SF (QphH paper column for reference)",
        ["design", "power", "throughput", "QphH", "paper QphH"], rows))

    base = results["noSSD"]
    for design in ("LC", "DW", "TAC"):
        qphh_speedup = results[design].qphh / base.qphh
        assert qphh_speedup > 2.0, (design, qphh_speedup)
    # The three designs perform similarly on this read-intensive load.
    qphhs = [results[d].qphh for d in ("LC", "DW", "TAC")]
    assert max(qphhs) < 1.5 * min(qphhs)
    # noSSD: power test beats throughput test (interleaved streams
    # destroy the disks' sequential bandwidth).
    assert base.power > base.throughput


@pytest.mark.parametrize("sf", [30, 100])
def test_fig5_tpch_throughput_gain_exceeds_power_gain(benchmark, sf):
    """§4.4: 'The SSD designs are more effective in improving the
    performance of the throughput test than the power test' (DW @30 SF:
    2.2x power vs 5.4x throughput)."""
    results = once(benchmark, lambda: run_all(sf))
    base = results["noSSD"]
    for design in ("LC", "DW", "TAC"):
        power_gain = results[design].power / base.power
        throughput_gain = results[design].throughput / base.throughput
        print(f"{design} @{sf}SF: power x{power_gain:.2f} "
              f"throughput x{throughput_gain:.2f}")
        assert throughput_gain > power_gain, (design, sf)


def test_fig5_tpch_speedup_band(benchmark):
    """Figure 5(g–h): up to ~3.4x at 30 SF, ~2.9x at 100 SF."""
    def run():
        return {sf: run_all(sf) for sf in (30, 100)}

    both = once(benchmark, run)
    for sf, results in both.items():
        base = results["noSSD"].qphh
        for design in ("LC", "DW", "TAC"):
            speedup = results[design].qphh / base
            assert 1.5 < speedup < 8.0, (sf, design, speedup)
