"""Figure 5(d–f): TPC-E speedups of DW/LC/TAC over noSSD.

Paper (tpsE speedups, 40-minute checkpoints, λ=1%):

    10K customers (115 GB): DW 5.5x  LC 5.4x  TAC 5.2x
    20K customers (230 GB): DW 8.0x  LC 7.6x  TAC 7.5x
    40K customers (415 GB): DW 2.7x  LC 2.7x  TAC 3.0x

Shape targets: the benchmark is read-intensive, so the three designs
perform similarly (LC's write-back advantage is gone), and the gain
peaks at 20K customers, where the working set roughly matches the SSD.
"""

import pytest

from benchmarks.common import CHECKPOINT_40MIN, oltp_run, once
from repro.harness.experiments import speedup_over_nossd
from repro.harness.report import format_speedups

SCALES = {10: "(d) 10K customers", 20: "(e) 20K customers",
          40: "(f) 40K customers"}
PAPER = {
    10: {"DW": 5.5, "LC": 5.4, "TAC": 5.2},
    20: {"DW": 8.0, "LC": 7.6, "TAC": 7.5},
    40: {"DW": 2.7, "LC": 2.7, "TAC": 3.0},
}


def tpce_speedups(scale):
    throughputs = {
        design: oltp_run("tpce", scale, design,
                         checkpoint_interval=CHECKPOINT_40MIN,
                         ).steady_state_throughput()
        for design in ("noSSD", "DW", "LC", "TAC")
    }
    return speedup_over_nossd(throughputs)


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_fig5_tpce_speedups(benchmark, scale):
    speedups = once(benchmark, lambda: tpce_speedups(scale))
    print()
    print(format_speedups(
        f"Figure 5 {SCALES[scale]} — TPC-E speedup over noSSD "
        f"(paper: {PAPER[scale]})",
        {SCALES[scale]: speedups}))
    for design in ("DW", "LC", "TAC"):
        assert speedups[design] > 1.5, speedups
    # Read-intensive: designs within ~2x of each other ("similar gains").
    values = [speedups[d] for d in ("DW", "LC", "TAC")]
    assert max(values) < 2.5 * min(values), speedups


def test_fig5_tpce_peak_at_working_set_fit(benchmark):
    """§4.3: 'the performance gains are the highest with the 20K
    customer database' — the working-set-vs-SSD crossover."""
    def run():
        return {scale: tpce_speedups(scale)["DW"] for scale in (10, 20, 40)}

    gains = once(benchmark, run)
    print("\nDW speedup by scale:", {k: round(v, 2) for k, v in gains.items()})
    assert gains[20] > gains[40], gains
