"""Shared infrastructure for the benchmark harness.

Every module in ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Runs are cached here so that
benches sharing an underlying experiment (e.g. Figure 5(g–h) and Table 3)
execute it once.

Scaling: the default profile preserves the paper's sizing ratios at
100 pages/GB and compresses the 10-hour timeline into 60 virtual seconds
(see EXPERIMENTS.md).  Set ``REPRO_BENCH_FAST=1`` to use the smaller
profile for a quick smoke pass.

Caching is two-level: an in-process dict (benches within one session
share live results) backed by the on-disk run cache of
:mod:`repro.harness.sweep` (results survive across sessions; the cache
key covers the full config *and* the simulator sources, so a code change
is an automatic miss).  ``REPRO_BENCH_NO_DISK_CACHE=1`` disables the
disk layer.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.harness.experiments import SCALE_PROFILES
from repro.harness.sweep import RunSpec, run_cached

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
PROFILE_NAME = "small" if FAST else "default"
PROFILE = SCALE_PROFILES[PROFILE_NAME]
DISK_CACHE = not os.environ.get("REPRO_BENCH_NO_DISK_CACHE")

#: Virtual seconds standing in for the paper's 10-hour runs.
OLTP_DURATION = 30.0 if FAST else 60.0
#: Bucket width standing in for the paper's 6-minute buckets.
BUCKET = 2.0
#: Checkpoint-interval analog of the paper's 40 minutes (TPC-E/H runs
#: checkpoint "roughly every 40 minutes" of their 10 hours).
CHECKPOINT_40MIN = OLTP_DURATION / 15.0
#: Analog of the 5-hour interval used in Figure 9.
CHECKPOINT_5H = OLTP_DURATION / 2.0

#: TPC-C benches drive more closed-loop clients: the update-intensive
#: workload must *saturate* the devices for the cleaner-contention
#: effects (Figures 6 and 7) to be measurable, exactly as the paper's
#: multi-user runs did.
TPCC_WORKERS = 16 if FAST else 96

_oltp_cache: Dict[tuple, object] = {}
_tpch_cache: Dict[tuple, object] = {}


def oltp_run(benchmark: str, scale: int, design: str, **kwargs):
    """Cached OLTP run with the bench-wide defaults."""
    key = (benchmark, scale, design, tuple(sorted(kwargs.items())))
    if key not in _oltp_cache:
        if benchmark == "tpcc":
            kwargs.setdefault("nworkers", TPCC_WORKERS)
        spec = RunSpec(
            kind="oltp", benchmark=benchmark, scale=scale, design=design,
            profile=PROFILE_NAME, bucket_seconds=BUCKET,
            duration=kwargs.pop("duration", OLTP_DURATION),
            nworkers=kwargs.pop("nworkers", 32), **kwargs)
        _oltp_cache[key] = run_cached(spec, use_cache=DISK_CACHE)
    return _oltp_cache[key]


def ramp_fraction(result, level: float = 0.8) -> float:
    """Fraction of the run before throughput first reached ``level`` of
    its steady tail average (the ramp-up measurement of Figure 6)."""
    series = result.throughput_series(smooth=3)
    if not series:
        return 1.0
    tail = [rate for _, rate in series[-max(1, len(series) // 5):]]
    steady = sum(tail) / len(tail)
    if steady <= 0:
        return 1.0
    for index, (_, rate) in enumerate(series):
        if rate >= level * steady:
            return index / len(series)
    return 1.0


def tpch_run(sf: int, design: str):
    """Cached full TPC-H run (power + throughput)."""
    key = (sf, design)
    if key not in _tpch_cache:
        spec = RunSpec(kind="tpch", benchmark="tpch", scale=sf,
                       design=design, profile=PROFILE_NAME,
                       checkpoint_interval=CHECKPOINT_40MIN)
        _tpch_cache[key] = run_cached(spec, use_cache=DISK_CACHE)
    return _tpch_cache[key]


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
