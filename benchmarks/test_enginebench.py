"""End-to-end engine benchmark: the partitioned-pool throughput guard.

Where ``test_simbench.py`` measures the *kernel* (events/sec on synthetic
timer loads), this file measures the *engine*: one small but complete
OLTP cell — B-tree descent, buffer pool, SSD manager, WAL, checkpointer —
timed end to end.  The committed ``BENCH_engine.json`` records the
reference machine's numbers after the partitioned-pool rewrite; CI's
perf-smoke job re-measures and asserts two things:

* ``metric_txns`` matches **exactly** — the simulation is deterministic,
  so any drift means behavior changed, not the machine;
* ``txns_per_wall_sec`` stays above a generous guard band — CI machines
  are slower and noisy, so the floor catches order-of-magnitude
  regressions (a reverted ``__slots__``, a re-enabled per-event GC run),
  not percent-level jitter.

Regenerate the committed snapshot with::

    REPRO_BENCH_REGEN=1 python -m pytest benchmarks/test_enginebench.py -q

Every run also writes ``BENCH_engine.measured.json`` (uncommitted) so
the measurement can be ingested into the run store afterwards::

    python -m repro runs record-bench BENCH_engine.measured.json
    python -m repro runs regress
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.harness.sweep import RunSpec, execute

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
MEASURED_PATH = BENCH_PATH.with_name("BENCH_engine.measured.json")
REGEN = bool(os.environ.get("REPRO_BENCH_REGEN"))

#: CI floor: measured throughput must stay above this fraction of the
#: committed reference rate.
GUARD_BAND = 0.20

#: The cell is deliberately small (seconds, not minutes): CI runs it on
#: every push.  It is the same workload shape as the fig5 cell, scaled
#: down; the full-size guard lives in ``BENCH_sim.json``'s fig5_cell.
SPEC = RunSpec(kind="oltp", benchmark="tpcc", scale=100, design="LC",
               profile="tiny", duration=8.0, nworkers=8)


def measure() -> dict:
    """Time one engine cell end to end (no cache — we are the timer)."""
    start = time.perf_counter()
    result = execute(SPEC)
    elapsed = time.perf_counter() - start
    txns = result.total_metric_txns
    return {
        "schema": "repro-engine-bench/1",
        "spec": SPEC.to_dict(),
        "wall_seconds": elapsed,
        "metric_txns": txns,
        "txns_per_wall_sec": round(txns / elapsed, 1),
    }


def test_enginebench_guard_band():
    measured = measure()
    with open(MEASURED_PATH, "w") as fh:
        json.dump(measured, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if REGEN or not BENCH_PATH.exists():
        with open(BENCH_PATH, "w") as fh:
            json.dump(measured, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {BENCH_PATH}")
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    print(f"\nengine cell: {measured['wall_seconds']:.2f}s wall, "
          f"{measured['metric_txns']:,} txns "
          f"({measured['txns_per_wall_sec']:,.0f}/s vs committed "
          f"{committed['txns_per_wall_sec']:,.0f}/s)")
    assert measured["metric_txns"] == committed["metric_txns"], (
        "metric_txns drifted — the engine's virtual-time behavior "
        "changed; regenerate BENCH_engine.json only if that is intended")
    floor = GUARD_BAND * committed["txns_per_wall_sec"]
    assert measured["txns_per_wall_sec"] >= floor, (
        f"engine throughput {measured['txns_per_wall_sec']:,.0f} txns/s "
        f"fell below {GUARD_BAND:.0%} of the committed "
        f"{committed['txns_per_wall_sec']:,.0f} txns/s — the hot-path "
        f"rewrite regressed")
