"""Figure 6: throughput over the whole (scaled) run.

Paper phenomena to reproduce:

* (a–b) TPC-C: once the SSD's dirty fraction crosses λ the lazy cleaner
  activates and starts consuming disk and SSD bandwidth that forward
  processing loses (the paper's throughput drop at 1:50 h / 2:30 h); the
  2K (smaller) database crosses no later than the 4K one.
* (c–d) TPC-E: the ramp-up (SSD filling at the disks' random-read rate)
  consumes a much larger fraction of the run than on TPC-C, and the
  40K-customer ramp-up is shorter than the 20K one (§4.3.1).
"""

from benchmarks.common import (
    BUCKET,
    CHECKPOINT_40MIN,
    OLTP_DURATION,
    oltp_run,
    once,
    ramp_fraction,
)
from repro.harness.report import format_series


def test_fig6_tpcc_cleaner_activates_at_lambda_crossing(benchmark):
    result = once(benchmark, lambda: oltp_run("tpcc", 2_000, "LC"))
    series = result.throughput_series(smooth=3)
    print()
    print(format_series("Figure 6(a) analog — TPC-C 2K, LC tpmC over time",
                        series[:30], "t(s)", "tpmC"))
    manager = result.system.ssd_manager
    limit = manager.config.dirty_limit_frames
    cross = result.sampler.dirty_cross_time(limit)
    assert cross < float("inf"), "dirty fraction never crossed lambda"
    # The cleaner is the mechanism behind the paper's drop: it must be
    # inactive before the crossing and busy after it.
    assert manager.stats.cleaner_pages > 0
    # After the crossing the system pays the cleaner tax: throughput
    # plateaus — the tail must not exceed the peak.
    rates = [rate for _, rate in series]
    peak = max(rates)
    tail = sum(rates[-5:]) / 5
    print(f"\nlambda crossed at t={cross - result.start_time:.0f}s, "
          f"peak {peak:,.0f}, tail {tail:,.0f}, "
          f"cleaner wrote {manager.stats.cleaner_pages:,} pages")
    assert tail <= peak * 1.02


def test_fig6_tpcc_larger_db_crosses_no_earlier(benchmark):
    def run():
        out = {}
        for scale in (2_000, 4_000):
            result = oltp_run("tpcc", scale, "LC")
            limit = result.system.ssd_manager.config.dirty_limit_frames
            out[scale] = (result.sampler.dirty_cross_time(limit)
                          - result.start_time)
        return out

    crossings = once(benchmark, run)
    print("\nlambda crossing times:", crossings)
    # Paper: 1:50 h at 2K vs 2:30 h at 4K.  At compressed scale the gap
    # can shrink to sampler resolution, but must not invert.
    assert crossings[2_000] <= crossings[4_000]


def test_fig6_tpce_ramp_up_dominates_run(benchmark):
    """§4.3.1: DW reached steady state only after 8.5–10 h of the
    10-hour TPC-E runs, while TPC-C ramps early in the run."""
    def run():
        fractions = {}
        for benchmark_name, scale in (("tpcc", 2_000), ("tpce", 20)):
            kwargs = ({"checkpoint_interval": CHECKPOINT_40MIN}
                      if benchmark_name == "tpce" else {})
            result = oltp_run(benchmark_name, scale, "DW", **kwargs)
            fractions[benchmark_name] = ramp_fraction(result)
        return fractions

    fractions = once(benchmark, run)
    print("\nramp fraction of run (throughput reaching 80% of steady):",
          {k: round(v, 2) for k, v in fractions.items()})
    assert fractions["tpce"] > fractions["tpcc"]


def test_fig6_tpce_40k_fills_ssd_faster_than_20k(benchmark):
    """§4.3.1: at 20K the working set nearly fits the SSD, so repeated
    re-dirtying invalidates SSD pages and slows the fill; the 40K
    database fills the SSD faster."""
    def run():
        fills = {}
        for scale in (20, 40):
            result = oltp_run("tpce", scale, "DW",
                              checkpoint_interval=CHECKPOINT_40MIN)
            used = result.sampler.samples[-1].ssd_used
            threshold = int(used * 0.8)
            fills[scale] = (result.sampler.fill_time(threshold)
                            - result.start_time) / max(used, 1)
        return fills

    fills = once(benchmark, run)
    print("\nnormalized fill rates (s per frame, lower = faster):",
          {k: round(v * 1000, 3) for k, v in fills.items()})
    assert fills[40] <= fills[20] * 1.5


def test_fig6_all_designs_produce_full_series(benchmark):
    def run():
        return {design: oltp_run("tpcc", 2_000, design)
                for design in ("noSSD", "DW", "LC", "TAC")}

    results = once(benchmark, run)
    nbuckets = int(OLTP_DURATION / BUCKET)
    print()
    for design, result in results.items():
        series = result.throughput_series(smooth=3)
        assert len(series) == nbuckets
        tail = [rate for _, rate in series[-5:]]
        print(f"{design:6s} final tpmC ~ {sum(tail) / len(tail):,.0f}")
