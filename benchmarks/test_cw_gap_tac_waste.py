"""Two quantitative claims from the paper's text.

* §4.1.1: CW is consistently the worst SSD design — "for the 20K
  customer TPC-E database, CW was 21.6% and 23.3% slower than DW and
  LC" — because the updated part of the working set never benefits.
* §2.5/§4.2: TAC's logical invalidation wastes SSD space on invalid
  pages (7.4/10.4/8.9 GB of 140 GB at 1K/2K/4K TPC-C warehouses), while
  CW/DW/LC reclaim invalidated frames physically.
"""

from benchmarks.common import CHECKPOINT_40MIN, PROFILE, oltp_run, once
from repro.harness.report import format_table


def test_cw_slower_than_dw_and_lc_on_tpce(benchmark):
    def run():
        return {
            design: oltp_run("tpce", 20, design,
                             checkpoint_interval=CHECKPOINT_40MIN,
                             ).steady_state_throughput()
            for design in ("CW", "DW", "LC")
        }

    throughputs = once(benchmark, run)
    gap_dw = 1 - throughputs["CW"] / throughputs["DW"]
    gap_lc = 1 - throughputs["CW"] / throughputs["LC"]
    print(f"\nCW vs DW: {gap_dw:+.1%} (paper -21.6%), "
          f"CW vs LC: {gap_lc:+.1%} (paper -23.3%)")
    assert throughputs["CW"] < throughputs["DW"]
    assert throughputs["CW"] < throughputs["LC"]
    assert 0.03 < gap_dw < 0.6


def test_tac_wastes_ssd_space_on_invalid_pages(benchmark):
    def run():
        out = {}
        for scale in (1_000, 2_000):
            tac = oltp_run("tpcc", scale, "TAC")
            dw = oltp_run("tpcc", scale, "DW")
            out[scale] = (tac.system.ssd_manager.table.invalid_count,
                          dw.system.ssd_manager.table.invalid_count)
        return out

    waste = once(benchmark, run)
    ssd_frames = PROFILE.ssd_frames
    rows = []
    for scale, (tac_invalid, dw_invalid) in waste.items():
        rows.append([f"{scale // 1000}K wh",
                     f"{tac_invalid:,} ({tac_invalid / ssd_frames:.1%})",
                     f"{dw_invalid:,}"])
    print()
    print(format_table(
        "TAC SSD waste — invalid frames (paper: 7.4–10.4 GB of 140 GB)",
        ["config", "TAC invalid", "DW invalid"], rows))
    for scale, (tac_invalid, dw_invalid) in waste.items():
        assert tac_invalid > 0, scale
        assert dw_invalid == 0, scale
        # In the paper's band: a few percent of the SSD.
        assert tac_invalid / ssd_frames > 0.01, scale


def test_tac_latch_contention_exceeds_ours(benchmark):
    """§2.5: TAC's write-after-read holds page latches while forward
    processing wants the page; the paper saw ~25% longer latch waits on
    TPC-E.  The comparison is against DW — the write-through design that
    shares every latching path with TAC *except* the post-read write."""
    def run():
        return {
            design: oltp_run("tpce", 20, design,
                             checkpoint_interval=CHECKPOINT_40MIN)
            for design in ("TAC", "DW")
        }

    results = once(benchmark, run)
    admission_wait = {}
    for design, result in results.items():
        stats = result.system.bp.stats
        txns = max(1, sum(result.txn_counts.values()))
        admission_wait[design] = (
            stats.latch_wait_by_reason.get("admission-write", 0.0)
            / txns * 1e6)
        print(f"{design:4s} latch wait by cause (us/txn): " + ", ".join(
            f"{reason}={wait / txns * 1e6:.1f}"
            for reason, wait in stats.latch_wait_by_reason.items()))
    # TAC's write-after-read is a latch source no other design has;
    # eviction-write latching is common to all designs and excluded.
    assert admission_wait["TAC"] > 0
    assert admission_wait["DW"] == 0
