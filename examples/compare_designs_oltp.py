#!/usr/bin/env python
"""Compare all five configurations on an update-intensive OLTP workload.

Reproduces the core of the paper's Figure 5 story at example scale: on a
TPC-C-like workload the write-back LC design wins by a wide margin, the
write-through designs (DW, TAC) give a modest gain, CW trails them, and
everything beats the plain-disk configuration.

Run:  python examples/compare_designs_oltp.py  [--benchmark tpce]
"""

import argparse

from repro.harness.experiments import (
    SCALE_PROFILES,
    run_oltp_experiment,
    speedup_over_nossd,
)
from repro.harness.report import format_table

DESIGNS = ("noSSD", "CW", "DW", "LC", "TAC")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", choices=("tpcc", "tpce"),
                        default="tpcc")
    parser.add_argument("--scale", type=int, default=None,
                        help="warehouses (tpcc) or customers/1000 (tpce)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="virtual seconds per run")
    args = parser.parse_args()
    scale = args.scale or (400 if args.benchmark == "tpcc" else 8)
    profile = SCALE_PROFILES["small"]

    results = {}
    for design in DESIGNS:
        result = run_oltp_experiment(
            args.benchmark, scale, design, duration=args.duration,
            profile=profile, nworkers=16,
            checkpoint_interval=(args.duration / 3
                                 if args.benchmark == "tpce" else None))
        results[design] = result
        print(f"ran {design:6s} -> {result.metric_name} "
              f"{result.steady_state_throughput():,.1f}")

    throughputs = {d: r.steady_state_throughput() for d, r in results.items()}
    speedups = speedup_over_nossd(throughputs)
    rows = []
    for design in DESIGNS:
        result = results[design]
        manager = result.system.ssd_manager
        rows.append([
            design,
            f"{throughputs[design]:,.1f}",
            f"{speedups[design]:.2f}x",
            f"{result.system.bp.stats.ssd_hit_rate:.1%}",
            f"{manager.used_frames:,}",
            f"{manager.table.invalid_count:,}",
        ])
    print()
    print(format_table(
        f"{args.benchmark.upper()} — design comparison "
        f"(steady state over the last 20% of the run)",
        ["design", results["noSSD"].metric_name, "speedup",
         "SSD hit rate", "SSD frames", "invalid (waste)"],
        rows))


if __name__ == "__main__":
    main()
