#!/usr/bin/env python
"""The paper's future-work extension: reuse SSD contents across restarts.

§4.3.1 shows ramp-up times of many hours because the SSD must refill at
the disks' slow random-read rate after every restart, and §6 proposes
persisting the SSD mapping so a restart starts warm.  This example runs
the same crash/restart sequence in both modes and compares the SSD state
and early post-restart throughput.

Run:  python examples/warm_restart.py
"""

from repro.engine.recovery import simulate_crash_and_recover
from repro.harness.experiments import SCALE_PROFILES, make_system, make_workload
from repro.harness.runner import WorkloadRunner


def run_one(warm: bool):
    profile = SCALE_PROFILES["small"]
    workload = make_workload("tpce", 4, profile)
    system = make_system("tpce", workload, "DW", profile, warm_restart=warm)
    runner = WorkloadRunner(system, workload, nworkers=16)

    # Phase 1: warm the SSD.
    runner.run(15.0)
    runner.stop()
    system.run(until=system.env.now + 2.0)
    before = system.ssd_manager.used_frames

    # Crash and recover.
    crash = system.env.process(
        simulate_crash_and_recover(system.env, system))
    system.env.run(crash)
    after = system.ssd_manager.used_frames

    # Phase 2: measure throughput right after the restart.
    runner2 = WorkloadRunner(system, workload, nworkers=16, seed=777)
    result = runner2.run(8.0, setup=False)
    early = result.throughput_series()
    early_rate = sum(rate for _, rate in early[:3]) / 3
    return before, after, early_rate


def main():
    print(f"{'mode':8s} {'SSD before':>12s} {'SSD after':>12s} "
          f"{'early tpsE':>12s}")
    rates = {}
    for warm in (False, True):
        before, after, early = run_one(warm)
        rates[warm] = early
        mode = "warm" if warm else "cold"
        print(f"{mode:8s} {before:12,} {after:12,} {early:12,.1f}")
    gain = rates[True] / max(rates[False], 1e-9)
    print(f"\nwarm restart starts {gain:.1f}x faster — the ramp-up the "
          f"paper measured in hours is gone")


if __name__ == "__main__":
    main()
