#!/usr/bin/env python
"""Tune the lazy-cleaning threshold λ and watch the write-back dynamics.

Reproduces the paper's Figure 7 experiment at example scale: with a
higher λ the SSD is allowed to hold more dirty pages, the cleaner issues
fewer disk I/Os, and throughput rises.  Also prints the dirty-fraction
trajectory so the λ-crossing (the Figure 6 throughput drop) is visible.

Run:  python examples/lazy_cleaning_tuning.py
"""

from repro.harness.experiments import SCALE_PROFILES, run_oltp_experiment
from repro.harness.report import format_series, format_table


def main():
    profile = SCALE_PROFILES["small"]
    duration = 24.0
    results = {}
    for lam in (0.10, 0.50, 0.90):
        results[lam] = run_oltp_experiment(
            "tpcc", 800, "LC", duration=duration, profile=profile,
            nworkers=16, dirty_threshold=lam)
        print(f"ran lambda={lam:.0%}")

    rows = []
    for lam, result in results.items():
        manager = result.system.ssd_manager
        rows.append([
            f"{lam:.0%}",
            f"{result.steady_state_throughput():,.0f}",
            f"{manager.dirty_frames:,}",
            f"{manager.stats.cleaner_pages:,}",
            f"{manager.stats.cleaner_ios:,}",
        ])
    print()
    print(format_table(
        "LC λ sweep on TPC-C (paper Figure 7: higher λ wins)",
        ["lambda", "steady tpmC", "dirty SSD pages",
         "cleaner pages", "cleaner I/Os"],
        rows))

    # Dirty-fraction trajectory for the middle setting: shows the ramp
    # until λ is crossed and the cleaner pins it there.
    result = results[0.50]
    trajectory = [
        (sample.time - result.start_time, 100 * sample.ssd_dirty_fraction)
        for sample in result.sampler.samples
    ]
    print()
    print(format_series("SSD dirty fraction over time (λ=50%)",
                        trajectory, "t(s)", "dirty %"))


if __name__ == "__main__":
    main()
