#!/usr/bin/env python
"""Quickstart: build a DBMS with an SSD-extended buffer pool and watch
the SSD absorb the working set.

This walks the public API end to end:

1. assemble a ``System`` (simulated disks + SSD + engine + a design),
2. run a skewed read/write page workload against the buffer pool,
3. read the counters the paper's evaluation is built from.

Run:  python examples/quickstart.py
"""

import random

from repro.core import SsdDesignConfig
from repro.harness.system import System, SystemConfig


def main():
    # A small instance of the paper's setup: buffer pool : SSD : database
    # = 20 : 140 : 400 (the paper's GB ratios, here in pages).
    config = SystemConfig(
        design="LC",                       # try: noSSD, CW, DW, LC, TAC
        db_pages=4_000,
        bp_pages=200,
        ssd=SsdDesignConfig(ssd_frames=1_400, dirty_threshold=0.5),
    )
    system = System(config)
    env, bp = system.env, system.bp

    rng = random.Random(42)

    def client(accesses):
        """A closed-loop client: skewed reads, 1 write per 3 accesses."""
        for _ in range(accesses):
            # 80% of accesses to the first 20% of pages.
            if rng.random() < 0.8:
                page = rng.randrange(config.db_pages // 5)
            else:
                page = rng.randrange(config.db_pages)
            frame = yield from bp.fetch(page)
            if rng.random() < 0.33:
                bp.mark_dirty(frame)
            bp.unpin(frame)

    clients = [env.process(client(2_000)) for _ in range(8)]
    env.run(env.all_of(clients))
    env.run(until=env.now + 5)  # let background cleaning settle

    stats, manager = bp.stats, system.ssd_manager
    print(f"design            : {system.design}")
    print(f"virtual time      : {env.now:8.1f} s")
    print(f"page accesses     : {stats.hits + stats.misses:8,}")
    print(f"buffer hit rate   : {stats.hit_rate:8.1%}")
    print(f"SSD hit rate      : {stats.ssd_hit_rate:8.1%}  "
          f"(share of misses served by the SSD)")
    print(f"SSD frames used   : {manager.used_frames:8,} / "
          f"{config.ssd.ssd_frames:,}")
    print(f"SSD dirty frames  : {manager.dirty_frames:8,}  "
          f"(LC write-back backlog)")
    print(f"disk reads/writes : {system.data_device.stats.pages_read:8,} /"
          f" {system.data_device.stats.pages_written:,} pages")
    print(f"SSD  reads/writes : {system.ssd_device.stats.pages_read:8,} /"
          f" {system.ssd_device.stats.pages_written:,} pages")

    # The Figure 3 invariants hold at any quiescent point.
    manager.check_invariants()
    print("page-copy invariants (paper Figure 3): OK")


if __name__ == "__main__":
    main()
