#!/usr/bin/env python
"""Crash a write-back (LC) system and recover it — and show why LC's
checkpoint must flush the SSD's dirty pages.

The paper's §3.2: because LC's SSD may hold the *newest* copy of a page,
the sharp checkpoint has to flush dirty SSD pages to disk before the log
is truncated.  This example runs the same crash twice:

1. with the correct LC checkpoint — recovery restores every committed
   update;
2. with a sabotaged checkpoint that skips the SSD drain — recovery
   detects lost committed updates.

Run:  python examples/crash_recovery.py
"""

import random

from repro.core import SsdDesignConfig
from repro.engine.recovery import RecoveryError, simulate_crash_and_recover
from repro.harness.system import System, SystemConfig


def build_system():
    return System(SystemConfig(
        design="LC", db_pages=800, bp_pages=64,
        ssd=SsdDesignConfig(ssd_frames=300, dirty_threshold=0.9)))


def run_committed_updates(system, n=400, seed=7):
    """Apply and commit n updates; return the committed-state oracle."""
    env, bp, wal = system.env, system.bp, system.wal
    rng = random.Random(seed)
    oracle = {}

    def worker():
        for _ in range(n):
            page = rng.randrange(400)
            frame = yield from bp.fetch(page)
            bp.mark_dirty(frame)
            written = (frame.page_id, frame.version)
            bp.unpin(frame)
            yield from wal.force(wal.tail_lsn)  # commit
            oracle[written[0]] = max(oracle.get(written[0], 0), written[1])

    process = env.process(worker())
    env.run(process)
    env.run(until=env.now + 5)
    return oracle


def main():
    # --- Correct LC ---------------------------------------------------
    system = build_system()
    oracle = run_committed_updates(system)
    print(f"committed updates to {len(oracle)} pages; "
          f"{system.ssd_manager.dirty_frames} dirty pages sit in the SSD")

    checkpoint = system.env.process(system.checkpointer.checkpoint())
    system.env.run(checkpoint)
    print(f"sharp checkpoint flushed "
          f"{system.ssd_manager.stats.checkpoint_ssd_flushes} dirty SSD "
          f"pages and truncated the log")

    crash = system.env.process(simulate_crash_and_recover(
        system.env, system, committed=oracle))
    redone = system.env.run(crash)
    print(f"CRASH + recovery: redid {redone} pages, "
          f"all committed updates intact\n")

    # --- Sabotaged LC: skip the SSD drain at checkpoint ----------------
    system = build_system()
    # The managers are slotted, so the bug is injected at the class
    # level (and restored afterwards so other systems stay correct).
    lc_cls = type(system.ssd_manager)
    correct_on_checkpoint = lc_cls.on_checkpoint
    lc_cls.on_checkpoint = lambda self: iter(())  # the bug
    try:
        oracle = run_committed_updates(system)
        checkpoint = system.env.process(system.checkpointer.checkpoint())
        system.env.run(checkpoint)
        print("sabotaged checkpoint (no SSD drain) truncated the log anyway")
        try:
            crash = system.env.process(simulate_crash_and_recover(
                system.env, system, committed=oracle))
            system.env.run(crash)
        except RecoveryError as error:
            print(f"recovery FAILED as the paper predicts: {error}")
        else:
            raise SystemExit(
                "expected recovery to fail without the SSD drain")
    finally:
        lc_cls.on_checkpoint = correct_on_checkpoint


if __name__ == "__main__":
    main()
