#!/usr/bin/env python
"""Run the TPC-H-like power and throughput tests on two configurations.

Shows the decision-support side of the paper (§4.4): the SSD helps even
a scan-dominated workload because some queries are dominated by random
LINEITEM index lookups — and it helps the multi-stream throughput test
more than the serial power test, because concurrent streams turn the
disks' sequential access pattern into a random one.

Run:  python examples/tpch_power_run.py
"""

from repro.harness.experiments import SCALE_PROFILES, run_tpch_experiment
from repro.harness.report import format_table


def main():
    profile = SCALE_PROFILES["small"]
    results = {
        design: run_tpch_experiment(30, design, profile=profile)
        for design in ("noSSD", "DW")
    }

    rows = [
        [design, f"{r.power:,.0f}", f"{r.throughput:,.0f}",
         f"{r.qphh:,.0f}", f"{r.power_elapsed:.2f}s",
         f"{r.throughput_elapsed:.2f}s"]
        for design, r in results.items()
    ]
    print(format_table(
        "TPC-H @30 SF — power vs throughput test",
        ["design", "QppH", "QthH", "QphH", "power elapsed",
         "throughput elapsed"],
        rows))

    base, ssd = results["noSSD"], results["DW"]
    print(f"\npower-test speedup      : {ssd.power / base.power:.2f}x")
    print(f"throughput-test speedup : "
          f"{ssd.throughput / base.throughput:.2f}x  <- bigger, as in the paper")

    # Per-query times: the lookup-heavy queries gain the most.
    gains = sorted(
        ((base.query_times[q] / ssd.query_times[q], q)
         for q in base.query_times), reverse=True)
    top = ", ".join(f"Q{q} ({gain:.1f}x)" for gain, q in gains[:5])
    print(f"biggest per-query gains : {top}")


if __name__ == "__main__":
    main()
