"""Dashboard rendering and the live HTTP API."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.runstore.dashboard import make_server, render_dashboard
from repro.runstore.provenance import Provenance
from repro.runstore.schema import SCHEMA_VERSION
from repro.runstore.store import RunStore, StoreError


def populate(store, commits=("aaaa111111", "bbbb222222")):
    """Two designs across two commits: a minimal trajectory."""
    for i, commit in enumerate(commits):
        prov = Provenance(git_commit=commit, git_branch="main",
                          git_dirty=False, source_hash=f"src{i}")
        for design, value in (("LC", 100.0 + i * 10), ("LS", 150.0 + i)):
            store.record_run(
                {"kind": "oltp", "benchmark": "tpcc", "scale": 100,
                 "design": design, "profile": "small"},
                {"value": value, "latency_p99": 0.01, "waf": 1.2 + i},
                provenance=prov, metric_name="tpmC")


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.db") as s:
        populate(s)
        yield s


class TestRenderDashboard:
    def test_contains_svg_trajectories(self, store):
        page = render_dashboard(store)
        assert "<svg" in page
        assert "Throughput" in page
        assert "Write amplification" in page
        # One polyline per design per charted metric.
        assert page.count("<polyline") >= 2

    def test_lists_recent_runs_and_commits(self, store):
        page = render_dashboard(store)
        assert "aaaa111111"[:10] in page
        assert "tpcc/100/LC" in page
        assert "2 commits" in page

    def test_single_commit_note(self, tmp_path):
        with RunStore(tmp_path / "one.db") as one:
            populate(one, commits=("aaaa111111",))
            page = render_dashboard(one)
        assert "Single-commit history" in page

    def test_empty_store_renders(self, tmp_path):
        with RunStore(tmp_path / "empty.db") as empty:
            page = render_dashboard(empty)
        assert "no runs recorded" in page

    def test_design_filter(self, store):
        page = render_dashboard(store, design="LC")
        assert "tpcc/100/LC" in page
        assert "tpcc/100/LS" not in page


@pytest.fixture
def server(store):
    srv = make_server(str(store.path), port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield f"http://{host}:{port}"
    srv.shutdown()
    srv.server_close()


def get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode()


class TestHttpApi:
    def test_index_serves_dashboard(self, server):
        status, page = get(f"{server}/")
        assert status == 200
        assert "<svg" in page
        assert "repro run store" in page

    def test_api_runs(self, server):
        status, body = get(f"{server}/api/runs?design=LC")
        assert status == 200
        doc = json.loads(body)
        assert len(doc["runs"]) == 2
        assert all(run["design"] == "LC" for run in doc["runs"])
        assert doc["runs"][0]["metrics"]["value"] == 110.0

    def test_api_trajectory(self, server):
        status, body = get(f"{server}/api/trajectory?metric=waf")
        doc = json.loads(body)
        assert status == 200
        assert doc["metric"] == "waf"
        assert sorted(doc["series"]) == ["LC", "LS"]
        assert [p["value"] for p in doc["series"]["LC"]] == [1.2, 2.2]

    def test_healthz(self, server):
        status, body = get(f"{server}/healthz")
        assert status == 200
        assert json.loads(body)["schema_version"] == SCHEMA_VERSION

    def test_unknown_path_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(f"{server}/nope")
        assert excinfo.value.code == 404

    def test_sees_runs_recorded_after_startup(self, server, store):
        before = json.loads(get(f"{server}/api/runs")[1])
        store.record_run(
            {"kind": "oltp", "benchmark": "tpcc", "scale": 100,
             "design": "DW", "profile": "small"},
            {"value": 90.0}, provenance=Provenance(git_commit="cccc"))
        after = json.loads(get(f"{server}/api/runs")[1])
        assert len(after["runs"]) == len(before["runs"]) + 1


class TestMakeServer:
    def test_broken_database_fails_fast(self, tmp_path):
        bad = tmp_path / "bad.db"
        bad.write_bytes(b"not sqlite" * 20)
        with pytest.raises(StoreError):
            make_server(str(bad), port=0)
