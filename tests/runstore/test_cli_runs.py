"""The ``repro runs`` / ``repro serve`` CLI surface, end to end."""

import json

import pytest

from repro.cli import build_parser, main
from repro.runstore.provenance import Provenance
from repro.runstore.store import RunStore, db_path


def populate(n_per_design=1, designs=("noSSD", "LC"), p99=0.01):
    """Record straight into the test's isolated default database (the
    autouse conftest fixture points REPRO_RUNSTORE at tmp_path)."""
    with RunStore(db_path()) as store:
        for design in designs:
            for i in range(n_per_design):
                store.record_run(
                    {"kind": "oltp", "benchmark": "tpcc", "scale": 100,
                     "design": design, "profile": "small", "seed": 7},
                    {"value": 100.0 + i, "latency_p99": p99, "waf": 1.3},
                    provenance=Provenance(git_commit="deadbeef00",
                                          git_branch="main",
                                          git_dirty=False),
                    metric_name="tpmC")


class TestParser:
    def test_runs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runs"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8642
        assert args.host == "127.0.0.1"

    def test_recording_flags_everywhere(self):
        for command in ("oltp", "tpch", "sweep", "chaos", "analyze"):
            extra = ["trace.jsonl"] if command == "analyze" else []
            args = build_parser().parse_args(
                [command, *extra, "--no-db", "--db", "x.db"])
            assert args.no_db is True
            assert args.db == "x.db"


class TestQueries:
    def test_missing_db_exits_2(self, capsys):
        assert main(["runs", "list"]) == 2
        assert "no run database" in capsys.readouterr().err

    def test_list(self, capsys):
        populate()
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "tpcc/100/LC" in out
        assert "deadbeef00"[:10] in out

    def test_list_design_filter(self, capsys):
        populate()
        assert main(["runs", "list", "--design", "LC"]) == 0
        out = capsys.readouterr().out
        assert "tpcc/100/LC" in out
        assert "tpcc/100/noSSD" not in out

    def test_show(self, capsys):
        populate()
        assert main(["runs", "show", "1"]) == 0
        out = capsys.readouterr().out
        assert "run #1" in out
        assert "latency_p99" in out
        assert "branch main" in out

    def test_show_unknown_run(self, capsys):
        populate()
        assert main(["runs", "show", "999"]) == 2

    def test_compare(self, capsys):
        populate(n_per_design=2)
        assert main(["runs", "compare"]) == 0
        out = capsys.readouterr().out
        assert "newest run per design" in out
        assert "LC" in out and "noSSD" in out
        assert "101.0" in out  # the newest run's value, not the oldest

    def test_compare_design_order(self, capsys):
        populate()
        assert main(["runs", "compare", "--designs", "LC,noSSD"]) == 0
        out = capsys.readouterr().out
        assert out.index(" LC ") < out.index("noSSD")

    def test_compare_missing_design(self, capsys):
        populate()
        assert main(["runs", "compare", "--designs", "LS"]) == 2
        assert "no recorded runs" in capsys.readouterr().err

    def test_regress_ok_on_fresh_history(self, capsys):
        populate()
        assert main(["runs", "regress"]) == 0
        assert "regress OK" in capsys.readouterr().out

    def test_regress_detects_and_exits_1(self, capsys):
        populate(n_per_design=4)
        with RunStore(db_path()) as store:
            store.record_run(
                {"kind": "oltp", "benchmark": "tpcc", "scale": 100,
                 "design": "LC", "profile": "small"},
                {"value": 100.0, "latency_p99": 0.5},
                provenance=Provenance(git_commit="deadbeef00"))
        assert main(["runs", "regress"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out
        assert "latency_p99" in out

    def test_regress_no_matches_exits_2(self, capsys):
        populate()
        assert main(["runs", "regress", "--design", "LS"]) == 2

    def test_bench_missing_exits_2(self, capsys):
        populate()
        assert main(["runs", "bench"]) == 2

    def test_bench_round_trip(self, capsys):
        populate()
        with RunStore(db_path()) as store:
            store.record_bench({"workload": "oltp", "designs": {}},
                               provenance=Provenance())
        assert main(["runs", "bench", "--workload", "oltp"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "oltp"


class TestRecordingCommands:
    def test_oltp_records_by_default(self, capsys):
        code = main(["oltp", "--scale", "50", "--profile", "tiny",
                     "--duration", "2", "--workers", "4",
                     "--designs", "noSSD"])
        assert code == 0
        with RunStore(db_path()) as store:
            runs = store.list_runs()
            assert len(runs) == 1
            assert runs[0]["design"] == "noSSD"
            assert runs[0]["kind"] == "oltp"
            metrics = store.metrics_for(runs[0]["id"])
            assert metrics["value"] > 0

    def test_chaos_records_outcomes(self, capsys):
        code = main(["chaos", "--points", "1", "--designs", "DW",
                     "--policies", "sharp", "--duration", "3"])
        assert code == 0
        with RunStore(db_path()) as store:
            runs = store.list_runs(kind="chaos")
            assert len(runs) == 1
            assert store.chaos_for(runs[0]["id"])

    def test_serve_missing_db_exits_2(self, capsys):
        assert main(["serve"]) == 2
        assert "no run database" in capsys.readouterr().err
