"""RunStore recording/query round-trips and the regression check."""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.runstore.provenance import Provenance
from repro.runstore.store import RunStore, metrics_from_result

PROV = Provenance(git_commit="deadbeef00", git_branch="main",
                  git_dirty=False, source_hash="cafe", host="test",
                  python="3.x")


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.db") as s:
        yield s


def record(store, design="LC", value=100.0, p99=0.01, waf=None,
           commit="deadbeef00", status="ok", scale=100, created_at=None):
    metrics = {"value": value, "latency_p99": p99}
    if waf is not None:
        metrics["waf"] = waf
    prov = Provenance(git_commit=commit, git_branch="main",
                      git_dirty=False, source_hash="cafe")
    return store.record_run(
        {"kind": "oltp", "benchmark": "tpcc", "scale": scale,
         "design": design, "profile": "small", "seed": 7,
         "duration": 30.0},
        metrics, provenance=prov, status=status, metric_name="tpmC",
        created_at=created_at)


class TestRecordAndQuery:
    def test_round_trip(self, store):
        run_id = record(store, value=123.0, waf=1.5)
        run, metrics = store.get_run(run_id)
        assert run["design"] == "LC"
        assert run["git_commit"] == "deadbeef00"
        assert run["metric_name"] == "tpmC"
        assert run["duration"] == 30.0
        assert metrics["value"] == 123.0
        assert metrics["waf"] == 1.5

    def test_list_newest_first_with_filters(self, store):
        record(store, design="LC")
        record(store, design="DW")
        record(store, design="LC")
        runs = store.list_runs(design="LC")
        assert [run["design"] for run in runs] == ["LC", "LC"]
        assert runs[0]["id"] > runs[1]["id"]
        assert store.list_runs(design="noSSD") == []

    def test_commit_filter_accepts_abbreviations(self, store):
        record(store, commit="deadbeef00")
        record(store, commit="0123456789")
        assert len(store.list_runs(commit="dead")) == 1

    def test_none_metrics_are_skipped(self, store):
        run_id = store.record_run(
            {"benchmark": "tpcc", "scale": 1, "design": "LC"},
            {"value": 1.0, "waf": None}, provenance=PROV)
        assert store.metrics_for(run_id) == {"value": 1.0}

    def test_latest_per_design(self, store):
        record(store, design="LC", value=100.0)
        record(store, design="LS", value=150.0)
        record(store, design="LC", value=110.0)
        latest = store.latest_per_design(benchmark="tpcc")
        got = {run["design"]: metrics["value"] for run, metrics in latest}
        assert got == {"LC": 110.0, "LS": 150.0}

    def test_trajectory_is_oldest_first_per_design(self, store):
        for value in (100.0, 110.0, 120.0):
            record(store, design="LC", value=value)
        record(store, design="LS", value=150.0)
        series = store.trajectory("value", design="LC")
        assert list(series) == ["LC"]
        assert [point["value"] for point in series["LC"]] == \
            [100.0, 110.0, 120.0]

    def test_commits_in_first_seen_order(self, store):
        record(store, commit="aaaa")
        record(store, commit="bbbb")
        record(store, commit="aaaa")
        assert store.commits() == ["aaaa", "bbbb"]


@dataclass
class FakeOutcome:
    design: str
    policy: str
    crash_at: float
    ok: bool
    pages_redone: int = 0
    committed_pages: int = 0
    error: Optional[str] = None


class TestChaosAndBench:
    def test_chaos_round_trip(self, store):
        outcomes = [
            FakeOutcome("LC", "sharp", 1.0, True, 10, 50),
            FakeOutcome("LC", "sharp", 2.0, False, 0, 40, "page 3 stale"),
            FakeOutcome("DW", "fuzzy", 1.5, True, 5, 30),
        ]
        run_ids = store.record_chaos(outcomes, seed=7, provenance=PROV)
        assert len(run_ids) == 2  # one per (design, policy) group

        lc = next(run_id for run_id in run_ids
                  if store.get_run(run_id)[0]["design"] == "LC")
        run, metrics = store.get_run(lc)
        assert run["kind"] == "chaos"
        assert run["status"] == "failed"
        assert metrics["failed"] == 1.0
        points = store.chaos_for(lc)
        assert len(points) == 2
        assert points[1]["error"] == "page 3 stale"

    def test_chaos_runs_excluded_from_regress(self, store):
        store.record_chaos([FakeOutcome("LC", "sharp", 1.0, True)],
                           provenance=PROV)
        findings, groups = store.regress()
        assert groups == 0

    def test_bench_round_trip(self, store):
        assert store.latest_bench("oltp") is None
        store.record_bench({"workload": "oltp", "version": 1},
                           provenance=PROV)
        store.record_bench({"workload": "oltp", "version": 2},
                           provenance=PROV)
        assert store.latest_bench("oltp")["version"] == 2
        assert store.latest_bench("sim") is None


class TestRegress:
    def test_fresh_group_trivially_passes(self, store):
        record(store)
        findings, groups = store.regress()
        assert findings == []
        assert groups == 1

    def test_p99_regression_detected(self, store):
        for _ in range(5):
            record(store, p99=0.010)
        record(store, p99=0.050)
        findings, _ = store.regress()
        assert [f.metric for f in findings] == ["latency_p99"]
        assert findings[0].ratio == pytest.approx(5.0)
        assert findings[0].group_label == "tpcc/100/LC"

    def test_waf_regression_detected(self, store):
        for _ in range(3):
            record(store, waf=1.2)
        record(store, waf=2.0)
        findings, _ = store.regress()
        assert "waf" in {f.metric for f in findings}

    def test_throughput_drop_detected(self, store):
        for _ in range(3):
            record(store, value=100.0)
        record(store, value=60.0)
        findings, _ = store.regress()
        assert "value" in {f.metric for f in findings}

    def test_within_tolerance_passes(self, store):
        record(store, value=100.0, p99=0.010)
        record(store, value=90.0, p99=0.011)
        findings, groups = store.regress()
        assert findings == []
        assert groups == 1

    def test_failed_runs_excluded_from_baseline(self, store):
        record(store, value=100.0)
        record(store, value=1.0, status="crashed")
        record(store, value=95.0)
        findings, _ = store.regress()
        assert findings == []

    def test_groups_are_independent(self, store):
        for _ in range(3):
            record(store, design="LC", p99=0.010)
        record(store, design="LC", p99=0.050)
        for _ in range(3):
            record(store, design="LS", p99=0.010)
        record(store, design="LS", p99=0.010)
        findings, groups = store.regress()
        assert groups == 2
        assert {f.design for f in findings} == {"LC"}


class FakeLatencies:
    def count(self):
        return 4

    def summary(self):
        return {"mean": 0.02, "p50": 0.01, "p95": 0.03, "p99": 0.05}


class FakeOltpResult:
    metric_name = "tpmC"
    total_metric_txns = 500
    latencies = FakeLatencies()

    def steady_state_throughput(self):
        return 1234.0


class FakeTpchResult:
    qphh = 900.0
    power = 1000.0
    throughput = 810.0


class TestMetricsFromResult:
    def test_oltp_duck_typing(self):
        name, metrics = metrics_from_result(FakeOltpResult())
        assert name == "tpmC"
        assert metrics["value"] == 1234.0
        assert metrics["latency_p99"] == 0.05
        assert "waf" not in metrics  # no system attached

    def test_tpch_duck_typing(self):
        name, metrics = metrics_from_result(FakeTpchResult())
        assert name == "QphH"
        assert metrics == {"value": 900.0, "power": 1000.0,
                           "throughput": 810.0}

    def test_record_result_uses_extraction(self, store):
        run_id = store.record_result(
            {"kind": "oltp", "benchmark": "tpcc", "scale": 10,
             "design": "LC", "profile": "tiny"},
            FakeOltpResult(), provenance=PROV)
        run, metrics = store.get_run(run_id)
        assert run["metric_name"] == "tpmC"
        assert metrics["value"] == 1234.0
