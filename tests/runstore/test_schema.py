"""Schema and migration tests for the run store."""

import sqlite3

import pytest

from repro.runstore.schema import (
    MIGRATIONS,
    SCHEMA_VERSION,
    SchemaError,
    apply_migrations,
    schema_version,
)


def columns(conn, table):
    return [row[1] for row in conn.execute(f"PRAGMA table_info({table})")]


def tables(conn):
    return {row[0] for row in conn.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table'")}


class TestFreshDatabase:
    def test_fresh_db_lands_on_current_version(self):
        conn = sqlite3.connect(":memory:")
        steps = apply_migrations(conn)
        assert schema_version(conn) == SCHEMA_VERSION
        assert steps == SCHEMA_VERSION

    def test_all_tables_exist(self):
        conn = sqlite3.connect(":memory:")
        apply_migrations(conn)
        assert {"runs", "metrics", "chaos_outcomes",
                "bench_snapshots"} <= tables(conn)

    def test_apply_twice_is_a_noop(self):
        conn = sqlite3.connect(":memory:")
        apply_migrations(conn)
        assert apply_migrations(conn) == 0

    def test_every_version_has_a_migration(self):
        assert sorted(MIGRATIONS) == list(range(1, SCHEMA_VERSION + 1))


class TestUpgrade:
    def populate_v1(self, conn):
        """Build a v1 database with one recorded run, as an old checkout
        would have left it."""
        apply_migrations(conn, target=1)
        conn.execute(
            """
            INSERT INTO runs (created_at, kind, benchmark, scale, design,
                              profile, seed, status, spec_json, git_commit)
            VALUES (1.0, 'oltp', 'tpcc', 100, 'LC', 'small', 7, 'ok',
                    '{}', 'abc123')
            """)
        conn.execute(
            "INSERT INTO metrics (run_id, name, value) VALUES (1, 'value', "
            "42.0)")
        conn.commit()

    def test_v1_to_v2_preserves_rows(self):
        conn = sqlite3.connect(":memory:")
        self.populate_v1(conn)
        assert schema_version(conn) == 1

        apply_migrations(conn)
        assert schema_version(conn) == SCHEMA_VERSION
        run = conn.execute("SELECT * FROM runs").fetchone()
        assert run is not None
        metric = conn.execute(
            "SELECT name, value FROM metrics WHERE run_id = 1").fetchone()
        assert metric == ("value", 42.0)

    def test_v2_adds_columns_and_tables(self):
        conn = sqlite3.connect(":memory:")
        self.populate_v1(conn)
        apply_migrations(conn)
        assert "duration" in columns(conn, "runs")
        assert "metric_name" in columns(conn, "runs")
        assert {"chaos_outcomes", "bench_snapshots"} <= tables(conn)

    def test_upgraded_db_accepts_v2_writes(self):
        conn = sqlite3.connect(":memory:")
        self.populate_v1(conn)
        apply_migrations(conn)
        conn.execute(
            """
            INSERT INTO chaos_outcomes (run_id, design, policy, crash_at,
                                        ok) VALUES (1, 'LC', 'sharp', 2.5, 1)
            """)
        assert conn.execute(
            "SELECT COUNT(*) FROM chaos_outcomes").fetchone()[0] == 1


class TestRefusal:
    def test_newer_database_is_refused(self):
        conn = sqlite3.connect(":memory:")
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        with pytest.raises(SchemaError, match="newer"):
            apply_migrations(conn)

    def test_gap_in_chain_is_an_error(self):
        conn = sqlite3.connect(":memory:")
        with pytest.raises(SchemaError, match="no migration"):
            apply_migrations(conn, target=SCHEMA_VERSION + 10)
