"""Failure policy: a broken run database degrades, never fails a run."""

import sqlite3

import pytest

from repro.cli import main
from repro.runstore.provenance import Provenance
from repro.runstore.schema import SCHEMA_VERSION
from repro.runstore.store import RunStore, StoreError, open_store


class TestOpenStore:
    def test_corrupted_file_returns_none(self, tmp_path, capsys):
        path = tmp_path / "runs.db"
        path.write_bytes(b"this is not a sqlite database" * 10)
        assert open_store(path) is None
        assert "continuing without run recording" in \
            capsys.readouterr().err

    def test_newer_schema_returns_none(self, tmp_path, capsys):
        path = tmp_path / "runs.db"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.close()
        assert open_store(path) is None
        assert "newer" in capsys.readouterr().err

    def test_exclusively_locked_db_returns_none(self, tmp_path, capsys):
        path = tmp_path / "runs.db"
        holder = sqlite3.connect(path)
        holder.execute("BEGIN EXCLUSIVE")
        try:
            assert open_store(path, timeout=0.1) is None
            assert "continuing without" in capsys.readouterr().err
        finally:
            holder.rollback()
            holder.close()

    def test_healthy_db_opens(self, tmp_path):
        store = open_store(tmp_path / "runs.db")
        assert store is not None
        store.close()


class TestWriteLockFailure:
    def test_held_write_lock_raises_store_error(self, tmp_path):
        path = tmp_path / "runs.db"
        with RunStore(path) as first:
            first._conn.execute("BEGIN IMMEDIATE")
            with RunStore(path, timeout=0.01) as second:
                with pytest.raises(StoreError, match="write lock"):
                    with second._write(retries=2, backoff=0.01):
                        pass  # pragma: no cover - lock is never granted
            first._conn.execute("ROLLBACK")

    def test_record_fails_cleanly_not_partially(self, tmp_path):
        """A failed metrics insert rolls back the whole run row: the
        store never holds a run without its metrics."""
        path = tmp_path / "runs.db"
        with RunStore(path) as store:
            with pytest.raises(StoreError):
                # SQLite stores NaN as NULL, violating metrics.value's
                # NOT NULL constraint after the runs row is inserted.
                store.record_run(
                    {"benchmark": "tpcc", "scale": 1, "design": "LC"},
                    {"value": float("nan")},
                    provenance=Provenance())
            assert store.list_runs() == []


class TestHarnessFallback:
    def test_sweep_continues_json_only(self, tmp_path, monkeypatch,
                                       capsys):
        """A corrupted database must not cost the sweep its results."""
        bad = tmp_path / "runs.db"
        bad.write_bytes(b"garbage" * 100)
        monkeypatch.setenv("REPRO_RUNSTORE", str(bad))
        out_file = tmp_path / "sweep.json"
        code = main(["sweep", "--benchmark", "tpcc", "--scales", "50",
                     "--designs", "noSSD", "--profile", "tiny",
                     "--duration", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--output", str(out_file)])
        captured = capsys.readouterr()
        assert code == 0
        assert "continuing without run recording" in captured.err
        assert out_file.exists()
        assert "sweep — 1 runs" in captured.out

    def test_no_db_flag_skips_recording(self, tmp_path, monkeypatch,
                                        capsys):
        db = tmp_path / "runs.db"
        monkeypatch.setenv("REPRO_RUNSTORE", str(db))
        code = main(["oltp", "--scale", "50", "--profile", "tiny",
                     "--duration", "2", "--workers", "4",
                     "--designs", "noSSD", "--no-db"])
        assert code == 0
        assert not db.exists()
