"""Provenance capture: git identity, source hash, host."""

from repro.runstore import provenance as prov_mod
from repro.runstore.provenance import Provenance, capture, provenance_args


class TestCapture:
    def test_inside_this_repo(self):
        prov = capture(cwd=".", cached=False)
        # The repo under test is a git checkout, so git fields resolve.
        assert prov.git_commit and len(prov.git_commit) == 40
        assert prov.git_branch
        assert prov.git_dirty in (True, False)
        assert prov.source_hash
        assert prov.python

    def test_outside_a_repo_degrades(self, tmp_path):
        prov = capture(cwd=str(tmp_path), cached=False)
        assert prov.git_commit is None
        assert prov.git_branch is None
        assert prov.git_dirty is None
        # Non-git fields still record.
        assert prov.source_hash
        assert prov.python

    def test_cached_capture_reused(self, monkeypatch):
        monkeypatch.setattr(prov_mod, "_cached", None)
        first = capture()
        assert capture() is first

    def test_to_dict_round_trip(self):
        prov = Provenance(git_commit="abc", git_dirty=True)
        doc = prov.to_dict()
        assert doc["git_commit"] == "abc"
        assert doc["git_dirty"] is True
        assert doc["host"] is None


class TestProvenanceArgs:
    def test_queryable_subset_only(self):
        args = provenance_args()
        assert set(args) == {"git_commit", "git_branch", "git_dirty",
                             "source_hash"}
