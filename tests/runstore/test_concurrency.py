"""Concurrent recording: the single-writer guard under contention."""

import threading

from repro.runstore.provenance import Provenance
from repro.runstore.store import RunStore

PROV = Provenance(git_commit="deadbeef00", source_hash="cafe")


def writer(path, design, n, errors):
    try:
        with RunStore(path) as store:
            for i in range(n):
                store.record_run(
                    {"kind": "oltp", "benchmark": "tpcc", "scale": 100,
                     "design": design, "profile": "small", "run": i},
                    {"value": 100.0 + i, "latency_p99": 0.01},
                    provenance=PROV)
    except Exception as exc:  # propagated to the main thread's assert
        errors.append(exc)


class TestConcurrentWriters:
    def test_two_writers_one_database(self, tmp_path):
        """Two connections recording interleaved runs — the parallel
        sweep shape — must all land without lock failures."""
        path = tmp_path / "runs.db"
        errors = []
        threads = [
            threading.Thread(target=writer, args=(path, design, 10, errors))
            for design in ("LC", "LS")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        with RunStore(path) as store:
            runs = store.list_runs(limit=100)
            assert len(runs) == 20
            assert sum(1 for r in runs if r["design"] == "LC") == 10
            # Every run kept its metrics: no half-committed rows.
            for run in runs:
                metrics = store.metrics_for(run["id"])
                assert set(metrics) == {"value", "latency_p99"}

    def test_reader_sees_consistent_rows_during_writes(self, tmp_path):
        path = tmp_path / "runs.db"
        errors = []
        write = threading.Thread(target=writer,
                                 args=(path, "LC", 15, errors))
        write.start()
        seen = []
        with RunStore(path) as store:
            while write.is_alive():
                for run in store.list_runs(limit=100):
                    metrics = store.metrics_for(run["id"])
                    assert "value" in metrics
                seen.append(len(store.list_runs(limit=100)))
        write.join()
        assert errors == []
        # Counts only ever grow: WAL readers never observe rollbacks.
        assert seen == sorted(seen)
