"""Tests for transaction-latency tracking."""

import math

import pytest

from repro.harness.experiments import SCALE_PROFILES, run_oltp_experiment
from repro.harness.metrics import LatencyTracker


class TestLatencyTracker:
    def test_percentiles_of_known_distribution(self):
        tracker = LatencyTracker()
        for value in range(1, 101):
            tracker.record("t", float(value))
        assert tracker.percentile(0) == 1.0
        assert tracker.percentile(100) == 100.0
        assert tracker.percentile(50) == pytest.approx(50.5)
        assert tracker.mean() == pytest.approx(50.5)

    def test_per_type_filtering(self):
        tracker = LatencyTracker()
        tracker.record("fast", 1.0)
        tracker.record("slow", 100.0)
        assert tracker.percentile(50, "fast") == 1.0
        assert tracker.percentile(50, "slow") == 100.0
        assert tracker.count() == 2
        assert tracker.count("fast") == 1

    def test_empty_is_nan(self):
        tracker = LatencyTracker()
        assert math.isnan(tracker.percentile(50))
        assert math.isnan(tracker.mean())

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            LatencyTracker().percentile(150)

    def test_summary_keys(self):
        tracker = LatencyTracker()
        tracker.record("t", 2.0)
        summary = tracker.summary()
        assert set(summary) == {"mean", "p50", "p95", "p99"}


class TestSortedCache:
    def test_sorted_views_are_cached(self):
        tracker = LatencyTracker()
        tracker.record("t", 3.0)
        tracker.record("t", 1.0)
        assert tracker._all("t") is tracker._all("t")
        assert tracker._all() is tracker._all()

    def test_record_invalidates_cache(self):
        tracker = LatencyTracker()
        tracker.record("t", 5.0)
        assert tracker.percentile(100) == 5.0
        assert tracker.percentile(100, "t") == 5.0
        tracker.record("t", 9.0)
        assert tracker.percentile(100) == 9.0
        assert tracker.percentile(100, "t") == 9.0

    def test_other_types_keep_their_cache(self):
        tracker = LatencyTracker()
        tracker.record("a", 1.0)
        tracker.record("b", 2.0)
        cached_a = tracker._all("a")
        tracker.record("b", 3.0)
        # "a" untouched, "b" and the merged view refreshed.
        assert tracker._all("a") is cached_a
        assert tracker.percentile(100, "b") == 3.0
        assert tracker.percentile(100) == 3.0

    def test_cached_results_stay_correct(self):
        tracker = LatencyTracker()
        values = [float((i * 31) % 17) for i in range(50)]
        for value in values:
            tracker.record("t", value)
        expected = sorted(values)
        assert tracker._all("t") == expected
        assert tracker.percentile(0) == expected[0]
        assert tracker.percentile(100) == expected[-1]


class TestRunnerIntegration:
    def test_runner_records_latencies(self):
        result = run_oltp_experiment(
            "tpcc", 100, "noSSD", duration=4.0,
            profile=SCALE_PROFILES["tiny"], nworkers=4)
        assert result.latencies.count() == sum(result.txn_counts.values())
        assert result.latencies.percentile(50) > 0

    def test_ssd_design_cuts_latency(self):
        """The designs' throughput gains are latency gains in disguise:
        LC's p50 transaction latency must undercut noSSD's."""
        latencies = {}
        for design in ("noSSD", "LC"):
            result = run_oltp_experiment(
                "tpcc", 400, design, duration=10.0,
                profile=SCALE_PROFILES["tiny"], nworkers=8)
            latencies[design] = result.latencies.percentile(
                50, "new_order")
        assert latencies["LC"] < latencies["noSSD"]
