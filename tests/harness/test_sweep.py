"""The parallel sweep runner's on-disk cache: keys, hits, corruption."""

import json

import pytest

from repro.harness.sweep import (
    RunSpec,
    cache_load,
    cache_store,
    execute,
    restore,
    run_cached,
    run_sweep,
    snapshot,
    spec_key,
    summarize,
)

SPEC = RunSpec(kind="oltp", benchmark="tpcc", scale=20, design="LC",
               profile="tiny", duration=4.0, nworkers=4)


@pytest.fixture(scope="module")
def live_result():
    """One shared live run (the slow part happens once per module)."""
    return execute(SPEC)


class TestSpecKeys:
    def test_key_is_stable(self):
        assert spec_key(SPEC) == spec_key(RunSpec.from_dict(SPEC.to_dict()))

    @pytest.mark.parametrize("field,value", [
        ("design", "DW"),
        ("scale", 21),
        ("duration", 4.5),
        ("nworkers", 5),
        ("seed", 1),
        ("dirty_threshold", 0.25),
        ("checkpoint_interval", 2.0),
        ("expand_reads", True),
        ("profile", "small"),
        ("bucket_seconds", 1.0),
        ("benchmark", "tpce"),
    ])
    def test_any_config_field_change_moves_the_key(self, field, value):
        data = SPEC.to_dict()
        data[field] = value
        assert spec_key(RunSpec.from_dict(data)) != spec_key(SPEC)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RunSpec(kind="nope", benchmark="tpcc", scale=1, design="LC")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            RunSpec(kind="oltp", benchmark="tpcc", scale=1, design="LC",
                    profile="gigantic")


class TestRoundTrip:
    def test_hit_returns_bit_identical_metrics(self, live_result, tmp_path):
        cache_store(SPEC, snapshot(live_result), tmp_path)
        restored = restore(cache_load(SPEC, tmp_path))
        assert restored.buckets == live_result.buckets
        assert restored.txn_counts == live_result.txn_counts
        assert (restored.steady_state_throughput()
                == live_result.steady_state_throughput())
        assert restored.throughput_series() == live_result.throughput_series()
        # Snapshotting the restored result reproduces the stored bytes.
        assert (json.dumps(snapshot(restored), sort_keys=True)
                == json.dumps(snapshot(live_result), sort_keys=True))

    def test_restored_system_counters_match(self, live_result, tmp_path):
        cache_store(SPEC, snapshot(live_result), tmp_path)
        restored = restore(cache_load(SPEC, tmp_path))
        live_sys = live_result.system
        got = restored.system
        assert got.bp.stats.as_dict() == live_sys.bp.stats.as_dict()
        assert got.ssd_manager.stats == live_sys.ssd_manager.stats
        assert got.ssd_manager.dirty_frames == live_sys.ssd_manager.dirty_frames
        assert (got.ssd_manager.config.dirty_limit_frames
                == live_sys.ssd_manager.config.dirty_limit_frames)
        assert (got.checkpointer.checkpoints_taken
                == live_sys.checkpointer.checkpoints_taken)

    def test_restored_sampler_and_latencies_work(self, live_result,
                                                 tmp_path):
        cache_store(SPEC, snapshot(live_result), tmp_path)
        restored = restore(cache_load(SPEC, tmp_path))
        assert (restored.sampler.fill_time(1)
                == live_result.sampler.fill_time(1))
        assert (restored.sampler.dirty_cross_time(0)
                == live_result.sampler.dirty_cross_time(0))
        assert [vars(s) for s in restored.sampler.samples] \
            == [vars(s) for s in live_result.sampler.samples]
        assert restored.latencies.summary() == live_result.latencies.summary()

    def test_config_change_is_a_miss(self, live_result, tmp_path):
        cache_store(SPEC, snapshot(live_result), tmp_path)
        other = RunSpec.from_dict({**SPEC.to_dict(), "seed": 999})
        assert cache_load(other, tmp_path) is None


class TestCorruption:
    def test_missing_cache_dir_is_a_miss(self, tmp_path):
        assert cache_load(SPEC, tmp_path / "nope") is None

    def test_truncated_file_recomputes_not_crashes(self, live_result,
                                                   tmp_path):
        path = cache_store(SPEC, snapshot(live_result), tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache_load(SPEC, tmp_path) is None

    def test_garbage_file_recomputes_not_crashes(self, live_result,
                                                 tmp_path):
        path = cache_store(SPEC, snapshot(live_result), tmp_path)
        path.write_text("not json at all {{{")
        assert cache_load(SPEC, tmp_path) is None

    def test_wrong_structure_recomputes_not_crashes(self, live_result,
                                                    tmp_path):
        path = cache_store(SPEC, snapshot(live_result), tmp_path)
        path.write_text(json.dumps({"snapshot": {"kind": "martian"}}))
        assert cache_load(SPEC, tmp_path) is None
        path.write_text(json.dumps({"unexpected": 1}))
        assert cache_load(SPEC, tmp_path) is None

    def test_run_cached_recovers_from_corruption(self, tmp_path):
        spec = RunSpec(kind="oltp", benchmark="tpcc", scale=10,
                       design="noSSD", profile="tiny", duration=2.0,
                       nworkers=2)
        first = run_cached(spec, tmp_path)
        path = tmp_path / f"{spec_key(spec)}.json"
        path.write_text("corrupted")
        second = run_cached(spec, tmp_path)  # recomputes silently
        assert second.buckets == first.buckets
        # And the cache file was rewritten with a valid snapshot.
        assert cache_load(spec, tmp_path) is not None


class TestSweep:
    def test_serial_sweep_caches_and_summarizes(self, tmp_path):
        specs = [
            RunSpec(kind="oltp", benchmark="tpcc", scale=10, design=design,
                    profile="tiny", duration=2.0, nworkers=2)
            for design in ("noSSD", "LC")
        ]
        lines = []
        first = run_sweep(specs, workers=1, directory=tmp_path,
                          progress=lines.append)
        assert first.computed == 2 and first.cached == 0
        assert len(lines) == 2
        second = run_sweep(specs, workers=1, directory=tmp_path)
        assert second.cached == 2 and second.computed == 0
        for spec in specs:
            assert (second.results[spec].buckets
                    == first.results[spec].buckets)
        rows = summarize(second)
        assert [row["spec"]["design"] for row in rows] == ["LC", "noSSD"]
        assert all(row["metric"] == "tpmC" for row in rows)

    def test_duplicate_specs_collapse(self, tmp_path):
        spec = RunSpec(kind="oltp", benchmark="tpcc", scale=10,
                       design="noSSD", profile="tiny", duration=2.0,
                       nworkers=2)
        report = run_sweep([spec, spec, spec], workers=1,
                           directory=tmp_path)
        assert len(report.results) == 1
        assert report.computed + report.cached == 1

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            run_sweep([], workers=0)


class TestSnapshotFaultFields:
    def test_detached_defaults_false_and_round_trips(self, live_result,
                                                     tmp_path):
        snap = snapshot(live_result)
        assert snap["ssd"]["detached"] is False
        cache_store(SPEC, snap, tmp_path)
        restored = restore(cache_load(SPEC, tmp_path))
        assert restored.system.ssd_manager.detached is False

    def test_detached_true_survives_restore(self, live_result, tmp_path):
        snap = snapshot(live_result)
        snap["ssd"]["detached"] = True
        restored = restore(snap)
        assert restored.system.ssd_manager.detached is True

    def test_old_snapshot_without_field_restores(self, live_result):
        """Pre-v2 snapshots (no ``detached`` key) must still restore —
        the version bump invalidates caches, but restore stays lenient."""
        snap = snapshot(live_result)
        del snap["ssd"]["detached"]
        restored = restore(snap)
        assert restored.system.ssd_manager.detached is False


class TestSweepRecording:
    def specs(self):
        return [
            RunSpec(kind="oltp", benchmark="tpcc", scale=10, design=design,
                    profile="tiny", duration=2.0, nworkers=2)
            for design in ("noSSD", "LC")
        ]

    def test_live_and_cached_runs_record_alike(self, tmp_path):
        from repro.runstore.store import RunStore

        with RunStore(tmp_path / "runs.db") as store:
            first = run_sweep(self.specs(), workers=1, directory=tmp_path,
                              store=store)
            assert first.recorded == 2 and first.computed == 2
            second = run_sweep(self.specs(), workers=1,
                               directory=tmp_path, store=store)
            assert second.recorded == 2 and second.cached == 2

            runs = store.list_runs()
            assert len(runs) == 4
            # The replayed cache hit recorded the same metrics row as
            # the live run (modulo the run id / timestamp).
            by_design = {}
            for run in runs:
                by_design.setdefault(run["design"], []).append(
                    store.metrics_for(run["id"]))
            for design, metric_rows in by_design.items():
                assert metric_rows[0] == metric_rows[1], design

    def test_recording_failure_does_not_fail_the_sweep(self, tmp_path):
        class ExplodingStore:
            path = "exploding.db"

            def record_result(self, spec, result, provenance=None):
                from repro.runstore.store import StoreError
                raise StoreError("disk on fire")

        lines = []
        report = run_sweep(self.specs(), workers=1, directory=tmp_path,
                           store=ExplodingStore(), progress=lines.append)
        assert report.recorded == 0
        assert report.computed == 2  # every run still completed
        assert any("disk on fire" in line for line in lines)
