"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import DESIGN_SUMMARIES, build_parser, main
from repro.core import DESIGNS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_oltp_defaults(self):
        args = build_parser().parse_args(["oltp"])
        assert args.benchmark == "tpcc"
        assert args.scale == 1_000

    def test_tpch_sf_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tpch", "--sf", "300"])


class TestCommands:
    def test_designs_lists_all(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in DESIGNS:
            assert name in out

    def test_summaries_cover_registry(self):
        assert set(DESIGN_SUMMARIES) == set(DESIGNS)

    def test_iometer_prints_table(self, capsys):
        assert main(["iometer", "--duration", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "hdd_random_read" in out

    def test_oltp_runs_and_reports(self, capsys):
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "4",
                     "--designs", "noSSD,DW"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tpmC" in out
        assert "DW" in out

    def test_oltp_rejects_unknown_design(self, capsys):
        assert main(["oltp", "--designs", "WARP"]) == 2

    def test_tpch_runs(self, capsys):
        code = main(["tpch", "--sf", "30", "--profile", "tiny",
                     "--designs", "noSSD"])
        assert code == 0
        assert "QphH" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_trace_writes_chrome_file(self, capsys, tmp_path):
        trace = tmp_path / "out.json"
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "4",
                     "--designs", "LC", "--trace", str(trace)])
        assert code == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        cats = {event.get("cat") for event in doc["traceEvents"]}
        assert "io" in cats
        assert "wrote" in capsys.readouterr().err

    def test_trace_multiple_designs_one_file_each(self, capsys, tmp_path):
        trace = tmp_path / "out.json"
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "3",
                     "--designs", "noSSD,LC", "--trace", str(trace)])
        assert code == 0
        for design in ("noSSD", "LC"):
            per_design = tmp_path / f"out-{design}.json"
            assert json.loads(per_design.read_text())["traceEvents"]

    def test_metrics_prints_registry(self, capsys):
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "3",
                     "--designs", "LC", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Metrics — LC" in out
        assert "bp_requests_total" in out
        assert "txn_latency_seconds" in out

    def test_trace_bad_directory_fails_fast(self, capsys):
        code = main(["oltp", "--designs", "LC",
                     "--trace", "/no/such/dir/out.json"])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_no_flags_no_telemetry_output(self, capsys):
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "3",
                     "--designs", "LC"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Metrics" not in captured.out
        assert "trace events" not in captured.err
