"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import DESIGN_SUMMARIES, build_parser, main
from repro.core import DESIGNS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_oltp_defaults(self):
        args = build_parser().parse_args(["oltp"])
        assert args.benchmark == "tpcc"
        assert args.scale == 1_000

    def test_tpch_sf_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tpch", "--sf", "300"])


class TestCommands:
    def test_designs_lists_all(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in DESIGNS:
            assert name in out

    def test_summaries_cover_registry(self):
        assert set(DESIGN_SUMMARIES) == set(DESIGNS)

    def test_iometer_prints_table(self, capsys):
        assert main(["iometer", "--duration", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "hdd_random_read" in out

    def test_oltp_runs_and_reports(self, capsys):
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "4",
                     "--designs", "noSSD,DW"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tpmC" in out
        assert "DW" in out

    def test_oltp_rejects_unknown_design(self, capsys):
        assert main(["oltp", "--designs", "WARP"]) == 2

    def test_tpch_runs(self, capsys):
        code = main(["tpch", "--sf", "30", "--profile", "tiny",
                     "--designs", "noSSD"])
        assert code == 0
        assert "QphH" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_trace_writes_chrome_file(self, capsys, tmp_path):
        trace = tmp_path / "out.json"
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "4",
                     "--designs", "LC", "--trace", str(trace)])
        assert code == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        cats = {event.get("cat") for event in doc["traceEvents"]}
        assert "io" in cats
        assert "wrote" in capsys.readouterr().err

    def test_trace_multiple_designs_one_file_each(self, capsys, tmp_path):
        trace = tmp_path / "out.json"
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "3",
                     "--designs", "noSSD,LC", "--trace", str(trace)])
        assert code == 0
        for design in ("noSSD", "LC"):
            per_design = tmp_path / f"out-{design}.json"
            assert json.loads(per_design.read_text())["traceEvents"]

    def test_metrics_prints_registry(self, capsys):
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "3",
                     "--designs", "LC", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Metrics — LC" in out
        assert "bp_requests_total" in out
        assert "txn_latency_seconds" in out

    def test_trace_bad_directory_fails_fast(self, capsys):
        code = main(["oltp", "--designs", "LC",
                     "--trace", "/no/such/dir/out.json"])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_no_flags_no_telemetry_output(self, capsys):
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "3",
                     "--designs", "LC"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Metrics" not in captured.out
        assert "trace events" not in captured.err

    def test_trace_jsonl_extension_selects_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "out.jsonl"
        code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                     "--profile", "tiny", "--duration", "3",
                     "--designs", "LC", "--trace", str(trace)])
        assert code == 0
        first = trace.read_text().splitlines()[0]
        event = json.loads(first)
        assert "track" in event  # JSONL line shape, not Chrome JSON


@pytest.fixture(scope="module")
def traced_pair(tmp_path_factory):
    """Two per-design JSONL traces from one short CW-vs-LC run."""
    trace = tmp_path_factory.mktemp("traces") / "run.jsonl"
    code = main(["oltp", "--benchmark", "tpcc", "--scale", "100",
                 "--profile", "tiny", "--duration", "4", "--workers", "4",
                 "--designs", "CW,LC", "--trace", str(trace)])
    assert code == 0
    return [str(trace.parent / f"run-{d}.jsonl") for d in ("CW", "LC")]


class TestAnalyzeCommand:
    def test_prints_attribution_table(self, traced_pair, capsys):
        assert main(["analyze"] + traced_pair) == 0
        out = capsys.readouterr().out
        assert "Tail-latency attribution" in out
        for token in ("CW", "LC", "p50", "p95", "p99", "coverage"):
            assert token in out

    def test_writes_html_report(self, traced_pair, capsys, tmp_path):
        report = tmp_path / "report.html"
        assert main(["analyze", *traced_pair, "--html", str(report)]) == 0
        text = report.read_text()
        assert text.startswith("<!doctype html>")
        assert text.count("<svg") >= 3

    def test_writes_valid_bench_snapshot(self, traced_pair, capsys,
                                         tmp_path):
        from repro.telemetry.analysis import validate_bench
        bench = tmp_path / "BENCH_oltp.json"
        assert main(["analyze", *traced_pair, "--bench", str(bench),
                     "--workload", "oltp"]) == 0
        doc = json.loads(bench.read_text())
        assert validate_bench(doc) == []
        assert set(doc["designs"]) == {"CW", "LC"}

    def test_txn_type_filter(self, traced_pair, capsys):
        assert main(["analyze", traced_pair[0],
                     "--txn-type", "new_order"]) == 0
        assert "new_order" in capsys.readouterr().out

    def test_missing_trace_fails_fast(self, capsys):
        assert main(["analyze", "/no/such/trace.jsonl"]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_bad_tail_rejected(self, traced_pair, capsys):
        assert main(["analyze", traced_pair[0], "--tail", "p99"]) == 2
        assert "--tail" in capsys.readouterr().err

    def test_garbage_trace_rejected(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not a trace\n")
        assert main(["analyze", str(bad)]) == 2
        assert "analyze:" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_runs_grid_and_writes_output(self, capsys, tmp_path):
        out = tmp_path / "sweep.json"
        code = main(["sweep", "--benchmark", "tpcc", "--scales", "10,20",
                     "--designs", "noSSD,LC", "--profile", "tiny",
                     "--duration", "2", "--workers-per-run", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--output", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "4 runs" in captured.out
        assert "0 cached, 4 computed" in captured.out
        import json as _json
        doc = _json.loads(out.read_text())
        assert len(doc["runs"]) == 4
        assert all(row["value"] > 0 for row in doc["runs"])
        # Second invocation: all four cells come from the cache.
        code = main(["sweep", "--benchmark", "tpcc", "--scales", "10,20",
                     "--designs", "noSSD,LC", "--profile", "tiny",
                     "--duration", "2", "--workers-per-run", "2",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "4 cached, 0 computed" in capsys.readouterr().out

    def test_sweep_rejects_unknown_design(self, capsys):
        assert main(["sweep", "--designs", "WARP"]) == 2

    def test_sweep_rejects_bad_scales(self, capsys):
        assert main(["sweep", "--scales", "ten"]) == 2

    def test_sweep_no_cache_always_computes(self, capsys, tmp_path):
        args = ["sweep", "--benchmark", "tpcc", "--scales", "10",
                "--designs", "noSSD", "--profile", "tiny",
                "--duration", "2", "--workers-per-run", "2", "--no-cache",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        assert main(args) == 0
        assert "0 cached, 1 computed" in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()
