"""The crash-point sweep harness and its CLI surface."""

from repro.cli import main
from repro.harness import (
    CrashPointOutcome,
    CrashSweepConfig,
    CrashSweepResult,
    crash_point_sweep,
    format_sweep_table,
)


def small_config(**kwargs):
    defaults = dict(designs=("CW", "LC"), policies=("sharp",), points=1,
                    duration=3.0, checkpoint_interval=1.0, db_pages=200,
                    bp_pages=40, ssd_frames=280, nworkers=4, post_ops=20)
    defaults.update(kwargs)
    return CrashSweepConfig(**defaults)


class TestCrashPointSweep:
    def test_small_sweep_loses_nothing(self):
        result = crash_point_sweep(small_config())
        assert len(result.outcomes) == 2
        assert result.ok, format_sweep_table(result)
        for outcome in result.outcomes:
            assert outcome.committed_pages > 0
            assert 0.2 * 3.0 <= outcome.crash_at <= 3.0

    def test_sweep_is_deterministic(self):
        def fingerprint(result):
            return [(o.design, o.policy, o.crash_at, o.ok, o.pages_redone,
                     o.committed_pages) for o in result.outcomes]

        cfg = small_config(designs=("DW",))
        assert fingerprint(crash_point_sweep(cfg)) == \
            fingerprint(crash_point_sweep(cfg))

    def test_fuzzy_policy_runs(self):
        result = crash_point_sweep(small_config(designs=("TAC",),
                                                policies=("fuzzy",)))
        assert result.ok, format_sweep_table(result)


class TestSweepTable:
    def test_groups_by_design_and_policy(self):
        result = CrashSweepResult(outcomes=[
            CrashPointOutcome("CW", "sharp", 1.0, pages_redone=3),
            CrashPointOutcome("CW", "sharp", 2.0, pages_redone=4),
            CrashPointOutcome("LC", "fuzzy", 1.5, pages_redone=7),
        ])
        table = format_sweep_table(result)
        lines = table.splitlines()
        assert "design" in lines[0]
        assert any("CW" in l and " 2 " in l and " 7 " in l for l in lines)
        assert "FAIL" not in table

    def test_failures_are_listed(self):
        result = CrashSweepResult(outcomes=[
            CrashPointOutcome("DW", "sharp", 2.5, ok=False,
                              error="RecoveryError: boom"),
        ])
        assert not result.ok
        table = format_sweep_table(result)
        assert "FAIL DW/sharp @t=2.500: RecoveryError: boom" in table


class TestChaosCli:
    def test_smoke_run_exits_zero(self, capsys):
        code = main(["chaos", "--points", "1", "--designs", "CW",
                     "--policies", "sharp", "--duration", "3"])
        out = capsys.readouterr()
        assert code == 0
        assert "design" in out.out and "CW" in out.out
        assert "1 crash points" in out.err

    def test_rejects_unknown_design(self, capsys):
        assert main(["chaos", "--designs", "XX"]) == 2
        assert "XX" in capsys.readouterr().err

    def test_rejects_unknown_policy(self, capsys):
        assert main(["chaos", "--policies", "blurry"]) == 2
        assert "blurry" in capsys.readouterr().err


class TestFaultsCliFlag:
    def test_rejects_malformed_plan(self, capsys):
        code = main(["oltp", "--designs", "LC", "--faults", "explode@t=1"])
        assert code == 2
        assert "--faults" in capsys.readouterr().err

    def test_ssd_die_mid_run_degrades_not_crashes(self, capsys):
        code = main(["oltp", "--scale", "50", "--profile", "tiny",
                     "--duration", "4", "--designs", "DW",
                     "--faults", "ssd_die@t=2"])
        out = capsys.readouterr()
        assert code == 0
        assert "DW" in out.out
        assert "ssd_detached=True" in out.err
