"""Additional rendering tests for the report module."""

from repro.harness.report import format_series, format_speedups, format_table


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table("Empty", ["a", "b"], [])
        assert "Empty" in text
        assert "a" in text and "b" in text

    def test_numbers_right_aligned(self):
        text = format_table("T", ["col"], [[1], [1000]])
        lines = text.splitlines()
        assert lines[-1].endswith("1000")
        assert lines[-2].endswith("   1")

    def test_mixed_types_stringified(self):
        text = format_table("T", ["x", "y"], [[1.5, None], ["s", 2]])
        assert "None" in text and "1.5" in text


class TestFormatSeries:
    def test_peak_gets_full_bar(self):
        text = format_series("S", [(0.0, 10.0), (1.0, 5.0)], width=10)
        lines = text.splitlines()
        assert lines[-2].count("#") == 10
        assert lines[-1].count("#") == 5

    def test_zero_series_no_crash(self):
        text = format_series("S", [(0.0, 0.0), (1.0, 0.0)])
        assert "0.0" in text

    def test_labels_in_header(self):
        text = format_series("S", [(0.0, 1.0)], time_label="hour",
                             value_label="tpmC")
        assert "hour" in text and "tpmC" in text


class TestFormatSpeedups:
    def test_custom_design_list(self):
        text = format_speedups("X", {"cfg": {"ROT": 2.0, "EXCL": 3.0}},
                               designs=("ROT", "EXCL"))
        assert "2.00x" in text and "3.00x" in text

    def test_missing_design_rendered_as_zero(self):
        text = format_speedups("X", {"cfg": {}}, designs=("DW",))
        assert "0.00x" in text
