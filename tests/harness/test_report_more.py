"""Additional rendering tests for the report module."""

import pytest

from repro.harness.report import (
    downsample_series,
    format_series,
    format_speedups,
    format_table,
)


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table("Empty", ["a", "b"], [])
        assert "Empty" in text
        assert "a" in text and "b" in text

    def test_numbers_right_aligned(self):
        text = format_table("T", ["col"], [[1], [1000]])
        lines = text.splitlines()
        assert lines[-1].endswith("1000")
        assert lines[-2].endswith("   1")

    def test_mixed_types_stringified(self):
        text = format_table("T", ["x", "y"], [[1.5, None], ["s", 2]])
        assert "None" in text and "1.5" in text

    def test_ragged_rows_padded(self):
        # Regression: a row with fewer cells than headers used to raise
        # IndexError while computing column widths.
        text = format_table("T", ["a", "b", "c"], [[1, 2, 3], [4], []])
        lines = text.splitlines()
        assert len(lines) == 7
        assert "4" in lines[-2]

    def test_ragged_rows_keep_alignment(self):
        text = format_table("T", ["left", "right"], [["x"], ["yy", "zz"]])
        header, rule = text.splitlines()[2:4]
        assert all(len(line) <= len(rule) for line in text.splitlines()[2:])


class TestFormatSeries:
    def test_peak_gets_full_bar(self):
        text = format_series("S", [(0.0, 10.0), (1.0, 5.0)], width=10)
        lines = text.splitlines()
        assert lines[-2].count("#") == 10
        assert lines[-1].count("#") == 5

    def test_zero_series_no_crash(self):
        text = format_series("S", [(0.0, 0.0), (1.0, 0.0)])
        assert "0.0" in text

    def test_labels_in_header(self):
        text = format_series("S", [(0.0, 1.0)], time_label="hour",
                             value_label="tpmC")
        assert "hour" in text and "tpmC" in text

    def test_long_series_downsampled_to_bounded_rows(self):
        series = [(float(i), float(i)) for i in range(1000)]
        text = format_series("S", series)
        # title + rule + header + <=40 rows + downsample note
        assert len(text.splitlines()) <= 44
        assert "1000 samples" in text

    def test_short_series_not_downsampled(self):
        series = [(float(i), 1.0) for i in range(10)]
        text = format_series("S", series)
        assert len(text.splitlines()) == 3 + 10
        assert "samples" not in text


class TestDownsampleSeries:
    def test_identity_when_short(self):
        series = [(0.0, 1.0), (1.0, 2.0)]
        assert downsample_series(series, max_rows=40) == series

    def test_bounded_and_bucket_averaged(self):
        series = [(float(i), float(i)) for i in range(100)]
        out = downsample_series(series, max_rows=10)
        assert len(out) == 10
        # First bucket holds samples 0..9: starts at t=0, mean 4.5.
        assert out[0] == (0.0, pytest.approx(4.5))
        assert out[-1] == (90.0, pytest.approx(94.5))

    def test_mean_preserved(self):
        series = [(float(i), float(i % 7)) for i in range(70)]
        out = downsample_series(series, max_rows=10)
        assert (sum(v for _, v in out) / len(out)
                == pytest.approx(sum(v for _, v in series) / len(series)))

    def test_rejects_nonpositive_max_rows(self):
        with pytest.raises(ValueError):
            downsample_series([(0.0, 1.0)], max_rows=0)


class TestFormatSpeedups:
    def test_custom_design_list(self):
        text = format_speedups("X", {"cfg": {"ROT": 2.0, "EXCL": 3.0}},
                               designs=("ROT", "EXCL"))
        assert "2.00x" in text and "3.00x" in text

    def test_missing_design_rendered_as_zero(self):
        text = format_speedups("X", {"cfg": {}}, designs=("DW",))
        assert "0.00x" in text
