"""Integration tests: whole-system runs reproducing the paper's
qualitative results at test-friendly scale."""

import pytest

from repro.harness.experiments import (
    SCALE_PROFILES,
    run_oltp_experiment,
    run_tpch_experiment,
    speedup_over_nossd,
)

PROFILE = SCALE_PROFILES["tiny"]


def tpcc_throughputs(duration=12.0, designs=("noSSD", "DW", "LC", "TAC")):
    return {
        design: run_oltp_experiment(
            "tpcc", 400, design, duration=duration, profile=PROFILE,
            nworkers=8).steady_state_throughput()
        for design in designs
    }


class TestTpccOrdering:
    """Figure 5(a–c)'s qualitative claims at miniature scale."""

    @pytest.fixture(scope="class")
    def speedups(self):
        return speedup_over_nossd(tpcc_throughputs())

    def test_every_ssd_design_beats_nossd(self, speedups):
        for design in ("DW", "LC", "TAC"):
            assert speedups[design] > 1.0, speedups

    def test_lc_wins_update_intensive(self, speedups):
        assert speedups["LC"] > speedups["DW"], speedups
        assert speedups["LC"] > speedups["TAC"], speedups

    def test_dw_at_least_matches_tac(self, speedups):
        """§4.2: DW performed better than TAC for all TPC-C databases."""
        assert speedups["DW"] >= speedups["TAC"] * 0.85, speedups


class TestTpceShape:
    def test_designs_are_similar_on_read_intensive(self):
        results = {
            design: run_oltp_experiment(
                "tpce", 4, design, duration=12.0, profile=PROFILE,
                nworkers=8).steady_state_throughput()
            for design in ("noSSD", "DW", "LC")
        }
        speedups = speedup_over_nossd(results)
        assert speedups["DW"] > 1.2
        assert speedups["LC"] > 1.2
        # §4.3: "the advantage of LC over DW is gone".
        assert speedups["LC"] < speedups["DW"] * 2.0


class TestTpchShape:
    def test_ssd_helps_and_designs_tie(self):
        results = {
            design: run_tpch_experiment(30, design, profile=PROFILE)
            for design in ("noSSD", "DW", "LC")
        }
        assert results["DW"].qphh > results["noSSD"].qphh
        assert results["LC"].qphh > results["noSSD"].qphh
        ratio = results["LC"].qphh / results["DW"].qphh
        assert 0.5 < ratio < 2.0  # §4.4: similar performance


class TestTacWaste:
    def test_tac_wastes_frames_our_designs_do_not(self):
        tac = run_oltp_experiment("tpcc", 400, "TAC", duration=10.0,
                                  profile=PROFILE, nworkers=8)
        dw = run_oltp_experiment("tpcc", 400, "DW", duration=10.0,
                                 profile=PROFILE, nworkers=8)
        assert tac.system.ssd_manager.table.invalid_count > 0
        assert dw.system.ssd_manager.table.invalid_count == 0


class TestRampUp:
    def test_ssd_fills_over_time(self):
        result = run_oltp_experiment("tpce", 4, "DW", duration=15.0,
                                     profile=PROFILE, nworkers=8)
        samples = result.sampler.samples
        assert samples[0].ssd_used < samples[-1].ssd_used

    def test_lc_dirty_fraction_grows_with_lambda_room(self):
        result = run_oltp_experiment("tpcc", 400, "LC", duration=12.0,
                                     profile=PROFILE, nworkers=8,
                                     dirty_threshold=0.9)
        assert result.system.ssd_manager.dirty_frames > 0
