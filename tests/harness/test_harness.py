"""Tests for the harness: system assembly, runner, metrics, reporting."""

import pytest

from repro.core.lc import LazyCleaningManager
from repro.harness.experiments import (
    PAPER_LAMBDA,
    SCALE_PROFILES,
    make_system,
    make_workload,
    run_oltp_experiment,
    speedup_over_nossd,
)
from repro.harness.metrics import Sampler
from repro.harness.report import format_series, format_speedups, format_table
from repro.harness.runner import RunResult, WorkloadRunner
from repro.harness.system import SystemConfig


class TestSystemAssembly:
    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(design="magic")

    def test_lc_cleaner_started(self):
        workload = make_workload("tpcc", 100, SCALE_PROFILES["tiny"])
        system = make_system("tpcc", workload, "LC", SCALE_PROFILES["tiny"])
        assert isinstance(system.ssd_manager, LazyCleaningManager)
        assert system.ssd_manager._cleaner_started

    def test_nossd_gets_zero_frames(self):
        workload = make_workload("tpcc", 100, SCALE_PROFILES["tiny"])
        system = make_system("tpcc", workload, "noSSD",
                             SCALE_PROFILES["tiny"])
        assert system.ssd_manager.config.ssd_frames == 0

    def test_paper_lambda_settings(self):
        """Table 2: λ = 50% for TPC-C, 1% for TPC-E/H."""
        assert PAPER_LAMBDA == {"tpcc": 0.50, "tpce": 0.01, "tpch": 0.01}
        workload = make_workload("tpcc", 100, SCALE_PROFILES["tiny"])
        system = make_system("tpcc", workload, "LC", SCALE_PROFILES["tiny"])
        assert system.ssd_manager.config.dirty_threshold == 0.50

    def test_design_name_exposed(self, small_system):
        assert small_system.design == "noSSD"


class TestScaleProfiles:
    def test_default_preserves_paper_ratios(self):
        profile = SCALE_PROFILES["default"]
        # BP:SSD = 20:140 GB.
        assert profile.ssd_frames / profile.bp_pages == pytest.approx(7.0)
        # TPC-C 2K warehouses (200 GB) : BP = 10 : 1.
        assert profile.pages(200.0) / profile.bp_pages == pytest.approx(10.0)

    def test_small_profile_scales_down_uniformly(self):
        default, small = SCALE_PROFILES["default"], SCALE_PROFILES["small"]
        ratio = default.pages_per_gb / small.pages_per_gb
        assert default.bp_pages / small.bp_pages == pytest.approx(ratio)
        assert default.ssd_frames / small.ssd_frames == pytest.approx(ratio)


class TestRunner:
    def test_run_produces_buckets_and_counts(self):
        result = run_oltp_experiment(
            "tpcc", 100, "noSSD", duration=5.0,
            profile=SCALE_PROFILES["tiny"], nworkers=4, bucket_seconds=1.0)
        assert len(result.buckets) == 5
        assert result.total_metric_txns > 0
        assert result.txn_counts.get("new_order", 0) == result.total_metric_txns

    def test_metric_is_tpm_for_tpcc(self):
        result = run_oltp_experiment(
            "tpcc", 100, "noSSD", duration=4.0,
            profile=SCALE_PROFILES["tiny"], nworkers=4)
        series = result.throughput_series()
        # tpmC = per-minute rate: 60x the per-second bucket counts.
        per_second = result.buckets[0] / result.bucket_seconds
        assert series[0][1] == pytest.approx(per_second * 60.0)

    def test_steady_state_uses_tail_window(self):
        result = RunResult(design="x", metric_name="tpmC", duration=10.0,
                           bucket_seconds=1.0, metric_window=60.0,
                           buckets=[0] * 8 + [10, 10])
        assert result.steady_state_throughput(0.2) == pytest.approx(600.0)

    def test_smoothing_moving_average(self):
        result = RunResult(design="x", metric_name="tpmC", duration=3.0,
                           bucket_seconds=1.0, metric_window=1.0,
                           buckets=[0, 30, 0])
        smoothed = result.throughput_series(smooth=3)
        assert smoothed[1][1] == pytest.approx(10.0)

    def test_sampler_collects_series(self):
        result = run_oltp_experiment(
            "tpcc", 100, "LC", duration=5.0,
            profile=SCALE_PROFILES["tiny"], nworkers=4)
        assert len(result.sampler.samples) >= 4
        assert result.sampler.samples[-1].ssd_used >= 0

    def test_worker_count_validation(self, small_system):
        workload = make_workload("tpcc", 100, SCALE_PROFILES["tiny"])
        with pytest.raises(ValueError):
            WorkloadRunner(small_system, workload, nworkers=0)


class TestSampler:
    def test_stop_ends_collection(self, small_system):
        sampler = Sampler(small_system, interval=1.0)
        sampler.start()
        small_system.env.run(until=5.5)
        collected = len(sampler.samples)
        assert collected >= 5
        sampler.stop()
        small_system.env.run(until=20.0)
        assert len(sampler.samples) == collected
        assert not sampler.running

    def test_max_samples_bounds_memory(self, small_system):
        sampler = Sampler(small_system, interval=1.0, max_samples=3)
        sampler.start()
        small_system.env.run(until=10.0)
        assert len(sampler.samples) == 3
        assert not sampler.running

    def test_max_samples_validation(self, small_system):
        with pytest.raises(ValueError):
            Sampler(small_system, max_samples=0)

    def test_runner_stops_sampler_after_run(self):
        result = run_oltp_experiment(
            "tpcc", 100, "noSSD", duration=4.0,
            profile=SCALE_PROFILES["tiny"], nworkers=2)
        assert not result.sampler.running
        collected = len(result.sampler.samples)
        # Advancing virtual time further must not grow the series.
        result.system.env.run(until=result.system.env.now + 10.0)
        assert len(result.sampler.samples) == collected


class TestSpeedups:
    def test_normalizes_to_nossd(self):
        speedups = speedup_over_nossd({"noSSD": 10.0, "LC": 90.0, "DW": 20.0})
        assert speedups["LC"] == pytest.approx(9.0)
        assert speedups["noSSD"] == pytest.approx(1.0)

    def test_zero_baseline(self):
        assert speedup_over_nossd({"noSSD": 0.0, "LC": 5.0})["LC"] == 0.0


class TestReport:
    def test_format_table_aligns(self):
        text = format_table("T", ["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:]}) == 1

    def test_format_series_sparkline(self):
        text = format_series("S", [(0.0, 1.0), (1.0, 2.0)])
        assert "#" in text

    def test_format_series_empty(self):
        assert "empty" in format_series("S", [])

    def test_format_speedups(self):
        text = format_speedups("F5", {"1K": {"DW": 2.0, "LC": 9.0, "TAC": 1.5}})
        assert "9.00x" in text
