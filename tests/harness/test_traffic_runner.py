"""Open-loop traffic runs: tenants, shed accounting, kernel equivalence.

Also the regression tests for the three closed-loop driver bugs this PR
fixes (per-run txn-id reset, partial-final-bucket accounting, latched
``stop()``) — each reproduces the pre-fix failure mode.
"""

import hashlib
import json

import pytest

from repro.harness import (OpenLoopRunner, RunResult, WorkloadRunner,
                           run_oltp_experiment, run_traffic_experiment)
from repro.harness.experiments import (SCALE_PROFILES, make_system,
                                       make_workload)
from repro.runstore.store import RunStore
from repro.telemetry import Telemetry
from repro.workloads.traffic import parse_tenants

TINY = SCALE_PROFILES["tiny"]

TWO_TENANTS = ("gold=poisson:rate=40:theta=0.6;"
               "noisy=bursty:rate=30:burst=10:theta=0.99")


def _traffic(design="LC", kernel="heap", duration=8.0, queue_limit=200,
             nworkers=8, tenants=TWO_TENANTS, **kwargs):
    return run_traffic_experiment(
        "tpcc", 20, design, tenants, duration=duration, profile=TINY,
        nworkers=nworkers, queue_limit=queue_limit, bucket_seconds=2.0,
        kernel=kernel, **kwargs)


def test_open_loop_run_reports_per_tenant_stats():
    result = _traffic()
    assert set(result.tenants) == {"gold", "noisy"}
    gold = result.tenants["gold"]
    assert gold.offered > 0
    assert gold.completed + gold.shed <= gold.offered
    assert gold.latencies.count() == gold.completed
    assert gold.queue_waits.count() == gold.completed
    assert result.offered == sum(t.offered for t in result.tenants.values())
    assert result.total_metric_txns > 0
    assert result.logical_users == pytest.approx(70 * 100.0)
    # Sojourn >= queue wait for every tenant.
    assert gold.latencies.percentile(99) >= gold.queue_waits.percentile(99)


def test_open_loop_same_seed_is_deterministic():
    a = _traffic(seed=7)
    b = _traffic(seed=7)
    c = _traffic(seed=8)
    assert a.buckets == b.buckets
    assert {n: t.offered for n, t in a.tenants.items()} == \
           {n: t.offered for n, t in b.tenants.items()}
    assert (a.buckets, a.offered) != (c.buckets, c.offered)


def test_open_loop_wheel_kernel_matches_heap_exactly():
    heap = _traffic(kernel="heap")
    wheel = _traffic(kernel="wheel")
    assert wheel.buckets == heap.buckets
    assert wheel.txn_counts == heap.txn_counts
    for name in heap.tenants:
        assert wheel.tenants[name].completed == heap.tenants[name].completed
        assert wheel.tenants[name].latencies.percentile(99) == \
            heap.tenants[name].latencies.percentile(99)


def test_overload_sheds_instead_of_queueing_unboundedly():
    # 30k arrivals/s into 2 workers with a 10-deep queue: almost all of
    # the offered load must be shed, and the queue stays bounded.
    result = _traffic(tenants="all=poisson:rate=30000", duration=1.0,
                      nworkers=2, queue_limit=10)
    stats = result.tenants["all"]
    assert stats.offered > 20000
    assert stats.shed > 0.8 * stats.offered
    assert result.shed_fraction == pytest.approx(stats.shed / stats.offered)
    # Conservation: everything admitted either completed or is still in
    # the (bounded) queue / in service when the run ends.
    backlog = stats.admitted - stats.completed
    assert 0 <= backlog <= 10 + 2


def test_million_logical_users_bounded_run_records_per_tenant(tmp_path):
    """Acceptance: >=1M logical users, two designs, bounded workers,
    per-tenant p99 + shed/queue-wait recorded in the run store."""
    spec = ("web=poisson:users=800000:think=100:theta=0.6;"
            "batch=bursty:users=400000:think=200:burst=8:theta=0.95")
    with RunStore(tmp_path / "runs.db") as store:
        for design in ("DW", "LC"):
            result = _traffic(design=design, tenants=spec, duration=1.0,
                              nworkers=48, queue_limit=5000, store=store)
            assert result.logical_users == pytest.approx(1_200_000.0)
            # 12k arrivals/s offered through only 48 workers.
            assert result.offered > 5_000
            for stats in result.tenants.values():
                assert stats.latencies.percentile(99) >= 0.0
        rows = store.list_runs()
        assert len(rows) == 2
        metrics = store.metrics_for(rows[0]["id"])
        for name in ("tenant_web_p99", "tenant_web_queue_wait_p99",
                     "tenant_batch_p99", "shed", "queue_wait_p99",
                     "logical_users"):
            assert name in metrics
        assert metrics["logical_users"] == pytest.approx(1_200_000.0)


def test_partitions_knob_reaches_the_ssd_config():
    result = _traffic(duration=1.0, partitions=4)
    assert result.system.config.ssd.partitions == 4


def test_open_loop_runner_validation():
    workload = make_workload("tpcc", 20, TINY)
    system = make_system("tpcc", workload, "LC", TINY)
    tenants = parse_tenants("a=poisson:rate=1")
    with pytest.raises(ValueError):
        OpenLoopRunner(system, workload, tenants, nworkers=0)
    with pytest.raises(ValueError):
        OpenLoopRunner(system, workload, tenants, queue_limit=0)
    with pytest.raises(ValueError):
        OpenLoopRunner(system, workload, [])


# ----------------------------------------------------------------------
# Closed-loop driver regressions (the three satellite bugfixes)
# ----------------------------------------------------------------------

def _traced_oltp_md5(kernel="heap"):
    telemetry = Telemetry()
    run_oltp_experiment("tpcc", 20, "LC", duration=4.0, profile=TINY,
                        nworkers=4, kernel=kernel, telemetry=telemetry)
    payload = "\n".join(
        json.dumps(event.to_dict(), sort_keys=True)
        for event in telemetry.tracer.events)
    return hashlib.md5(payload.encode()).hexdigest()


def test_second_run_in_one_process_traces_byte_identical():
    """Txn ids are system-scoped: run N+1 must not see run N's counter."""
    first = _traced_oltp_md5()
    second = _traced_oltp_md5()
    assert first == second


def test_wheel_and_heap_kernels_trace_byte_identical():
    """Acceptance: same seed, byte-identical trace under both kernels."""
    assert _traced_oltp_md5("heap") == _traced_oltp_md5("wheel")


def test_partial_final_bucket_is_counted_and_width_normalized():
    result = RunResult(design="LC", metric_name="tpmC", duration=5.0,
                       bucket_seconds=2.0, metric_window=60.0,
                       buckets=[10, 10, 5])
    assert result.bucket_widths() == [2.0, 2.0, 1.0]
    series = result.throughput_series()
    # The tail bucket's 5 completions over its true 1 s width rate the
    # same as 10 over 2 s — not half of it.
    assert series[-1][1] == pytest.approx(series[0][1])
    assert result.steady_state_throughput(window_fraction=0.2) == \
        pytest.approx(5 / 1.0 * 60.0)


def test_runner_allocates_ceil_buckets_for_non_multiple_duration():
    workload = make_workload("tpcc", 20, TINY)
    system = make_system("tpcc", workload, "noSSD", TINY)
    runner = WorkloadRunner(system, workload, nworkers=4, bucket_seconds=2.0)
    result = runner.run(duration=5.0)
    assert len(result.buckets) == 3
    # The tail window [4, 5) kept its completions (pre-fix: dropped).
    assert result.buckets[-1] > 0


def test_stop_then_run_drives_a_fresh_run():
    workload = make_workload("tpcc", 20, TINY)
    system = make_system("tpcc", workload, "noSSD", TINY)
    runner = WorkloadRunner(system, workload, nworkers=4)
    first = runner.run(duration=4.0)
    assert first.total_metric_txns > 0
    runner.stop()
    system.run(until=system.env.now + 1.0)  # let the clients drain
    second = runner.run(duration=4.0, setup=False)
    # Pre-fix: _stopped stayed latched and the second run did ~nothing.
    assert second.total_metric_txns > 0
