"""Unit tests for the disk manager."""

import pytest

from repro.storage import HddArray
from repro.engine.disk_manager import DiskManager
from tests.conftest import drive


@pytest.fixture
def disk(env):
    return DiskManager(env, HddArray(env), npages=100)


class TestReadWrite:
    def test_fresh_pages_read_as_version_zero(self, env, disk):
        versions = drive(env, disk.read(10, npages=3))
        assert versions == [0, 0, 0]

    def test_write_persists_at_completion(self, env, disk):
        drive(env, disk.write(5, version=7))
        assert disk.disk_version(5) == 7

    def test_version_not_visible_before_completion(self, env, disk):
        process = env.process(disk.write(5, version=7))
        assert disk.disk_version(5) == 0
        env.run(process)
        assert disk.disk_version(5) == 7

    def test_write_run_persists_contiguous_versions(self, env, disk):
        drive(env, disk.write_run(10, [3, 4, 5]))
        assert [disk.disk_version(p) for p in (10, 11, 12)] == [3, 4, 5]

    def test_monotone_persist_ignores_stale_writes(self, env, disk):
        drive(env, disk.write(5, version=9))
        drive(env, disk.write(5, version=3))
        assert disk.disk_version(5) == 9


class TestValidation:
    def test_read_beyond_volume_rejected(self, env, disk):
        with pytest.raises(ValueError):
            drive(env, disk.read(99, npages=2))

    def test_negative_page_rejected(self, env, disk):
        with pytest.raises(ValueError):
            drive(env, disk.write(-1, version=1))

    def test_counters_track_issued_ios(self, env, disk):
        drive(env, disk.read(0))
        drive(env, disk.write(0, 1))
        assert disk.reads_issued == 1
        assert disk.writes_issued == 1
