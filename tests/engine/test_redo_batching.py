"""Recovery redo runs in concurrent waves; batching must change only
the clock, never which pages are redone."""

from repro.engine.recovery import REDO_BATCH, RecoveryManager
from tests.conftest import MiniSystem, drive


def seed_log(sys_, npages):
    """Durably log version 1 for pages 0..npages-1 (disk holds v0)."""
    for page_id in range(npages):
        sys_.wal.append(page_id, 1)
    drive(sys_.env, sys_.wal.force(sys_.wal.tail_lsn))


class TestRedoBatching:
    def test_redo_count_equals_the_redo_set(self):
        sys_ = MiniSystem(db_pages=500)
        npages = 3 * REDO_BATCH + 5  # several full waves plus a ragged one
        seed_log(sys_, npages)
        recovery = RecoveryManager(sys_.env, sys_.disk, sys_.wal)
        redo_set = recovery.analyze(-1)
        assert len(redo_set) == npages
        redone = drive(sys_.env, recovery.redo(-1))
        assert redone == npages == recovery.pages_redone
        for page_id in range(npages):
            assert sys_.disk.disk_version(page_id) == 1

    def test_already_current_pages_are_skipped(self):
        sys_ = MiniSystem(db_pages=500)
        seed_log(sys_, 40)
        for page_id in range(0, 40, 2):
            drive(sys_.env, sys_.disk.write(page_id, 1, sequential=False))
        recovery = RecoveryManager(sys_.env, sys_.disk, sys_.wal)
        assert drive(sys_.env, recovery.redo(-1)) == 20

    def test_waves_overlap_page_ios(self):
        """A wave of REDO_BATCH read+write pairs must take far less than
        their serial sum — that slowdown is what made the crash-point
        sweep quadratic in the redo-set size."""
        sys_ = MiniSystem(db_pages=500)
        seed_log(sys_, REDO_BATCH)
        recovery = RecoveryManager(sys_.env, sys_.disk, sys_.wal)
        started = sys_.env.now
        drive(sys_.env, recovery.redo(-1))
        elapsed = sys_.env.now - started

        # Serial baseline: one page redone at a time.
        serial_sys = MiniSystem(db_pages=500)
        seed_log(serial_sys, REDO_BATCH)

        def serial():
            for page_id in range(REDO_BATCH):
                yield from serial_sys.disk.read(page_id, 1, sequential=False)
                yield from serial_sys.disk.write(page_id, 1,
                                                 sequential=False)

        started = serial_sys.env.now
        drive(serial_sys.env, serial())
        serial_elapsed = serial_sys.env.now - started
        assert elapsed < serial_elapsed / 2

    def test_idempotent_under_rerun(self):
        sys_ = MiniSystem(db_pages=500)
        seed_log(sys_, 30)
        recovery = RecoveryManager(sys_.env, sys_.disk, sys_.wal)
        assert drive(sys_.env, recovery.redo(-1)) == 30
        assert drive(sys_.env, recovery.redo(-1)) == 0
