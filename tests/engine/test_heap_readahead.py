"""Unit tests for heap files, scans, and the classifiers."""

import pytest

from repro.engine.heap_file import HeapFile
from repro.engine.readahead import ReadAhead, ReadAheadAccuracy, WindowClassifier
from tests.conftest import MiniSystem, drive


class TestHeapFile:
    def test_page_of_wraps_uniformly(self):
        table = HeapFile("t", first_page=100, npages=10)
        assert table.page_of(0) == 100
        assert table.page_of(10) == 100
        assert table.page_of(13) == 103

    def test_end_page(self):
        assert HeapFile("t", 100, 10).end_page == 110

    def test_validates_size(self):
        with pytest.raises(ValueError):
            HeapFile("t", 0, 0)


class TestScan:
    def make(self, npages=64, bp_pages=128):
        sys_ = MiniSystem(design="noSSD", db_pages=500, bp_pages=bp_pages)
        table = HeapFile("t", first_page=100, npages=npages)
        return sys_, table

    def test_scan_touches_every_page(self):
        sys_, table = self.make()
        scanned = drive(sys_.env, table.scan(sys_.bp))
        assert scanned == 64

    def test_scan_range_validation(self):
        sys_, table = self.make()
        with pytest.raises(ValueError):
            drive(sys_.env, table.scan(sys_.bp, start=90, npages=4))

    def test_trigger_pages_are_random_rest_sequential(self):
        sys_, table = self.make()
        accuracy = ReadAheadAccuracy()
        drive(sys_.env, table.scan(sys_.bp, accuracy=accuracy))
        # Only the trigger pages are misclassified.
        trigger = sys_.bp.readahead.trigger_pages
        assert accuracy.total == 64
        assert accuracy.correct == 64 - trigger

    def test_partial_scan(self):
        sys_, table = self.make()
        scanned = drive(sys_.env, table.scan(sys_.bp, start=110, npages=20))
        assert scanned == 20

    def test_scan_faster_than_random_reads(self):
        sys_, table = self.make()
        drive(sys_.env, table.scan(sys_.bp))
        scan_time = sys_.env.now

        sys2 = MiniSystem(design="noSSD", db_pages=500, bp_pages=128)

        def random_reads():
            for pid in range(100, 164):
                frame = yield from sys2.bp.fetch((pid * 37) % 500)
                sys2.bp.unpin(frame)

        drive(sys2.env, random_reads())
        assert scan_time < sys2.env.now / 3


class TestReadAheadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReadAhead(batch_pages=0)
        with pytest.raises(ValueError):
            ReadAhead(trigger_pages=-1)
        with pytest.raises(ValueError):
            ReadAhead(depth=0)


class TestWindowClassifier:
    def test_adjacent_reads_classified_sequential(self):
        classifier = WindowClassifier(window=64)
        classifier.classify(100)
        assert classifier.classify(101) is True

    def test_distant_reads_classified_random(self):
        classifier = WindowClassifier(window=64)
        classifier.classify(100)
        assert classifier.classify(100_000) is False

    def test_first_read_is_random(self):
        assert WindowClassifier().classify(5) is False

    def test_accuracy_scoring(self):
        classifier = WindowClassifier(window=64)
        classifier.classify(0, truth_sequential=False)      # correct
        classifier.classify(1, truth_sequential=True)       # correct
        classifier.classify(2, truth_sequential=False)      # wrong
        assert classifier.total == 3
        assert classifier.accuracy == pytest.approx(2 / 3)

    def test_interleaved_streams_confuse_it(self):
        """The paper's point: interleaving breaks the window heuristic."""
        classifier = WindowClassifier(window=64)
        correct = 0
        # Two interleaved sequential scans far apart: every read looks
        # random to the window method even though all are sequential.
        for i in range(50):
            correct += classifier.classify(i, truth_sequential=True)
            correct += classifier.classify(100_000 + i, truth_sequential=True)
        assert classifier.accuracy < 0.2
