"""Unit tests for the write-ahead log."""

from repro.engine.wal import WriteAheadLog
from tests.conftest import drive


class TestAppend:
    def test_lsns_are_monotone(self, env):
        wal = WriteAheadLog(env)
        lsns = [wal.append(page_id=p, version=1) for p in range(5)]
        assert lsns == [0, 1, 2, 3, 4]

    def test_tail_lsn_tracks_appends(self, env):
        wal = WriteAheadLog(env)
        assert wal.tail_lsn == -1
        wal.append(1, 1)
        assert wal.tail_lsn == 0

    def test_records_carry_payload(self, env):
        wal = WriteAheadLog(env)
        wal.append(page_id=7, version=3, txn_id=42)
        record = wal.records[0]
        assert (record.page_id, record.version, record.txn_id) == (7, 3, 42)


class TestForce:
    def test_force_advances_flushed_lsn(self, env):
        wal = WriteAheadLog(env)
        lsn = wal.append(1, 1)
        drive(env, wal.force(lsn))
        assert wal.flushed_lsn >= lsn

    def test_force_takes_log_device_time(self, env):
        wal = WriteAheadLog(env)
        lsn = wal.append(1, 1)
        drive(env, wal.force(lsn))
        assert env.now > 0

    def test_force_already_durable_is_instant(self, env):
        wal = WriteAheadLog(env)
        lsn = wal.append(1, 1)
        drive(env, wal.force(lsn))
        before = env.now
        drive(env, wal.force(lsn))
        assert env.now == before

    def test_group_commit_batches_concurrent_forcers(self, env):
        wal = WriteAheadLog(env)
        lsns = [wal.append(p, 1) for p in range(50)]
        procs = [env.process(wal.force(lsn)) for lsn in lsns]
        env.run(env.all_of(procs))
        # 50 records fit in one log page; far fewer I/Os than forcers.
        assert wal.device.stats.completed <= 3

    def test_force_covers_later_appends(self, env):
        wal = WriteAheadLog(env)
        first = wal.append(1, 1)
        wal.append(2, 1)
        drive(env, wal.force(first))
        # The flush writes the whole tail.
        assert wal.flushed_lsn == wal.tail_lsn


class TestTruncateAndRecovery:
    def test_records_since_excludes_unflushed(self, env):
        wal = WriteAheadLog(env)
        flushed = wal.append(1, 1)
        drive(env, wal.force(flushed))
        wal.append(2, 2)  # never forced
        records = wal.records_since(-1)
        assert [r.page_id for r in records] == [1]

    def test_truncate_drops_old_records(self, env):
        wal = WriteAheadLog(env)
        lsns = [wal.append(p, 1) for p in range(10)]
        drive(env, wal.force(lsns[-1]))
        wal.truncate(lsns[4])
        assert [r.lsn for r in wal.records] == lsns[5:]

    def test_records_since_lower_bound_exclusive(self, env):
        wal = WriteAheadLog(env)
        lsns = [wal.append(p, 1) for p in range(3)]
        drive(env, wal.force(lsns[-1]))
        assert [r.lsn for r in wal.records_since(lsns[0])] == lsns[1:]
