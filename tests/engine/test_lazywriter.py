"""Tests for the buffer pool's background lazy writer."""

from tests.conftest import MiniSystem, drive, settle


class TestCushion:
    def test_maintains_free_cushion_under_load(self):
        sys_ = MiniSystem(design="noSSD", db_pages=2_000, bp_pages=128)
        sys_.churn(accesses=2_000, write_fraction=0.3, span=2_000)
        # After load stops, the lazy writer restores the cushion.
        settle(sys_.env, 5.0)
        assert sys_.bp.free_frames >= sys_.bp._low_water

    def test_cushion_clamped_for_tiny_pools(self):
        sys_ = MiniSystem(design="noSSD", db_pages=100, bp_pages=8)
        assert sys_.bp._high_water <= sys_.bp.capacity // 2
        assert sys_.bp._high_water >= 2

    def test_no_eviction_while_pool_has_room(self):
        sys_ = MiniSystem(design="noSSD", db_pages=2_000, bp_pages=256)

        def proc():
            for pid in range(50):
                frame = yield from sys_.bp.fetch(pid)
                sys_.bp.unpin(frame)

        drive(sys_.env, proc())
        settle(sys_.env)
        assert sys_.bp.stats.evictions_clean == 0
        assert sys_.bp.stats.evictions_dirty == 0


class TestOverlap:
    def test_slow_dirty_writeout_does_not_serialize_eviction(self):
        """Evictions stream independently: total time to evict a batch
        of dirty pages must reflect overlapping disk writes, not their
        sum."""
        sys_ = MiniSystem(design="noSSD", db_pages=2_000, bp_pages=64)
        sys_.churn(accesses=600, write_fraction=1.0, span=2_000, workers=16)
        # 600 accesses over 64 frames => ~500 dirty evictions, each a
        # ~9 ms random write.  Serialized, the writes alone exceed 4 s;
        # overlapped on 8 drives the active phase is ~1 s.  (churn()
        # includes a 5 s settle after the workers finish.)
        active = sys_.env.now - 5.0
        assert sys_.bp.stats.evictions_dirty > 300
        assert active < 3.0

    def test_fetch_latency_not_inflated_by_dirty_evictions(self):
        """A miss should cost ~one disk read even when the pool is full
        of dirty pages (the lazy writer absorbs the write-out latency)."""
        sys_ = MiniSystem(design="noSSD", db_pages=2_000, bp_pages=64)
        sys_.churn(accesses=300, write_fraction=1.0, span=64)  # all dirty

        start = sys_.env.now

        def proc():
            frame = yield from sys_.bp.fetch(1_500)
            sys_.bp.unpin(frame)

        drive(sys_.env, proc())
        latency = sys_.env.now - start
        # One random read is ~8 ms; allow generous queueing headroom.
        assert latency < 0.15
