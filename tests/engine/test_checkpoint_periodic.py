"""Tests for periodic checkpointing and the metric sampler."""

import random

from repro.harness.metrics import Sampler
from repro.harness.system import System, SystemConfig
from repro.core import SsdDesignConfig
from tests.conftest import settle


def make_system(interval, design="DW"):
    return System(SystemConfig(
        design=design, db_pages=600, bp_pages=48,
        ssd=SsdDesignConfig(ssd_frames=200, dirty_threshold=0.9),
        checkpoint_interval=interval))


def churn(system, seconds, seed=3):
    rng = random.Random(seed)
    stop = system.env.now + seconds

    def worker():
        while system.env.now < stop:
            frame = yield from system.bp.fetch(rng.randrange(300))
            if rng.random() < 0.4:
                system.bp.mark_dirty(frame)
            system.bp.unpin(frame)
            lsn = system.wal.tail_lsn
            if lsn >= 0:
                yield from system.wal.force(lsn)

    procs = [system.env.process(worker()) for _ in range(4)]
    system.env.run(system.env.all_of(procs))


class TestPeriodicCheckpoints:
    def test_fires_roughly_every_interval(self):
        system = make_system(interval=2.0)
        system.start_services()
        churn(system, seconds=9.0)
        assert 3 <= system.checkpointer.checkpoints_taken <= 5

    def test_no_interval_means_no_automatic_checkpoints(self):
        system = make_system(interval=None)
        system.start_services()
        churn(system, seconds=5.0)
        assert system.checkpointer.checkpoints_taken == 0

    def test_start_is_idempotent(self):
        system = make_system(interval=2.0)
        system.start_services()
        system.start_services()
        churn(system, seconds=5.0)
        assert system.checkpointer.checkpoints_taken <= 3

    def test_work_continues_during_checkpoint(self):
        """Sharp checkpoints degrade but do not stop the workload."""
        system = make_system(interval=1.0, design="LC")
        system.start_services()
        churn(system, seconds=6.0)
        assert system.checkpointer.checkpoints_taken >= 3
        assert system.bp.stats.hits > 0


class TestSampler:
    def test_samples_at_interval(self):
        system = make_system(interval=None)
        sampler = Sampler(system, interval=0.5)
        sampler.start()
        churn(system, seconds=4.0)
        assert len(sampler.samples) >= 7

    def test_fill_time_detects_threshold(self):
        system = make_system(interval=None)
        sampler = Sampler(system, interval=0.25)
        sampler.start()
        churn(system, seconds=6.0)
        settle(system.env)
        used = system.ssd_manager.used_frames
        assert used > 10
        crossing = sampler.fill_time(used // 2)
        assert crossing < system.env.now

    def test_fill_time_inf_when_never_reached(self):
        system = make_system(interval=None)
        sampler = Sampler(system, interval=0.5)
        sampler.start()
        churn(system, seconds=1.0)
        assert sampler.fill_time(10**9) == float("inf")

    def test_dirty_cross_time_lc(self):
        system = System(SystemConfig(
            design="LC", db_pages=600, bp_pages=48,
            ssd=SsdDesignConfig(ssd_frames=200, dirty_threshold=0.9)))
        sampler = Sampler(system, interval=0.25)
        sampler.start()
        churn(system, seconds=6.0)
        if system.ssd_manager.dirty_frames == 0:
            return  # nothing accumulated; nothing to assert
        assert sampler.dirty_cross_time(0) < float("inf")
