"""Unit tests for the B+-tree."""

import random

import pytest

from repro.engine.btree import BPlusTree
from tests.conftest import MiniSystem, drive


def make_tree(sys_, n=200, fanout=8, leaf_capacity=1):
    tree = BPlusTree("t", sys_.db.allocate, fanout=fanout,
                     leaf_capacity=leaf_capacity)
    tree.bulk_load(range(n))
    return tree


class TestBulkLoad:
    def test_page_granular_keys_use_one_leaf_each(self):
        sys_ = MiniSystem(db_pages=1000, bp_pages=64)
        tree = make_tree(sys_, n=100)
        leaves = [n for n in tree.nodes.values() if n.is_leaf]
        assert len(leaves) == 100

    def test_classic_packing(self):
        sys_ = MiniSystem(db_pages=1000, bp_pages=64)
        tree = make_tree(sys_, n=100, fanout=8, leaf_capacity=7)
        leaves = [n for n in tree.nodes.values() if n.is_leaf]
        assert len(leaves) == -(-100 // 7)

    def test_rejects_unsorted_keys(self):
        sys_ = MiniSystem(db_pages=1000, bp_pages=64)
        tree = BPlusTree("t", sys_.db.allocate)
        with pytest.raises(ValueError):
            tree.bulk_load([3, 1, 2])

    def test_height_grows_logarithmically(self):
        sys_ = MiniSystem(db_pages=5000, bp_pages=64)
        tree = make_tree(sys_, n=1000, fanout=8)
        # 1000 leaves at fanout 8: 1000 -> 125 -> 16 -> 2 -> 1.
        assert tree.height == 5

    def test_single_key(self):
        sys_ = MiniSystem(db_pages=100, bp_pages=64)
        tree = make_tree(sys_, n=1)
        assert tree.height == 1
        assert tree.root_page is not None


class TestLookup:
    def test_all_keys_found(self):
        sys_ = MiniSystem(db_pages=2000, bp_pages=512)
        tree = make_tree(sys_, n=150)

        def proc():
            for key in range(150):
                value = yield from tree.lookup(sys_.bp, key)
                assert value == key

        drive(sys_.env, proc())

    def test_missing_key_returns_none(self):
        sys_ = MiniSystem(db_pages=2000, bp_pages=64)
        tree = make_tree(sys_, n=10)

        def proc():
            return (yield from tree.lookup(sys_.bp, 999))

        assert drive(sys_.env, proc()) is None

    def test_lookup_walks_height_pages(self):
        sys_ = MiniSystem(db_pages=2000, bp_pages=512)
        tree = make_tree(sys_, n=100, fanout=8)

        def proc():
            yield from tree.lookup(sys_.bp, 50)

        drive(sys_.env, proc())
        touched = sys_.bp.stats.hits + sys_.bp.stats.misses
        assert touched == tree.height


class TestUpdate:
    def test_update_dirties_leaf(self):
        sys_ = MiniSystem(db_pages=2000, bp_pages=64)
        tree = make_tree(sys_, n=20)

        def proc():
            found = yield from tree.update(sys_.bp, 5)
            assert found
            value = yield from tree.lookup(sys_.bp, 5)
            return value

        assert drive(sys_.env, proc()) == 6  # value incremented
        assert sys_.bp.dirty_count == 1

    def test_update_missing_key(self):
        sys_ = MiniSystem(db_pages=2000, bp_pages=64)
        tree = make_tree(sys_, n=20)

        def proc():
            return (yield from tree.update(sys_.bp, 777))

        assert drive(sys_.env, proc()) is False


class TestInsert:
    def test_monotone_inserts_split_rightmost(self):
        sys_ = MiniSystem(db_pages=2000, bp_pages=256)
        tree = make_tree(sys_, n=10)

        def proc():
            for key in range(10, 40):
                inserted = yield from tree.insert(sys_.bp, key)
                assert inserted

        drive(sys_.env, proc())
        assert tree.splits >= 29  # page-granular: nearly every insert splits

        def verify():
            for key in range(40):
                value = yield from tree.lookup(sys_.bp, key)
                assert value == key, key

        drive(sys_.env, verify())

    def test_duplicate_insert_is_noop(self):
        sys_ = MiniSystem(db_pages=2000, bp_pages=64)
        tree = make_tree(sys_, n=10)

        def proc():
            return (yield from tree.insert(sys_.bp, 5))

        assert drive(sys_.env, proc()) is False

    def test_random_inserts_preserve_search(self):
        sys_ = MiniSystem(db_pages=8000, bp_pages=1024)
        tree = BPlusTree("t", sys_.db.allocate, fanout=8, leaf_capacity=4)
        tree.bulk_load(range(0, 400, 4))  # gaps to insert into
        rng = random.Random(3)
        extra = rng.sample([k for k in range(400) if k % 4], 120)

        def proc():
            for key in extra:
                yield from tree.insert(sys_.bp, key)
            for key in extra:
                value = yield from tree.lookup(sys_.bp, key)
                assert value == key, key

        drive(sys_.env, proc())

    def test_split_creates_dirty_on_the_fly_page(self):
        """The §4.2 case: split pages are never read from disk."""
        sys_ = MiniSystem(db_pages=2000, bp_pages=64)
        tree = make_tree(sys_, n=5)
        reads_before = sys_.disk.reads_issued

        def proc():
            yield from tree.insert(sys_.bp, 5)

        drive(sys_.env, proc())
        new_leaves = [n for n in tree.nodes.values()
                      if n.is_leaf and 5 in n.keys]
        frame = sys_.bp.frames.get(new_leaves[0].page_id)
        assert frame is not None and frame.dirty


class TestStructure:
    def test_keys_ordered_in_every_node(self):
        sys_ = MiniSystem(db_pages=8000, bp_pages=1024)
        tree = BPlusTree("t", sys_.db.allocate, fanout=8, leaf_capacity=4)
        tree.bulk_load(range(0, 300, 3))

        def proc():
            for key in range(0, 300):
                if key % 3:
                    yield from tree.insert(sys_.bp, key)

        drive(sys_.env, proc())
        for node in tree.nodes.values():
            assert node.keys == sorted(node.keys)
            if not node.is_leaf:
                assert len(node.children) == len(node.keys) + 1

    def test_leaf_chain_covers_all_keys_in_order(self):
        sys_ = MiniSystem(db_pages=2000, bp_pages=64)
        tree = make_tree(sys_, n=50)
        node = tree.nodes[min(p for p, n in tree.nodes.items() if n.is_leaf)]
        seen = []
        while node is not None:
            seen.extend(node.keys)
            node = tree.nodes.get(node.next_leaf)
        assert seen == list(range(50))
