"""Unit tests for the buffer pool."""

import pytest

from tests.conftest import MiniSystem, drive, settle


@pytest.fixture
def sys_():
    return MiniSystem(design="noSSD", db_pages=500, bp_pages=32)


class TestFetch:
    def test_miss_then_hit(self, sys_):
        def proc():
            frame = yield from sys_.bp.fetch(10)
            sys_.bp.unpin(frame)
            again = yield from sys_.bp.fetch(10)
            sys_.bp.unpin(again)
            return frame, again

        first, second = drive(sys_.env, proc())
        assert first is second
        assert sys_.bp.stats.misses == 1
        assert sys_.bp.stats.hits == 1

    def test_fetch_pins_frame(self, sys_):
        def proc():
            frame = yield from sys_.bp.fetch(1)
            return frame

        frame = drive(sys_.env, proc())
        assert frame.pinned

    def test_unpin_requires_pin(self, sys_):
        def proc():
            frame = yield from sys_.bp.fetch(1)
            sys_.bp.unpin(frame)
            return frame

        frame = drive(sys_.env, proc())
        with pytest.raises(ValueError):
            sys_.bp.unpin(frame)

    def test_concurrent_misses_share_one_read(self, sys_):
        frames = []

        def proc():
            frame = yield from sys_.bp.fetch(42)
            frames.append(frame)
            sys_.bp.unpin(frame)

        procs = [sys_.env.process(proc()) for _ in range(5)]
        sys_.env.run(sys_.env.all_of(procs))
        assert len({id(f) for f in frames}) == 1
        assert sys_.bp.stats.misses == 1
        assert sys_.disk.reads_issued == 1

    def test_miss_takes_device_time(self, sys_):
        def proc():
            frame = yield from sys_.bp.fetch(7)
            sys_.bp.unpin(frame)

        drive(sys_.env, proc())
        assert sys_.env.now > 0


class TestDirtyTracking:
    def test_mark_dirty_bumps_version_and_logs(self, sys_):
        def proc():
            frame = yield from sys_.bp.fetch(3)
            lsn = sys_.bp.mark_dirty(frame)
            sys_.bp.unpin(frame)
            return frame, lsn

        frame, lsn = drive(sys_.env, proc())
        assert frame.version == 1
        assert frame.dirty
        assert frame.page_lsn == lsn
        assert sys_.wal.tail_lsn == lsn

    def test_mark_dirty_requires_pin(self, sys_):
        def proc():
            frame = yield from sys_.bp.fetch(3)
            sys_.bp.unpin(frame)
            return frame

        frame = drive(sys_.env, proc())
        with pytest.raises(ValueError):
            sys_.bp.mark_dirty(frame)

    def test_dirty_count(self, sys_):
        def proc():
            for pid in range(4):
                frame = yield from sys_.bp.fetch(pid)
                if pid % 2 == 0:
                    sys_.bp.mark_dirty(frame)
                sys_.bp.unpin(frame)

        drive(sys_.env, proc())
        assert sys_.bp.dirty_count == 2


class TestEviction:
    def test_capacity_is_respected(self, sys_):
        sys_.churn(accesses=800, span=500)
        assert len(sys_.bp.frames) <= sys_.bp.capacity

    def test_dirty_eviction_reaches_disk(self, sys_):
        sys_.churn(accesses=800, write_fraction=1.0, span=500)
        assert sys_.bp.stats.evictions_dirty > 0
        dirty_or_buffered = set(sys_.bp.frames)
        written = [p for p in range(500)
                   if sys_.disk.disk_version(p) > 0]
        assert written  # evicted dirty pages were persisted

    def test_wal_rule_log_flushed_before_page_write(self, sys_):
        sys_.churn(accesses=400, write_fraction=1.0, span=500)
        # Every page version on disk must have its redo record durable.
        for page in range(500):
            version = sys_.disk.disk_version(page)
            if version == 0:
                continue
            durable = [r for r in sys_.wal.records
                       if r.page_id == page and r.lsn <= sys_.wal.flushed_lsn]
            assert any(r.version >= version for r in durable), page

    def test_lru2_evicts_cold_page_first(self):
        sys_ = MiniSystem(design="noSSD", db_pages=100, bp_pages=8)

        def proc():
            # Touch page 0 twice (hot by LRU-2), pages 1..7 once each.
            for _ in range(2):
                frame = yield from sys_.bp.fetch(0)
                sys_.bp.unpin(frame)
            for pid in range(1, 8):
                frame = yield from sys_.bp.fetch(pid)
                sys_.bp.unpin(frame)
            # Overflow the pool; page 0 should survive longer than the
            # singly-touched pages.
            for pid in range(50, 55):
                frame = yield from sys_.bp.fetch(pid)
                sys_.bp.unpin(frame)

        drive(sys_.env, proc())
        settle(sys_.env)
        assert 0 in sys_.bp.frames

    def test_pinned_frames_never_evicted(self):
        sys_ = MiniSystem(design="noSSD", db_pages=100, bp_pages=8)

        def proc():
            pinned = yield from sys_.bp.fetch(0)
            for pid in range(1, 40):
                frame = yield from sys_.bp.fetch(pid)
                sys_.bp.unpin(frame)
            return pinned

        pinned = drive(sys_.env, proc())
        settle(sys_.env)
        assert sys_.bp.frames.get(0) is pinned


class TestPrefetch:
    def test_prefetch_marks_sequential(self, sys_):
        drive(sys_.env, sys_.bp.prefetch(100, 8))
        for pid in range(100, 108):
            assert sys_.bp.frames[pid].sequential

    def test_prefetch_skips_resident_pages(self, sys_):
        def proc():
            frame = yield from sys_.bp.fetch(102)
            sys_.bp.unpin(frame)
            yield from sys_.bp.prefetch(100, 8)

        drive(sys_.env, proc())
        assert not sys_.bp.frames[102].sequential  # kept original frame
        assert sys_.bp.stats.prefetched_pages == 7

    def test_prefetched_pages_arrive_unpinned(self, sys_):
        drive(sys_.env, sys_.bp.prefetch(100, 4))
        assert all(not sys_.bp.frames[p].pinned for p in range(100, 104))

    def test_expand_reads_fills_pool_faster(self):
        sys_ = MiniSystem(design="noSSD", db_pages=500, bp_pages=64)
        sys_.bp.expand_reads = True

        def proc():
            frame = yield from sys_.bp.fetch(17)
            sys_.bp.unpin(frame)

        drive(sys_.env, proc())
        # One fetch brought in the whole aligned 8-page run.
        assert len(sys_.bp.frames) == 8


class TestNewPage:
    def test_new_page_starts_dirty(self, sys_):
        def proc():
            frame = yield from sys_.bp.new_page(490)
            sys_.bp.unpin(frame)
            return frame

        frame = drive(sys_.env, proc())
        assert frame.dirty
        assert not frame.sequential

    def test_new_page_rejects_resident(self, sys_):
        def proc():
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.unpin(frame)
            yield from sys_.bp.new_page(5)

        with pytest.raises(ValueError):
            drive(sys_.env, proc())


class TestDropAll:
    def test_drop_all_clears_state(self, sys_):
        sys_.churn(accesses=200, span=500)
        sys_.bp.drop_all()
        assert not sys_.bp.frames
        assert sys_.bp.used == 0
