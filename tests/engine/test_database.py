"""Unit tests for the catalog/allocator."""

import pytest

from repro.engine.database import Database


class TestAllocation:
    def test_contiguous_allocation(self):
        db = Database(100)
        assert db.allocate(10) == 0
        assert db.allocate(5) == 10
        assert db.allocated_pages == 15
        assert db.free_pages == 85

    def test_exhaustion_raises(self):
        db = Database(10)
        db.allocate(8)
        with pytest.raises(RuntimeError):
            db.allocate(3)

    def test_zero_allocation_rejected(self):
        with pytest.raises(ValueError):
            Database(10).allocate(0)

    def test_validates_size(self):
        with pytest.raises(ValueError):
            Database(0)


class TestCatalog:
    def test_create_table(self):
        db = Database(100)
        table = db.create_table("orders", 20)
        assert db.tables["orders"] is table
        assert table.npages == 20

    def test_duplicate_table_rejected(self):
        db = Database(100)
        db.create_table("t", 5)
        with pytest.raises(ValueError):
            db.create_table("t", 5)

    def test_create_index_allocates_pages(self):
        db = Database(200)
        tree = db.create_index("idx", range(50))
        assert db.indexes["idx"] is tree
        assert db.allocated_pages >= 50  # leaves + internals

    def test_duplicate_index_rejected(self):
        db = Database(200)
        db.create_index("idx", range(10))
        with pytest.raises(ValueError):
            db.create_index("idx", range(10))
