"""Partitioned buffer pool: equivalence, determinism, and the latch knob.

The partition refactor must be *invisible* when the latch is free: the
pinned digests below were computed on the pre-refactor single-heap pool,
so any drift in victim selection, stamp ordering, or I/O interleaving
fails these tests byte-for-byte.  ``run_meta`` events are excluded from
the digest because they embed the source hash, which changes with any
edit by design.

With a nonzero latch service time the partition count becomes a real
performance knob: fetches queue through their partition's latch in
virtual time, so per-tenant tail latency must fall monotonically as
``--partitions`` grows.
"""

import hashlib
import json

import pytest

from repro.harness.experiments import (SCALE_PROFILES, run_oltp_experiment,
                                       run_traffic_experiment)
from repro.telemetry import Telemetry

TINY = SCALE_PROFILES["tiny"]

#: Meta-free trace digests of the pre-refactor (single-heap, unlatched)
#: buffer pool, profile=tiny scale=20 duration=4 nworkers=4 seed=20110612.
PINNED_TRACES = {
    ("tpcc", "LC", None): "6f916a0023a162055775779854cc0689",
    ("tpcc", "LC", 1.0): "b79c35551dfb4b0217ba02b67ebcd9e9",
    ("tpcc", "TAC", None): "7c1691bbb0694821ee4bf0c280950482",
    ("tpce", "DW", None): "d13c3276d3fe1e2de60cc960a168330f",
}


def _oltp_trace_md5(benchmark, design, checkpoint_interval=None, **kwargs):
    telemetry = Telemetry()
    run_oltp_experiment(benchmark, 20, design, duration=4.0, profile=TINY,
                        nworkers=4, checkpoint_interval=checkpoint_interval,
                        telemetry=telemetry, **kwargs)
    payload = "\n".join(
        json.dumps(event.to_dict(), sort_keys=True)
        for event in telemetry.tracer.events
        if event.to_dict().get("cat") != "meta")
    return hashlib.md5(payload.encode()).hexdigest()


@pytest.mark.parametrize("bench,design,ckpt", sorted(
    PINNED_TRACES, key=str))
def test_single_partition_trace_matches_pre_refactor(bench, design, ckpt):
    """Acceptance: partitions=1 traces are md5-identical to the seed."""
    digest = _oltp_trace_md5(bench, design, checkpoint_interval=ckpt)
    assert digest == PINNED_TRACES[(bench, design, ckpt)]


def test_partition_count_does_not_change_unlatched_traces():
    """With a free latch the global stamp makes victim order a global
    min across partition heaps — so N is trace-invisible."""
    digests = {n: _oltp_trace_md5("tpcc", "LC", partitions=n)
               for n in (1, 4, 16)}
    assert digests[4] == digests[1]
    assert digests[16] == digests[1]
    assert digests[1] == PINNED_TRACES[("tpcc", "LC", None)]


def test_partitioned_run_is_deterministic_under_fixed_seed():
    first = _oltp_trace_md5("tpcc", "LC", partitions=8)
    second = _oltp_trace_md5("tpcc", "LC", partitions=8)
    assert first == second


def test_latched_run_records_partition_latch_waits():
    result = run_oltp_experiment("tpcc", 20, "LC", duration=4.0,
                                 profile=TINY, nworkers=4,
                                 partitions=4, latch_us=200.0)
    stats = result.system.bp.stats
    assert stats.partition_latch_waits > 0
    assert stats.partition_latch_wait_time > 0.0
    bp = result.system.bp
    assert bp.partitions == 4
    assert len(bp.partition_occupancy()) == 4
    # Every resident frame is accounted to exactly one partition shard.
    assert sum(bp.partition_occupancy()) == len(bp.frames)


def test_latched_throughput_unchanged_by_free_latch():
    """latch_us=0 (the default) must leave results identical to a run
    that never heard of partitioning."""
    base = run_oltp_experiment("tpcc", 20, "LC", duration=4.0,
                               profile=TINY, nworkers=4)
    sharded = run_oltp_experiment("tpcc", 20, "LC", duration=4.0,
                                  profile=TINY, nworkers=4, partitions=16)
    assert sharded.total_metric_txns == base.total_metric_txns
    assert sharded.system.bp.stats.partition_latch_waits == 0


TWO_TENANTS_HOT = ("gold=poisson:rate=400:theta=0.6;"
                   "noisy=bursty:rate=300:burst=10:theta=0.99")


def test_traffic_per_tenant_p99_strictly_decreases_with_partitions():
    """Acceptance: two-tenant open-loop run, per-tenant p99 strictly
    decreasing across --partitions 1/4/16 when latch time is modeled."""
    p99 = {}
    for nparts in (1, 4, 16):
        result = run_traffic_experiment(
            "tpcc", 20, "LC", TWO_TENANTS_HOT, duration=8.0, profile=TINY,
            nworkers=8, queue_limit=200, partitions=nparts, latch_us=200.0)
        p99[nparts] = {name: stats.latencies.percentile(99)
                       for name, stats in result.tenants.items()}
    for tenant in ("gold", "noisy"):
        assert p99[4][tenant] < p99[1][tenant]
        assert p99[16][tenant] < p99[4][tenant]
