"""Model-based tests for LRU-2 replacement in the buffer pool.

Drives the pool with random access sequences and checks the victim
choices against a brute-force reference implementation of LRU-2
("evict the page with the oldest penultimate access"; O'Neil et al.,
the policy the paper uses for both the memory pool and the SSD).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import MiniSystem, drive, settle


def access_sequence(sys_, pages):
    def proc():
        for pid in pages:
            frame = yield from sys_.bp.fetch(pid)
            sys_.bp.unpin(frame)
            # Separate accesses in virtual time so LRU-2 timestamps are
            # strictly ordered like the logical sequence (buffer hits are
            # otherwise instantaneous and would tie).
            yield sys_.env.timeout(0.001)

    drive(sys_.env, proc())


class TestAgainstReferenceModel:
    @staticmethod
    def reference_lru2(pages, capacity):
        """Brute-force LRU-2 cache simulation over a logical sequence."""
        history = {}
        cache = set()
        for seq, pid in enumerate(pages):
            prev, last = history.get(pid, (float("-inf"), float("-inf")))
            history[pid] = (last, seq)
            if pid not in cache:
                if len(cache) >= capacity:
                    victim = min(cache, key=lambda q: history[q])
                    cache.remove(victim)
                cache.add(pid)
        return cache

    def test_unambiguous_hot_set_survives(self):
        """A deterministic sequence where LRU-2's verdict has wide
        margin: pages re-touched right before the pressure phase must
        all survive a flood of once-touched pages.

        (Exact set-equality with a reference simulation is *not* a
        stable property: the lazy writer evicts in cushion-sized batches
        ahead of demand, so marginal pages near the capacity boundary
        can legitimately differ.)"""
        sys_ = MiniSystem(design="noSSD", db_pages=200, bp_pages=16)
        hot = list(range(6))
        access_sequence(sys_, hot + hot)       # two spaced touches each
        access_sequence(sys_, list(range(100, 160)))  # pressure
        settle(sys_.env)
        assert all(pid in sys_.bp.frames for pid in hot), \
            sorted(sys_.bp.frames)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999))
    def test_reference_agrees_on_clear_cut_pages(self, seed):
        """Pages the reference simulation ranks in its hottest third
        must survive in the pool too (wide-margin agreement only)."""
        capacity = 16
        sys_ = MiniSystem(design="noSSD", db_pages=200, bp_pages=capacity)
        rng = random.Random(seed)
        hot = rng.sample(range(50), 5)
        # Cold pages are distinct: a re-referenced cold page would gain a
        # recent penultimate access and legitimately outrank stale hot
        # pages under LRU-2.
        cold = rng.sample(range(100, 180), 50)
        pages = hot + hot + cold
        access_sequence(sys_, pages)
        settle(sys_.env)
        reference = self.reference_lru2(
            pages, capacity - sys_.bp._high_water)
        assert set(hot) <= reference
        assert set(hot) <= set(sys_.bp.frames)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999))
    def test_scan_does_not_flush_rereferenced_pages(self, seed):
        """LRU-2's defining property: singly-touched scan pages cannot
        displace pages with two recent accesses."""
        sys_ = MiniSystem(design="noSSD", db_pages=400, bp_pages=32)
        rng = random.Random(seed)
        hot = rng.sample(range(50), 8)
        # Touch the hot set twice.
        access_sequence(sys_, hot + hot)
        # Blast a one-pass scan of cold pages through the pool.
        access_sequence(sys_, list(range(100, 180)))
        settle(sys_.env)
        surviving = [pid for pid in hot if pid in sys_.bp.frames]
        assert len(surviving) >= len(hot) // 2, (hot, sorted(sys_.bp.frames))


class TestSsdLru2:
    def test_ssd_replacement_prefers_singly_accessed(self):
        """The SSD's LRU-2 (via the clean heap) evicts pages without a
        second access before pages re-read from the SSD."""
        sys_ = MiniSystem(design="DW", db_pages=400, bp_pages=16,
                          ssd_frames=8)
        manager = sys_.ssd_manager
        for pid in range(8):
            drive(sys_.env, manager._cache_page(pid, 0, False))
        # Re-read half of them from the SSD (gives a 2-access history).
        for pid in (0, 2, 4, 6):
            drive(sys_.env, manager.try_read(pid))
        # Force 4 replacements.
        for pid in range(100, 104):
            drive(sys_.env, manager._cache_page(pid, 0, False))
        for pid in (0, 2, 4, 6):
            assert manager.contains_valid(pid), pid
        for pid in (1, 3, 5, 7):
            assert not manager.contains_valid(pid), pid
