"""Checkpoint and crash-recovery tests — including the LC correctness
property the paper's §3.2 checkpoint change exists to protect."""

import random

import pytest

from repro.engine.recovery import RecoveryError, RecoveryManager, simulate_crash_and_recover
from repro.harness.system import System, SystemConfig
from repro.core import SsdDesignConfig
from tests.conftest import drive, settle


def make_system(design, **ssd_kwargs):
    return System(SystemConfig(
        design=design, db_pages=800, bp_pages=64,
        ssd=SsdDesignConfig(ssd_frames=0 if design == "noSSD" else 300,
                            dirty_threshold=0.9, **ssd_kwargs)))


def run_updates(system, n=400, seed=11, oracle=None):
    rng = random.Random(seed)
    oracle = {} if oracle is None else oracle

    def worker():
        for _ in range(n):
            pid = rng.randrange(system.config.db_pages // 2)
            frame = yield from system.bp.fetch(pid)
            system.bp.mark_dirty(frame)
            written = (frame.page_id, frame.version)
            system.bp.unpin(frame)
            lsn = system.wal.tail_lsn
            yield from system.wal.force(lsn)
            if written[1] > oracle.get(written[0], -1):
                oracle[written[0]] = written[1]

    drive(system.env, worker())
    settle(system.env)
    return oracle


class TestCheckpoint:
    @pytest.mark.parametrize("design", ["noSSD", "CW", "DW", "LC", "TAC"])
    def test_checkpoint_flushes_all_dirty_state(self, design):
        system = make_system(design)
        run_updates(system)
        drive(system.env, system.checkpointer.checkpoint())
        settle(system.env)
        assert system.bp.dirty_count == 0
        assert system.ssd_manager.dirty_frames == 0

    def test_checkpoint_truncates_log(self):
        system = make_system("DW")
        run_updates(system)
        assert system.wal.records
        drive(system.env, system.checkpointer.checkpoint())
        tail = [r for r in system.wal.records
                if r.lsn <= system.checkpointer.last_checkpoint_lsn]
        assert not tail

    def test_checkpoint_durations_recorded(self):
        system = make_system("LC")
        run_updates(system)
        drive(system.env, system.checkpointer.checkpoint())
        assert system.checkpointer.checkpoints_taken == 1
        assert system.checkpointer.durations[0] > 0

    def test_lc_checkpoint_flushes_dirty_ssd_pages(self):
        system = make_system("LC")
        run_updates(system)
        assert system.ssd_manager.dirty_frames > 0  # λ=90%: lots buffered
        drive(system.env, system.checkpointer.checkpoint())
        assert system.ssd_manager.dirty_frames == 0
        assert system.ssd_manager.stats.checkpoint_ssd_flushes > 0

    def test_lc_checkpoint_longer_than_dw(self):
        """LC pays for flushing the SSD's dirty pages too (§4.3.3)."""
        durations = {}
        for design in ("DW", "LC"):
            system = make_system(design)
            run_updates(system)
            drive(system.env, system.checkpointer.checkpoint())
            durations[design] = system.checkpointer.durations[0]
        assert durations["LC"] > durations["DW"]


class TestRecovery:
    @pytest.mark.parametrize("design", ["noSSD", "CW", "DW", "LC", "TAC"])
    def test_no_committed_update_lost(self, design):
        system = make_system(design)
        oracle = run_updates(system)
        redone = drive(system.env, simulate_crash_and_recover(
            system.env, system, committed=oracle))
        assert redone >= 0  # verification inside raises on loss

    @pytest.mark.parametrize("design", ["DW", "LC"])
    def test_recovery_after_checkpoint_and_more_updates(self, design):
        system = make_system(design)
        oracle = run_updates(system, seed=1)
        drive(system.env, system.checkpointer.checkpoint())
        run_updates(system, seed=2, oracle=oracle)
        drive(system.env, simulate_crash_and_recover(
            system.env, system, committed=oracle))

    def test_lc_without_ssd_flush_loses_updates(self, monkeypatch):
        """Remove LC's checkpoint flush and recovery must fail: this is
        why §3.2 modifies the checkpoint logic."""
        system = make_system("LC")
        # Sabotage: make the LC checkpoint skip the SSD drain.  Managers
        # are slotted (RPL002), so the patch goes on the class; the
        # monkeypatch fixture restores it after the test.
        monkeypatch.setattr(type(system.ssd_manager), "on_checkpoint",
                            lambda self: iter(()))
        oracle = run_updates(system, seed=3)
        if system.ssd_manager.dirty_frames == 0:
            pytest.skip("no dirty SSD pages accumulated")
        drive(system.env, system.checkpointer.checkpoint())
        with pytest.raises(RecoveryError):
            drive(system.env, simulate_crash_and_recover(
                system.env, system, committed=oracle))

    def test_redo_is_idempotent(self):
        system = make_system("DW")
        oracle = run_updates(system)
        drive(system.env, simulate_crash_and_recover(
            system.env, system, committed=oracle))
        recovery = RecoveryManager(system.env, system.disk, system.wal)
        redone = drive(system.env, recovery.redo(
            system.checkpointer.last_checkpoint_lsn))
        assert redone == 0  # nothing left to redo

    def test_unforced_tail_is_legitimately_lost(self):
        system = make_system("noSSD")

        def worker():
            frame = yield from system.bp.fetch(1)
            system.bp.mark_dirty(frame)
            system.bp.unpin(frame)
            # No force: the update is not durable.

        drive(system.env, worker())
        system.bp.drop_all()
        recovery = RecoveryManager(system.env, system.disk, system.wal)
        drive(system.env, recovery.redo(-1))
        assert system.disk.disk_version(1) == 0


class TestWarmRestart:
    def test_cold_restart_empties_ssd(self):
        system = make_system("DW")
        run_updates(system)
        assert system.ssd_manager.used_frames > 0
        drive(system.env, simulate_crash_and_recover(system.env, system))
        assert system.ssd_manager.used_frames == 0

    def test_warm_restart_keeps_clean_frames(self):
        system = make_system("DW", warm_restart=True)
        oracle = run_updates(system)
        before = system.ssd_manager.used_frames
        assert before > 0
        drive(system.env, simulate_crash_and_recover(
            system.env, system, committed=oracle))
        assert system.ssd_manager.used_frames > 0

    def test_warm_restart_drops_frames_made_stale_by_redo(self):
        system = make_system("DW", warm_restart=True)
        oracle = run_updates(system)
        drive(system.env, simulate_crash_and_recover(
            system.env, system, committed=oracle))
        system.ssd_manager.check_invariants()
