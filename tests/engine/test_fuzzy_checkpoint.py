"""Tests for fuzzy checkpoints: fast checkpoint, slower restart (§2.3.3)."""

import random

import pytest

from repro.core import SsdDesignConfig
from repro.engine.recovery import RecoveryManager, simulate_crash_and_recover
from repro.harness.system import System, SystemConfig
from tests.conftest import drive, settle


def make_system(policy, design="LC", dirty_threshold=0.9):
    return System(SystemConfig(
        design=design, db_pages=800, bp_pages=64,
        checkpoint_policy=policy,
        ssd=SsdDesignConfig(ssd_frames=300,
                            dirty_threshold=dirty_threshold)))


def run_updates(system, n=300, seed=31):
    rng = random.Random(seed)
    oracle = {}

    def worker():
        for _ in range(n):
            page = rng.randrange(400)
            frame = yield from system.bp.fetch(page)
            system.bp.mark_dirty(frame)
            written = (frame.page_id, frame.version)
            system.bp.unpin(frame)
            yield from system.wal.force(system.wal.tail_lsn)
            oracle[written[0]] = max(oracle.get(written[0], 0), written[1])

    drive(system.env, worker())
    settle(system.env)
    return oracle


class TestFuzzyCheckpoint:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(checkpoint_policy="vague")

    def test_fuzzy_checkpoint_is_nearly_free(self):
        sharp = make_system("sharp")
        fuzzy = make_system("fuzzy")
        for system in (sharp, fuzzy):
            run_updates(system)
            drive(system.env, system.checkpointer.checkpoint())
        assert (fuzzy.checkpointer.durations[0]
                < sharp.checkpointer.durations[0] / 5)

    def test_fuzzy_checkpoint_does_not_flush(self):
        system = make_system("fuzzy")
        run_updates(system)
        dirty_before = system.bp.dirty_count
        ssd_dirty_before = system.ssd_manager.dirty_frames
        drive(system.env, system.checkpointer.checkpoint())
        assert system.bp.dirty_count == dirty_before
        assert system.ssd_manager.dirty_frames == ssd_dirty_before

    def test_fuzzy_truncation_bounded_by_oldest_dirty(self):
        system = make_system("fuzzy")
        run_updates(system)
        drive(system.env, system.checkpointer.checkpoint())
        rec_lsns = [f.rec_lsn for f in system.bp.dirty_frames()
                    if f.rec_lsn >= 0]
        ssd_oldest = system.ssd_manager.oldest_dirty_rec_lsn()
        if ssd_oldest is not None:
            rec_lsns.append(ssd_oldest)
        if rec_lsns:
            assert system.checkpointer.last_checkpoint_lsn < min(rec_lsns)

    @pytest.mark.parametrize("design", ["noSSD", "DW", "LC"])
    def test_recovery_correct_after_fuzzy_checkpoint(self, design):
        system = make_system("fuzzy", design=design)
        oracle = run_updates(system)
        drive(system.env, system.checkpointer.checkpoint())
        oracle2 = run_updates(system, n=150, seed=32)
        oracle.update({k: max(v, oracle.get(k, 0))
                       for k, v in oracle2.items()})
        drive(system.env, simulate_crash_and_recover(
            system.env, system, committed=oracle))

    def test_restart_redo_larger_than_after_sharp(self):
        """The paper's trade: fuzzy checkpoints shift cost to restart."""
        redone = {}
        for policy in ("sharp", "fuzzy"):
            system = make_system(policy)
            oracle = run_updates(system)
            drive(system.env, system.checkpointer.checkpoint())
            redone[policy] = drive(system.env, simulate_crash_and_recover(
                system.env, system, committed=oracle))
        assert redone["fuzzy"] > redone["sharp"]

    def test_lc_lambda_inflates_fuzzy_restart(self):
        """More dirty pages parked in the SSD (higher λ) push the fuzzy
        truncation point further back — the §2.3.3 'recovery time
        unacceptably long' effect."""
        redo_work = {}
        for lam in (0.1, 0.9):
            system = make_system("fuzzy", dirty_threshold=lam)
            run_updates(system)
            drive(system.env, system.checkpointer.checkpoint())
            recovery = RecoveryManager(system.env, system.disk, system.wal)
            redo_work[lam] = len(recovery.analyze(
                system.checkpointer.last_checkpoint_lsn))
        assert redo_work[0.9] >= redo_work[0.1]
