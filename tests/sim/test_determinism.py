"""Determinism guarantees of the event kernel.

The kernel promises that same-instant events are processed in scheduling
order (the seq tie-break) and that a seeded run is exactly repeatable.
The inlined scheduling fast paths (plain-int seq counter, direct heap
pushes in ``succeed``/``fail``/``Timeout``) must preserve both; these
tests pin the observable contract.
"""

import random

from repro.sim import Environment


def test_same_instant_events_fire_in_scheduling_order():
    env = Environment()
    order = []
    events = []
    for i in range(100):
        event = env.event()
        event.callbacks.append(lambda ev, i=i: order.append(i))
        events.append(event)
    # Trigger in a shuffled order: processing must follow *scheduling*
    # (trigger) order, not creation order.
    rng = random.Random(7)
    shuffled = list(range(100))
    rng.shuffle(shuffled)
    for i in shuffled:
        events[i].succeed()
    env.run()
    assert order == shuffled


def test_same_instant_timeouts_fire_in_creation_order():
    env = Environment()
    order = []

    def waiter(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(50):
        env.process(waiter(tag))
    env.run()
    assert order == list(range(50))


def _churn(seed):
    """A seeded mini-simulation: interacting processes with random
    delays; returns the full observable event sequence."""
    env = Environment()
    rng = random.Random(seed)
    log = []

    def worker(tag):
        for step in range(20):
            yield env.timeout(rng.random())
            log.append((tag, step, env.now))

    def spawner():
        for tag in range(10):
            env.process(worker(tag))
            yield env.timeout(rng.random() * 0.1)

    env.process(spawner())
    env.run()
    return log


def test_seeded_runs_are_exactly_repeatable():
    first = _churn(20110612)
    second = _churn(20110612)
    assert first == second
    assert first != _churn(20110613)
