"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, Store


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        first, second, third = (resource.request() for _ in range(3))
        assert first.triggered
        assert second.triggered
        assert not third.triggered
        assert resource.count == 2
        assert resource.queue_len == 1

    def test_release_wakes_fifo(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        resource.release(first)
        assert second.triggered
        assert not third.triggered

    def test_release_waiting_request_cancels_it(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        resource.release(second)  # cancel before grant
        resource.release(first)
        assert resource.count == 0
        assert resource.queue_len == 0

    def test_double_release_is_noop(self, env):
        resource = Resource(env, capacity=1)
        request = resource.request()
        resource.release(request)
        resource.release(request)
        assert resource.count == 0

    def test_in_flight_counts_users_and_waiters(self, env):
        resource = Resource(env, capacity=1)
        requests = [resource.request() for _ in range(3)]
        assert resource.in_flight == 3
        resource.release(requests[0])
        assert resource.in_flight == 2

    def test_context_manager_releases(self, env):
        resource = Resource(env, capacity=1)

        def holder():
            with resource.request() as request:
                yield request
                yield env.timeout(1)

        env.run(env.process(holder()))
        assert resource.count == 0

    def test_serializes_holders(self, env):
        resource = Resource(env, capacity=1)
        spans = []

        def holder():
            with resource.request() as request:
                yield request
                start = env.now
                yield env.timeout(2)
                spans.append((start, env.now))

        for _ in range(3):
            env.process(holder())
        env.run()
        assert spans == [(0, 2), (2, 4), (4, 6)]

    def test_parallel_capacity(self, env):
        resource = Resource(env, capacity=3)
        done = []

        def holder():
            with resource.request() as request:
                yield request
                yield env.timeout(2)
            done.append(env.now)

        for _ in range(3):
            env.process(holder())
        env.run()
        assert done == [2, 2, 2]


class TestStore:
    def test_get_returns_fifo(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        first, second = store.get(), store.get()
        assert first.value == "a"
        assert second.value == "b"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        received = []

        def consumer():
            item = yield store.get()
            received.append((env.now, item))

        env.process(consumer())

        def producer():
            yield env.timeout(3)
            store.put("late")

        env.process(producer())
        env.run()
        assert received == [(3, "late")]

    def test_len_reflects_buffered_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        store.get()
        assert len(store) == 1

    def test_blocked_getters_fifo(self, env):
        store = Store(env)
        order = []

        def consumer(name):
            item = yield store.get()
            order.append((name, item))

        env.process(consumer("first"))
        env.process(consumer("second"))

        def producer():
            yield env.timeout(1)
            store.put("x")
            store.put("y")

        env.process(producer())
        env.run()
        assert order == [("first", "x"), ("second", "y")]
