"""Unit tests for the simulation environment."""

import pytest

from repro.sim import Environment
from repro.sim.environment import EmptySchedule
from repro.sim.events import SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_run_until_time_advances_clock(self, env):
        env.run(until=10)
        assert env.now == 10

    def test_run_until_before_now_rejected(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_events_beyond_until_are_not_processed(self, env):
        fired = []
        event = env.timeout(20)
        event.callbacks.append(lambda e: fired.append(e))
        env.run(until=10)
        assert not fired
        env.run(until=30)
        assert fired


class TestRunModes:
    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(3)
            return "done"

        assert env.run(env.process(proc())) == "done"

    def test_run_until_failed_event_raises(self, env):
        def proc():
            yield env.timeout(1)
            raise ValueError("kaput")

        with pytest.raises(ValueError, match="kaput"):
            env.run(env.process(proc()))

    def test_run_until_never_triggering_event_raises(self, env):
        with pytest.raises(SimulationError):
            env.run(env.event())

    def test_run_drains_all_events(self, env):
        env.timeout(1)
        env.timeout(2)
        env.run()
        assert env.peek() == float("inf")


class TestStep:
    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_returns_next_time(self, env):
        env.timeout(7)
        assert env.peek() == 7

    def test_same_time_events_fifo(self, env):
        order = []
        for tag in ("a", "b", "c"):
            event = env.timeout(1, value=tag)
            event.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == ["a", "b", "c"]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace():
            env = Environment()
            log = []

            def worker(name, delay):
                for _ in range(3):
                    yield env.timeout(delay)
                    log.append((env.now, name))

            env.process(worker("x", 1.5))
            env.process(worker("y", 1.0))
            env.run()
            return log

        assert trace() == trace()


class TestCrashPropagation:
    def test_unawaited_process_exception_surfaces_in_run(self, env):
        def bad():
            yield env.timeout(1)
            raise RuntimeError("unhandled")

        env.process(bad())
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()
