"""The hierarchical timer wheel: exact equivalence with the heap kernel.

The wheel's contract is strict: it must yield entries in exactly the
``(when, seq)`` order the heap scheduler does — not merely "sorted by
time" — because the repo's determinism guarantee (byte-identical traces
per seed) rides on event order.  These tests fuzz the raw structure
against ``heapq`` and run whole seeded simulations on both kernels.
"""

import heapq
import random

import pytest

from repro.sim import (KERNELS, Environment, TimerWheel, WheelEnvironment,
                       make_environment)
from repro.sim.environment import EmptySchedule


class _Payload:
    """Stands in for an Event; must never be compared by the wheel."""

    __lt__ = None


def test_fuzz_wheel_matches_heap_order():
    rng = random.Random(20110612)
    for trial in range(50):
        wheel = TimerWheel(tick=0.01, near_slots=8, mid_buckets=4)
        heap = []
        seq = 0
        pending = 0
        now = 0.0
        for _ in range(600):
            if pending and rng.random() < 0.45:
                got = wheel.pop()
                want = heapq.heappop(heap)
                assert got == want
                now = got[0]
                pending -= 1
            else:
                seq += 1
                delay = rng.choice(
                    [0.0, 0.001, 0.004, 0.05, 0.3, 2.0, 50.0]) * rng.random()
                entry = (now + delay, seq, _Payload())
                wheel.push(entry)
                heapq.heappush(heap, entry)
                pending += 1
        while pending:
            assert wheel.pop() == heapq.heappop(heap)
            pending -= 1
        assert len(wheel) == 0 and not wheel


def test_far_future_entries_cascade_back_exactly():
    wheel = TimerWheel(tick=0.001, near_slots=4, mid_buckets=4)
    # span = 16 ticks = 0.016 s; everything beyond lands in the far heap.
    entries = [(t, i, _Payload())
               for i, t in enumerate([5.0, 0.0005, 1.0, 0.02, 0.001, 100.0])]
    for entry in entries:
        wheel.push(entry)
    assert [wheel.pop()[0] for _ in range(len(entries))] == sorted(
        e[0] for e in entries)


def test_same_instant_entries_pop_in_seq_order():
    wheel = TimerWheel(tick=0.01)
    entries = [(1.0, seq, _Payload()) for seq in (5, 1, 9, 2)]
    for entry in entries:
        wheel.push(entry)
    assert [wheel.pop()[1] for _ in range(4)] == [1, 2, 5, 9]


def test_peek_then_earlier_push_goes_to_current_heap():
    wheel = TimerWheel(tick=0.01)
    wheel.push((1.0, 1, _Payload()))
    # peek advances the cursor to slot 100 before anything pops...
    assert wheel.peek_when() == 1.0
    # ...so a new same-slot (or earlier-slot) push must still pop first
    # when its (when, seq) orders first.
    wheel.push((0.9995, 2, _Payload()))
    assert wheel.pop()[0] == 0.9995
    assert wheel.pop()[0] == 1.0


def test_pop_empty_raises_indexerror_like_heappop():
    wheel = TimerWheel()
    with pytest.raises(IndexError):
        wheel.pop()
    assert wheel.peek_when() == float("inf")


def test_clear_empties_and_wheel_remains_usable():
    wheel = TimerWheel(tick=0.01)
    for seq, when in enumerate([0.5, 3.0, 50.0]):
        wheel.push((when, seq, _Payload()))
    wheel.clear()
    assert len(wheel) == 0
    wheel.push((7.0, 10, _Payload()))
    assert wheel.pop()[0] == 7.0


def test_constructor_validation():
    with pytest.raises(ValueError):
        TimerWheel(tick=0.0)
    with pytest.raises(ValueError):
        TimerWheel(near_slots=1)
    with pytest.raises(ValueError):
        TimerWheel(origin=-1.0)
    with pytest.raises(ValueError):
        WheelEnvironment(initial_time=-0.5)


def test_make_environment_registry():
    assert KERNELS == ("heap", "wheel")
    assert type(make_environment("heap")) is Environment
    assert type(make_environment("wheel")) is WheelEnvironment
    with pytest.raises(ValueError):
        make_environment("bogus")


def _churn(envcls, seed):
    """Seeded interacting processes; returns the observable sequence."""
    env = envcls()
    rng = random.Random(seed)
    log = []

    def worker(tag):
        for step in range(30):
            yield env.timeout(rng.random() * rng.choice([0.001, 0.1, 10.0]))
            log.append((tag, step, env.now))

    def spawner():
        for tag in range(10):
            env.process(worker(tag))
            yield env.timeout(rng.random())

    env.process(spawner())
    env.run()
    return log


@pytest.mark.parametrize("seed", [1, 7, 20110612])
def test_wheel_run_event_for_event_identical_to_heap(seed):
    assert _churn(WheelEnvironment, seed) == _churn(Environment, seed)


def test_wheel_environment_step_until_and_until_event():
    env = WheelEnvironment()
    hits = []

    def p():
        yield env.timeout(2.0)
        hits.append(env.now)
        yield env.timeout(3.0)
        hits.append(env.now)
        return "done"

    proc = env.process(p())
    env.step()  # the Process initialization event
    env.step()  # the 2.0 timeout
    assert env.now == 2.0 and hits == [2.0]
    assert env.run(until=proc) == "done"
    assert hits == [2.0, 5.0]
    with pytest.raises(EmptySchedule):
        env.step()
    # run(until=t) past the last event parks the clock at t.
    env.run(until=9.0)
    assert env.now == 9.0


def test_wheel_environment_wipe_discards_pending_work():
    env = WheelEnvironment()
    fired = []

    def p():
        yield env.timeout(1.0)
        fired.append(env.now)

    env.process(p())
    env.wipe()
    env.run()
    assert fired == []

    def q():
        yield env.timeout(0.5)
        fired.append(env.now)

    env.process(q())
    env.run()
    assert fired == [0.5]
