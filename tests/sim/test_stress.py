"""Stress and property tests for the simulation kernel."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource


class TestSchedulingProperties:
    @settings(max_examples=30, deadline=None)
    @given(delays=st.lists(st.floats(min_value=0, max_value=1000),
                           min_size=1, max_size=50))
    def test_events_fire_in_time_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            event = env.timeout(delay, value=delay)
            event.callbacks.append(lambda e: fired.append((env.now, e.value)))
        env.run()
        times = [when for when, _ in fired]
        assert times == sorted(times)
        assert sorted(value for _, value in fired) == sorted(delays)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_interleaved_processes_are_deterministic(self, seed):
        def run_once():
            env = Environment()
            rng = random.Random(seed)
            log = []

            def worker(name):
                for _ in range(5):
                    yield env.timeout(rng.random())
                    log.append((round(env.now, 9), name))

            for name in ("a", "b", "c"):
                env.process(worker(name))
            env.run()
            return log

        assert run_once() == run_once()

    def test_many_processes_complete(self):
        env = Environment()
        done = []

        def worker(i):
            yield env.timeout(i % 7 * 0.001)
            done.append(i)

        procs = [env.process(worker(i)) for i in range(2_000)]
        env.run(env.all_of(procs))
        assert len(done) == 2_000


class TestResourceFairness:
    @settings(max_examples=20, deadline=None)
    @given(capacity=st.integers(min_value=1, max_value=8),
           nworkers=st.integers(min_value=1, max_value=30))
    def test_never_exceeds_capacity(self, capacity, nworkers):
        env = Environment()
        resource = Resource(env, capacity)
        concurrent = {"now": 0, "max": 0}

        def worker():
            with resource.request() as request:
                yield request
                concurrent["now"] += 1
                concurrent["max"] = max(concurrent["max"], concurrent["now"])
                yield env.timeout(1)
                concurrent["now"] -= 1

        procs = [env.process(worker()) for _ in range(nworkers)]
        env.run(env.all_of(procs))
        assert concurrent["max"] <= capacity
        assert concurrent["now"] == 0

    def test_fifo_grant_order(self):
        env = Environment()
        resource = Resource(env, 1)
        order = []

        def worker(i):
            # Stagger arrivals so the queue order is well-defined.
            yield env.timeout(i * 0.001)
            with resource.request() as request:
                yield request
                order.append(i)
                yield env.timeout(1)

        procs = [env.process(worker(i)) for i in range(10)]
        env.run(env.all_of(procs))
        assert order == list(range(10))
