"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt
from repro.sim.events import SimulationError


class TestLifecycle:
    def test_return_value_becomes_event_value(self, env):
        def proc():
            yield env.timeout(1)
            return 99

        assert env.run(env.process(proc())) == 99

    def test_is_alive_until_finished(self, env):
        def proc():
            yield env.timeout(5)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_waiting_on_process(self, env):
        def inner():
            yield env.timeout(2)
            return "inner-value"

        def outer():
            value = yield env.process(inner())
            return value + "!"

        assert env.run(env.process(outer())) == "inner-value!"

    def test_yield_from_subgenerator_without_events(self, env):
        def sub():
            return 5
            yield  # pragma: no cover

        def proc():
            value = yield from sub()
            yield env.timeout(1)
            return value

        assert env.run(env.process(proc())) == 5

    def test_immediate_return_process(self, env):
        def proc():
            return "now"
            yield  # pragma: no cover

        assert env.run(env.process(proc())) == "now"


class TestExceptions:
    def test_exception_propagates_to_waiter(self, env):
        def bad():
            yield env.timeout(1)
            raise KeyError("gone")

        def waiter():
            try:
                yield env.process(bad())
            except KeyError:
                return "caught"
            return "missed"

        assert env.run(env.process(waiter())) == "caught"

    def test_failed_event_raises_inside_process(self, env):
        trigger = env.event()

        def proc():
            try:
                yield trigger
            except RuntimeError:
                return "handled"

        process = env.process(proc())
        trigger.fail(RuntimeError("x"))
        assert env.run(process) == "handled"

    def test_yielding_non_event_raises_in_process(self, env):
        def proc():
            try:
                yield "not an event"
            except SimulationError:
                return "rejected"

        assert env.run(env.process(proc())) == "rejected"


class TestInterrupt:
    def test_interrupt_raises_with_cause(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return interrupt.cause

        process = env.process(sleeper())

        def interrupter():
            yield env.timeout(1)
            process.interrupt("wake up")

        env.process(interrupter())
        assert env.run(process) == "wake up"
        assert env.now == 1

    def test_interrupting_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1)

        process = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupted_process_can_rewait(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt:
                yield env.timeout(2)
                return env.now

        process = env.process(sleeper())

        def interrupter():
            yield env.timeout(1)
            process.interrupt()

        env.process(interrupter())
        assert env.run(process) == 3
