"""Unit tests for the event primitives."""

import pytest

from repro.sim.events import SimulationError


class TestEvent:
    def test_starts_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_while_pending(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_succeed_sets_value(self, env):
        event = env.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_default_value_is_none(self, env):
        assert env.event().succeed().value is None

    def test_double_succeed_rejected(self, env):
        event = env.event().succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_after_succeed_rejected(self, env):
        event = env.event().succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("boom"))

    def test_fail_stores_exception(self, env):
        exc = RuntimeError("boom")
        event = env.event().fail(exc)
        assert event.triggered
        assert not event.ok
        assert event.value is exc

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_processed_after_run(self, env):
        event = env.event().succeed()
        env.run()
        assert event.processed

    def test_callbacks_receive_event(self, env):
        seen = []
        event = env.event()
        event.callbacks.append(seen.append)
        event.succeed()
        env.run()
        assert seen == [event]


class TestTimeout:
    def test_fires_after_delay(self, env):
        env.timeout(5)
        env.run()
        assert env.now == 5

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_carries_value(self, env):
        timeout = env.timeout(1, value="hello")
        env.run()
        assert timeout.value == "hello"

    def test_zero_delay_allowed(self, env):
        env.timeout(0)
        env.run()
        assert env.now == 0

    def test_is_immediately_triggered(self, env):
        assert env.timeout(3).triggered


class TestAllOf:
    def test_waits_for_all(self, env):
        timeouts = [env.timeout(1), env.timeout(3), env.timeout(2)]
        combined = env.all_of(timeouts)
        env.run(combined)
        assert env.now == 3

    def test_collects_values(self, env):
        first = env.timeout(1, value="a")
        second = env.timeout(2, value="b")
        combined = env.all_of([first, second])
        values = env.run(combined)
        assert values == {first: "a", second: "b"}

    def test_empty_is_immediate(self, env):
        assert env.all_of([]).triggered

    def test_propagates_failure(self, env):
        bad = env.event()
        combined = env.all_of([env.timeout(1), bad])
        bad.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run(combined)

    def test_already_processed_children(self, env):
        done = env.event().succeed("x")
        env.run()
        combined = env.all_of([done])
        env.run(combined)
        assert combined.ok


class TestAnyOf:
    def test_fires_on_first(self, env):
        combined = env.any_of([env.timeout(5), env.timeout(1)])
        env.run(combined)
        assert env.now == 1

    def test_collects_first_value(self, env):
        fast = env.timeout(1, value="fast")
        combined = env.any_of([fast, env.timeout(9, value="slow")])
        values = env.run(combined)
        assert values[fast] == "fast"

    def test_empty_is_immediate(self, env):
        assert env.any_of([]).triggered
