"""Output formats: the text report and the versioned JSON schema."""

import json
import textwrap

from repro.statics import check_source, format_findings_json, format_findings_text
from repro.statics.engine import JSON_SCHEMA_VERSION

DIRTY = textwrap.dedent("""
    def f(tracer):
        tracer.record("x")
    """)
PATH = "src/repro/engine/x.py"


class TestTextFormat:
    def test_one_line_per_finding_plus_summary(self):
        result = check_source(DIRTY, path=PATH)
        text = format_findings_text(result)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith(f"{PATH}:3:")
        assert "RPL001" in lines[0]
        assert lines[1] == "1 finding in 1 files (0 suppressed)"

    def test_clean_summary(self):
        result = check_source("x = 1\n", path=PATH)
        assert format_findings_text(result) == (
            "0 findings in 1 files (0 suppressed)")


class TestJsonFormat:
    def test_schema(self):
        result = check_source(DIRTY, path=PATH)
        doc = json.loads(format_findings_json(result))
        assert set(doc) == {"version", "findings", "errors", "summary"}
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["errors"] == []
        assert set(doc["summary"]) == {"files", "findings", "suppressed",
                                       "by_code"}
        assert doc["summary"]["files"] == 1
        assert doc["summary"]["findings"] == 1
        assert doc["summary"]["by_code"] == {"RPL001": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {"code", "name", "message", "path", "line",
                                "col"}
        assert finding["code"] == "RPL001"
        assert finding["path"] == PATH
        assert isinstance(finding["line"], int)
        assert isinstance(finding["col"], int)

    def test_round_trips_through_json(self):
        result = check_source(DIRTY, path=PATH)
        doc = json.loads(format_findings_json(result))
        assert json.loads(json.dumps(doc)) == doc

    def test_parse_error_reported(self):
        result = check_source("def f(:\n", path=PATH)
        assert result.exit_code == 2
        doc = json.loads(format_findings_json(result))
        assert doc["findings"] == []
        assert len(doc["errors"]) == 1
        assert "syntax error" in doc["errors"][0]
