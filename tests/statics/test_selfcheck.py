"""The linter applied to this repository: the committed tree is clean.

This is the enforcement test for DESIGN.md §9 — every RPL invariant
holds over ``src/``.  If a change reintroduces an unguarded tracer
call, an un-slotted hot-path class, or a naked device await, this test
(and CI) fails with the exact file:line.
"""

import subprocess
import sys
from pathlib import Path

from repro.statics import check_paths, load_config
from repro.statics.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


class TestRepositoryIsClean:
    def test_src_has_no_findings(self):
        config = load_config(REPO_ROOT)
        result = check_paths([str(SRC)], config)
        report = "\n".join(f.format() for f in result.findings)
        assert result.errors == []
        assert result.findings == [], f"lint findings:\n{report}"
        assert result.files > 50  # the walk actually found the tree

    def test_cli_exits_zero_on_src(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.statics", str(SRC)],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(SRC)})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
                     "RPL006"):
            assert code in out

    def test_unknown_code_is_usage_error(self, capsys):
        assert main(["--select", "RPL999", str(SRC)]) == 2
        assert "unknown rule codes" in capsys.readouterr().err

    def test_findings_exit_one(self, tmp_path, capsys, monkeypatch):
        bad = tmp_path / "src" / "repro" / "engine" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('def f(tracer):\n    tracer.record("x")\n')
        monkeypatch.chdir(tmp_path)
        assert main([str(bad)]) == 1
        assert "RPL001" in capsys.readouterr().out

    def test_select_narrows_rules(self, tmp_path, capsys, monkeypatch):
        bad = tmp_path / "src" / "repro" / "engine" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('def f(tracer):\n    tracer.record("x")\n')
        monkeypatch.chdir(tmp_path)
        assert main(["--select", "RPL005", str(bad)]) == 0

    def test_json_format(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main(["--format", "json", "clean.py"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("{")
