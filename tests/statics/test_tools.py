"""Smoke tests for the external tools (ruff, mypy) configured in
pyproject.toml.

The tools are optional-dependency extras (``pip install -e .[lint]``)
and are not vendored; these tests skip when a tool is absent so the
suite stays green in minimal environments while CI (which installs the
extras) enforces both.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_tool(*argv):
    return subprocess.run(argv, capture_output=True, text=True,
                          cwd=REPO_ROOT)


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = run_tool("ruff", "check", "src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_wave():
    proc = run_tool(
        sys.executable, "-m", "mypy",
        "src/repro/sim", "src/repro/core/heaps.py", "src/repro/faults",
        "src/repro/harness/sweep.py", "src/repro/statics")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_pyproject_declares_tool_config():
    """The config blocks exist even when the tools are absent."""
    text = (REPO_ROOT / "pyproject.toml").read_text()
    assert "[tool.repro.lint]" in text
    assert "[tool.ruff" in text
    assert "[tool.mypy]" in text
