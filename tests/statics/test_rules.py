"""Per-rule fixture snippets: each rule has a positive (flagged),
negative (clean), and suppressed (noqa) case.

The snippets are linted in memory with :func:`check_source` under a
path inside the rule's scope, so the path-gating logic is exercised
too.  The snippets intentionally violate the invariants — they are the
test fixtures, not repo code (tests/statics is excluded in the ruff
per-file-ignores for the same reason).
"""

import textwrap

from repro.statics import check_source


def lint(source, path):
    return check_source(textwrap.dedent(source), path=path)


def codes(result):
    return [f.code for f in result.findings]


class TestTracerGuard:
    PATH = "src/repro/engine/buffer_pool.py"

    def test_unguarded_call_flagged(self):
        result = lint("""
            def f(tracer, page):
                tracer.record("pin", page)
            """, self.PATH)
        assert codes(result) == ["RPL001"]

    def test_guarded_call_clean(self):
        result = lint("""
            def f(tracer, page):
                if tracer.enabled:
                    tracer.record("pin", page)
            """, self.PATH)
        assert codes(result) == []

    def test_early_exit_guard_clean(self):
        result = lint("""
            def f(tracer, page):
                if not tracer.enabled:
                    return
                tracer.record("pin", page)
            """, self.PATH)
        assert codes(result) == []

    def test_out_of_scope_path_clean(self):
        result = lint("""
            def f(tracer, page):
                tracer.record("pin", page)
            """, "src/repro/statics/engine.py")
        assert codes(result) == []

    def test_suppressed(self):
        result = lint("""
            def f(tracer, page):
                tracer.record("pin", page)  # repro: noqa[RPL001]
            """, self.PATH)
        assert codes(result) == []
        assert result.suppressed == 1


class TestSlotsHotpath:
    PATH = "src/repro/sim/things.py"

    def test_unslotted_class_flagged(self):
        result = lint("""
            class Widget:
                def __init__(self):
                    self.x = 1
            """, self.PATH)
        assert codes(result) == ["RPL002"]

    def test_slotted_class_clean(self):
        result = lint("""
            class Widget:
                __slots__ = ("x",)
                def __init__(self):
                    self.x = 1
            """, self.PATH)
        assert codes(result) == []

    def test_exception_class_exempt(self):
        result = lint("""
            class WidgetError(Exception):
                pass
            """, self.PATH)
        assert codes(result) == []

    def test_unslotted_subclass_of_hotpath_base_flagged(self):
        # The subclass lives outside the hot-path roots but inherits
        # from a class inside them: an un-slotted subclass regains
        # __dict__, silently undoing the base's optimisation.
        hot = lint("""
            class Base:
                __slots__ = ()
            """, "src/repro/sim/base.py")
        assert codes(hot) == []
        # Cross-module closure needs both modules in one run.
        from repro.statics.engine import LintConfig, LintResult, ModuleInfo
        from repro.statics.engine import _run_rules
        modules = [
            ModuleInfo("src/repro/sim/base.py",
                       "class Base:\n    __slots__ = ()\n"),
            ModuleInfo("src/repro/core/sub.py",
                       "from repro.sim.base import Base\n"
                       "class Sub(Base):\n    pass\n"),
        ]
        result = LintResult()
        _run_rules(modules, LintConfig(select=("RPL002",)), result)
        assert [f.code for f in result.findings] == ["RPL002"]
        assert result.findings[0].path == "src/repro/core/sub.py"

    def test_suppressed(self):
        result = lint("""
            class Widget:  # repro: noqa[RPL002]
                def __init__(self):
                    self.x = 1
            """, self.PATH)
        assert codes(result) == []
        assert result.suppressed == 1


class TestDeterminism:
    PATH = "src/repro/sim/clocky.py"

    def test_wall_clock_flagged(self):
        result = lint("""
            import time
            def f():
                return time.time()
            """, self.PATH)
        assert codes(result) == ["RPL003"]

    def test_global_random_flagged(self):
        result = lint("""
            import random
            def f():
                return random.random()
            """, self.PATH)
        assert codes(result) == ["RPL003"]

    def test_seeded_rng_clean(self):
        result = lint("""
            import random
            def f(seed):
                return random.Random(seed).random()
            """, self.PATH)
        assert codes(result) == []

    def test_set_iteration_feeding_scheduler_flagged(self):
        result = lint("""
            def f(env, waiters):
                for w in set(waiters):
                    env.schedule(w)
            """, self.PATH)
        assert codes(result) == ["RPL003"]

    def test_list_iteration_clean(self):
        result = lint("""
            def f(env, waiters):
                for w in list(waiters):
                    env.schedule(w)
            """, self.PATH)
        assert codes(result) == []

    def test_out_of_scope_harness_clean(self):
        result = lint("""
            import time
            def f():
                return time.monotonic()
            """, "src/repro/harness/sweep.py")
        assert codes(result) == []

    def test_suppressed(self):
        result = lint("""
            import time
            def f():
                return time.time()  # repro: noqa[RPL003]
            """, self.PATH)
        assert codes(result) == []
        assert result.suppressed == 1


class TestFaultSafety:
    PATH = "src/repro/core/mymanager.py"

    def test_naked_device_await_flagged(self):
        result = lint("""
            def f(self):
                yield self.device.read(0, 1)
            """, self.PATH)
        assert codes(result) == ["RPL004"]

    def test_submit_flagged(self):
        result = lint("""
            def f(self):
                yield self.wal.device.submit(req)
            """, self.PATH)
        assert codes(result) == ["RPL004"]

    def test_try_reaching_fault_error_clean(self):
        result = lint("""
            from repro.faults import IoFault
            def f(self):
                try:
                    yield self.device.read(0, 1)
                except IoFault:
                    pass
            """, self.PATH)
        assert codes(result) == []

    def test_retry_helper_clean(self):
        result = lint("""
            def _ssd_io(self, submit):
                yield self.device.read(0, 1)
            """, self.PATH)
        assert codes(result) == []

    def test_lambda_thunk_clean(self):
        # The canonical call shape: the raw submit is wrapped in a
        # thunk handed to the retry helper.
        result = lint("""
            def f(self):
                ok = yield from self._ssd_io(
                    lambda: self.device.write(0, 1))
            """, self.PATH)
        assert codes(result) == []

    def test_suppressed(self):
        result = lint("""
            def f(self):
                yield self.device.read(0, 1)  # repro: noqa[RPL004]
            """, self.PATH)
        assert codes(result) == []
        assert result.suppressed == 1


class TestNoSwallow:
    PATH = "src/repro/anywhere.py"

    def test_bare_except_flagged(self):
        result = lint("""
            def f():
                try:
                    g()
                except:
                    pass
            """, self.PATH)
        assert codes(result) == ["RPL005"]

    def test_swallowing_broad_except_flagged(self):
        result = lint("""
            def f():
                try:
                    g()
                except Exception:
                    pass
            """, self.PATH)
        assert codes(result) == ["RPL005"]

    def test_broad_except_with_handling_clean(self):
        result = lint("""
            def f(log):
                try:
                    g()
                except Exception as exc:
                    log.warning("g failed: %s", exc)
            """, self.PATH)
        assert codes(result) == []

    def test_narrow_except_pass_clean(self):
        result = lint("""
            def f(users, req):
                try:
                    users.remove(req)
                except ValueError:
                    pass
            """, self.PATH)
        assert codes(result) == []

    def test_suppressed(self):
        result = lint("""
            def f():
                try:
                    g()
                except Exception:  # repro: noqa[RPL005]
                    pass
            """, self.PATH)
        assert codes(result) == []
        assert result.suppressed == 1


class TestTelemetryLabels:
    PATH = "src/repro/telemetry/thing.py"

    def test_dynamic_metric_name_flagged(self):
        result = lint("""
            def f(registry, name):
                return registry.counter("prefix_" + name, "help")
            """, self.PATH)
        assert codes(result) == ["RPL006"]

    def test_literal_metric_name_clean(self):
        result = lint("""
            def f(registry):
                return registry.counter("faults_total", "help",
                                        labelnames=("device", "kind"))
            """, self.PATH)
        assert codes(result) == []

    def test_dynamic_labelnames_flagged(self):
        result = lint("""
            def f(registry, names):
                return registry.counter("faults_total", "help",
                                        labelnames=names)
            """, self.PATH)
        assert codes(result) == ["RPL006"]

    def test_suppressed(self):
        result = lint("""
            def f(registry, name):
                return registry.counter("p_" + name, "h")  # repro: noqa[RPL006]
            """, self.PATH)
        assert codes(result) == []
        assert result.suppressed == 1


class TestSuppressionForms:
    PATH = "src/repro/engine/x.py"

    def test_blanket_noqa_suppresses_any_code(self):
        result = lint("""
            def f(tracer):
                tracer.record("x")  # repro: noqa
            """, self.PATH)
        assert codes(result) == []
        assert result.suppressed == 1

    def test_mismatched_code_does_not_suppress(self):
        result = lint("""
            def f(tracer):
                tracer.record("x")  # repro: noqa[RPL005]
            """, self.PATH)
        assert codes(result) == ["RPL001"]
        assert result.suppressed == 0
