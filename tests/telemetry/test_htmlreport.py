"""HTML report rendering."""

import pytest

from repro.telemetry.analysis import DesignAnalysis, TxnRecord
from repro.telemetry.htmlreport import render_report, write_report


def make_analysis(design: str, slow: float = 0.010) -> DesignAnalysis:
    analysis = DesignAnalysis(path=f"{design}.jsonl", design=design,
                              benchmark="tpcc", scale=100, duration=10.0)
    analysis.txns = [
        TxnRecord(1, "new_order", 0.0, slow,
                  components={"disk_read": slow * 0.6,
                              "wal_flush": slow * 0.4}),
        TxnRecord(2, "payment", 0.5, 0.002,
                  components={"wal_flush": 0.002}),
    ]
    analysis.series = {
        "hit_ratio": [(1.0, 0.5), (2.0, 0.8)],
        "ssd_dirty_fraction": [(1.0, 0.1), (2.0, 0.3)],
        "ssd_dirty": [(1.0, 5.0), (2.0, 9.0)],
    }
    analysis.background_io = {"cleaner": {"busy": 0.004, "ios": 1.0}}
    return analysis


@pytest.fixture
def analyses():
    return [make_analysis("CW"), make_analysis("LC", slow=0.004)]


class TestRenderReport:
    def test_self_contained_document(self, analyses):
        html_text = render_report(analyses, "oltp")
        assert html_text.startswith("<!doctype html>")
        assert "<script src" not in html_text
        assert "http://" not in html_text and "https://" not in html_text

    def test_three_time_series_charts(self, analyses):
        html_text = render_report(analyses, "oltp")
        assert html_text.count("<svg") >= 3
        assert html_text.count("<polyline") >= 6  # 2 designs x 3 charts

    def test_legend_names_both_designs(self, analyses):
        html_text = render_report(analyses, "oltp")
        assert 'class="legend"' in html_text
        assert "CW" in html_text and "LC" in html_text

    def test_single_design_needs_no_legend(self, analyses):
        html_text = render_report(analyses[:1], "oltp")
        assert 'class="legend"' not in html_text

    def test_attribution_and_latency_tables(self, analyses):
        html_text = render_report(analyses, "oltp")
        assert "tail-latency attribution" in html_text
        assert "Transaction latency (ms)" in html_text
        assert "disk_read" in html_text

    def test_dark_mode_palette_present(self, analyses):
        html_text = render_report(analyses, "oltp")
        assert "prefers-color-scheme: dark" in html_text
        assert "--s1" in html_text

    def test_truncation_warning_shown(self, analyses):
        analyses[0].dropped = 1234
        html_text = render_report(analyses, "oltp")
        assert "truncated" in html_text
        assert "1,234" in html_text

    def test_design_names_escaped(self):
        analysis = make_analysis("<script>")
        html_text = render_report([analysis], "oltp")
        assert "<script>" not in html_text
        assert "&lt;script&gt;" in html_text

    def test_write_report(self, analyses, tmp_path):
        path = tmp_path / "report.html"
        write_report(str(path), analyses, "oltp")
        assert path.read_text().startswith("<!doctype html>")
