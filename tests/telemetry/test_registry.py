"""Registry semantics: instruments, labeled children, idempotency."""

import math

import pytest

from repro.harness.metrics import LatencyTracker
from repro.telemetry import (
    MetricRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
)


class TestCounter:
    def test_starts_at_zero_and_counts(self):
        counter = MetricRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_callback_tracks_source(self):
        state = {"n": 0}
        gauge = MetricRegistry().gauge("g")
        gauge.set_function(lambda: state["n"])
        state["n"] = 42
        assert gauge.value == 42


class TestLabels:
    def test_same_labels_same_child(self):
        family = MetricRegistry().counter("io", labelnames=("device", "kind"))
        a = family.labels(device="ssd", kind="random_read")
        b = family.labels(device="ssd", kind="random_read")
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_distinct_labels_distinct_children(self):
        family = MetricRegistry().counter("io", labelnames=("device",))
        family.labels(device="ssd").inc()
        assert family.labels(device="hdd").value == 0

    def test_wrong_labelnames_rejected(self):
        family = MetricRegistry().counter("io", labelnames=("device",))
        with pytest.raises(ValueError):
            family.labels(disk="ssd")

    def test_child_knows_its_labels(self):
        family = MetricRegistry().gauge("g", labelnames=("device",))
        child = family.labels(device="ssd")
        assert child.labels == {"device": "ssd"}


class TestRegistration:
    def test_same_name_returns_same_metric(self):
        registry = MetricRegistry()
        assert registry.counter("c") is registry.counter("c")
        family = registry.counter("f", labelnames=("a",))
        assert registry.counter("f", labelnames=("a",)) is family

    def test_kind_mismatch_raises(self):
        registry = MetricRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_labelname_mismatch_raises(self):
        registry = MetricRegistry()
        registry.counter("m", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("m", labelnames=("b",))
        with pytest.raises(ValueError):
            registry.counter("m")

    def test_get_and_snapshot(self):
        registry = MetricRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(1.0)
        family = registry.counter("f", labelnames=("x",))
        family.labels(x="1").inc()
        rows = registry.snapshot()
        by_name = {}
        for row in rows:
            by_name.setdefault(row["name"], []).append(row)
        assert by_name["c"][0]["value"] == 2
        assert by_name["h"][0]["value"]["count"] == 1
        assert by_name["f"][0]["labels"] == {"x": "1"}
        assert registry.get("c").value == 2
        assert registry.get("nope") is None


class TestHistogram:
    def test_percentiles_match_latency_tracker(self):
        """The two percentile implementations must agree exactly."""
        histogram = MetricRegistry().histogram("h")
        tracker = LatencyTracker()
        values = [((i * 7919) % 100) / 9.7 for i in range(500)]
        for value in values:
            histogram.observe(value)
            tracker.record("t", value)
        for q in (0, 10, 50, 90, 95, 99, 100):
            assert histogram.percentile(q) == tracker.percentile(q)
        assert histogram.mean() == pytest.approx(tracker.mean())

    def test_cache_invalidated_on_observe(self):
        histogram = MetricRegistry().histogram("h")
        histogram.observe(1.0)
        assert histogram.percentile(100) == 1.0
        histogram.observe(9.0)
        assert histogram.percentile(100) == 9.0
        assert histogram.count == 2
        assert histogram.sum == 10.0

    def test_empty_is_nan(self):
        histogram = MetricRegistry().histogram("h")
        assert math.isnan(histogram.percentile(50))
        assert math.isnan(histogram.mean())

    def test_summary_keys(self):
        histogram = MetricRegistry().histogram("h")
        histogram.observe(2.0)
        assert set(histogram.summary()) == {"count", "mean", "p50", "p95",
                                            "p99"}


class TestNullRegistry:
    def test_factories_return_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_COUNTER
        assert NULL_REGISTRY.counter("b") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("g") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("h") is NULL_HISTOGRAM

    def test_labels_return_self_without_allocation(self):
        assert NULL_COUNTER.labels(device="ssd", kind="x") is NULL_COUNTER
        assert NULL_GAUGE.labels(anything="y") is NULL_GAUGE
        assert NULL_HISTOGRAM.labels(z="1") is NULL_HISTOGRAM

    def test_mutators_record_nothing(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5)
        NULL_GAUGE.set_function(lambda: 9)
        NULL_HISTOGRAM.observe(3.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert math.isnan(NULL_HISTOGRAM.percentile(50))
        assert NULL_REGISTRY.snapshot() == []
