"""The no-trace path must be truly zero-cost.

Every tracer call site in the engine is guarded by
``if tracer.enabled:`` so that a disabled run neither calls the tracer
nor builds the per-event ``args`` dicts.  The counting double below
fails the test on *any* call reaching a disabled tracer — a regression
here silently taxes every untraced simulation.
"""

from repro.harness.experiments import SCALE_PROFILES, run_oltp_experiment
from repro.telemetry import NULL_REGISTRY


class CountingNullTracer:
    """Duck-typed disabled tracer that records every call it receives."""

    enabled = False
    events = ()
    dropped = 0
    now = 0.0

    def __init__(self):
        self.calls = []

    def set_clock(self, clock):
        pass

    def instant(self, name, cat="event", track="main", args=None, ctx=None):
        self.calls.append(("instant", name))

    def complete(self, name, start, end, cat="span", track="main",
                 args=None, ctx=None):
        self.calls.append(("complete", name))

    def span(self, name, cat="span", track="main", args=None, ctx=None):
        self.calls.append(("span", name))
        raise AssertionError("span() called on a disabled tracer")

    def counter(self, name, values, track="counters"):
        self.calls.append(("counter", name))


class CountingNullTelemetry:
    """Telemetry double: disabled, but the tracer tattles on callers."""

    enabled = False
    registry = NULL_REGISTRY

    def __init__(self):
        self.tracer = CountingNullTracer()

    def set_clock(self, clock):
        pass


def test_untraced_run_never_calls_the_tracer():
    telemetry = CountingNullTelemetry()
    result = run_oltp_experiment(
        "tpcc", 20, "LC", duration=4.0, profile=SCALE_PROFILES["tiny"],
        nworkers=8, checkpoint_interval=1.0, telemetry=telemetry)
    # The run did real work (transactions committed, pages cleaned)...
    assert result.total_metric_txns > 0
    assert result.system.bp.stats.misses > 0
    # ...without a single tracer call: every call site honoured
    # `tracer.enabled` and skipped both the call and its args dict.
    assert telemetry.tracer.calls == []


def test_untraced_tac_and_faultless_paths_silent():
    telemetry = CountingNullTelemetry()
    run_oltp_experiment(
        "tpce", 2, "TAC", duration=4.0, profile=SCALE_PROFILES["tiny"],
        nworkers=8, telemetry=telemetry)
    assert telemetry.tracer.calls == []
