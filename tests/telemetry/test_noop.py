"""Disabled-mode guarantees: shared singletons, nothing recorded, and a
near-zero overhead smoke test."""

import time

from repro.telemetry import (
    NULL_REGISTRY,
    NULL_TELEMETRY,
    NULL_TRACER,
    NullTelemetry,
    Telemetry,
)


class TestNullTelemetryWiring:
    def test_facade_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.registry is NULL_REGISTRY
        assert NULL_TELEMETRY.tracer is NULL_TRACER
        NULL_TELEMETRY.set_clock(lambda: 1.0)  # no-op, no error

    def test_null_telemetry_instances_share_parts(self):
        other = NullTelemetry()
        assert other.registry is NULL_REGISTRY
        assert other.tracer is NULL_TRACER

    def test_enabled_facade_is_live(self):
        telemetry = Telemetry()
        assert telemetry.enabled is True
        assert telemetry.registry is not NULL_REGISTRY
        assert telemetry.tracer is not NULL_TRACER


class TestNullTracer:
    def test_span_is_one_shared_object(self):
        a = NULL_TRACER.span("a", cat="x", track="y", args=None)
        b = NULL_TRACER.span("b")
        assert a is b

    def test_shared_span_is_reentrant(self):
        with NULL_TRACER.span("outer") as outer:
            with NULL_TRACER.span("inner") as inner:
                inner.set(k=1)
            assert outer is inner
        assert NULL_TRACER.events == ()

    def test_recording_methods_store_nothing(self):
        NULL_TRACER.instant("i")
        NULL_TRACER.complete("c", 0.0, 1.0)
        NULL_TRACER.counter("n", {"v": 1.0})
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.dropped == 0

    def test_enabled_flag_gates_arg_building(self):
        """Call sites use ``tracer.enabled`` to skip building args dicts;
        the flag must be a plain falsy attribute."""
        assert not NULL_TRACER.enabled


class TestOverheadSmoke:
    def test_noop_instrumentation_is_cheap(self):
        """A null-telemetry hot loop should cost roughly what the bare
        loop costs.  The bound is deliberately generous (5x): this guards
        against accidental per-call allocation (building args dicts,
        creating span objects), not micro-variance."""
        counter = NULL_REGISTRY.counter("c", labelnames=("kind",))
        tracer = NULL_TRACER
        n = 50_000

        def bare():
            total = 0
            for i in range(n):
                total += i
            return total

        def instrumented():
            total = 0
            for i in range(n):
                total += i
                counter.labels(kind="x").inc()
                if tracer.enabled:  # the call-site gating idiom
                    tracer.instant("e", args={"i": i})
            return total

        def timed(fn):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        bare_time = timed(bare)
        instrumented_time = timed(instrumented)
        assert instrumented_time < bare_time * 5 + 0.05
