"""Trace-context attribution: TraceContext and its merge into events."""

import pytest

from repro.telemetry import (
    ADMISSION_CTX,
    CHECKPOINT_CTX,
    CLEANER_CTX,
    EVICTION_CTX,
    RECOVERY_CTX,
    TraceContext,
    Tracer,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestTraceContext:
    def test_txn_context_args(self):
        ctx = TraceContext.for_txn(42, "new_order")
        assert ctx.to_args() == {"txn": 42, "txn_type": "new_order"}
        assert not ctx.is_background

    def test_background_context_args(self):
        ctx = TraceContext.background("cleaner")
        assert ctx.to_args() == {"origin": "cleaner"}
        assert ctx.is_background

    def test_singletons_cover_the_background_machinery(self):
        origins = {ctx.to_args()["origin"] for ctx in
                   (EVICTION_CTX, CLEANER_CTX, CHECKPOINT_CTX,
                    ADMISSION_CTX, RECOVERY_CTX)}
        assert origins == {"eviction", "cleaner", "checkpoint",
                           "admission", "recovery"}


class TestContextMerging:
    def test_complete_merges_txn_fields(self, tracer):
        ctx = TraceContext.for_txn(7, "payment")
        tracer.complete("wal_wait", 0.0, 1.0, "wal", "wal", ctx=ctx)
        (event,) = tracer.events
        assert event.args["txn"] == 7
        assert event.args["txn_type"] == "payment"

    def test_instant_merges_and_keeps_own_args(self, tracer):
        tracer.instant("admit", args={"page": 3}, ctx=ADMISSION_CTX)
        (event,) = tracer.events
        assert event.args == {"page": 3, "origin": "admission"}

    def test_span_carries_context(self, tracer, clock):
        ctx = TraceContext.for_txn(1, "q6")
        with tracer.span("bp_miss", cat="bp", ctx=ctx):
            clock.t = 2.0
        (event,) = tracer.events
        assert event.args["txn"] == 1
        assert event.dur == 2.0

    def test_none_context_leaves_args_untouched(self, tracer):
        tracer.complete("io", 0.0, 1.0, args={"k": 1}, ctx=None)
        tracer.complete("io2", 0.0, 1.0, ctx=None)
        first, second = tracer.events
        assert first.args == {"k": 1}
        assert second.args is None

    def test_caller_args_not_mutated(self, tracer):
        args = {"page": 9}
        tracer.complete("io", 0.0, 1.0, args=args, ctx=EVICTION_CTX)
        assert args == {"page": 9}
