"""End-to-end telemetry over a real (tiny) LC run.

One short run is shared by the whole module; the assertions check that
the instrumented hot paths actually fire, that registry counters agree
with the engine's own statistics, and that a telemetry-free run stays
dark.
"""

import json

import pytest

from repro.harness.experiments import SCALE_PROFILES, run_oltp_experiment
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def traced_run():
    telemetry = Telemetry()
    result = run_oltp_experiment(
        "tpcc", 100, "LC", duration=5.0,
        profile=SCALE_PROFILES["tiny"], nworkers=4,
        dirty_threshold=0.01, telemetry=telemetry)
    return telemetry, result


class TestEventCoverage:
    def test_all_component_categories_present(self, traced_run):
        telemetry, _ = traced_run
        cats = {event.cat for event in telemetry.tracer.events}
        assert {"bp", "ssd", "cleaner", "io", "counter"} <= cats

    def test_tracks_cover_the_engine(self, traced_run):
        telemetry, _ = traced_run
        tracks = {event.track for event in telemetry.tracer.events}
        assert "cleaner" in tracks
        assert "ssd_manager" in tracks
        assert "sampler" in tracks
        assert any(track.startswith("device:") for track in tracks)

    def test_events_use_virtual_time(self, traced_run):
        telemetry, result = traced_run
        assert all(0.0 <= event.ts <= result.system.env.now + 1e-9
                   for event in telemetry.tracer.events)

    def test_chrome_export_is_valid_json(self, traced_run, tmp_path):
        telemetry, _ = traced_run
        path = tmp_path / "trace.json"
        telemetry.tracer.write_chrome(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestMetricsAgreeWithStats:
    def test_buffer_pool_counters(self, traced_run):
        telemetry, result = traced_run
        registry = telemetry.registry
        stats = result.system.bp.stats
        requests = registry.get("bp_requests_total")
        assert requests.labels(result="hit").value == stats.hits
        assert requests.labels(result="ssd_hit").value == stats.ssd_hits
        evictions = registry.get("bp_evictions_total")
        assert evictions.labels(kind="clean").value == stats.evictions_clean
        assert evictions.labels(kind="dirty").value == stats.evictions_dirty

    def test_ssd_manager_counters(self, traced_run):
        telemetry, result = traced_run
        registry = telemetry.registry
        stats = result.system.ssd_manager.stats
        assert registry.get("ssd_mgr_writes_total").value == stats.writes
        assert registry.get("ssd_mgr_reads_total").value == stats.reads
        assert (registry.get("ssd_mgr_invalidations_total").value
                == stats.invalidations)

    def test_cleaner_actually_ran(self, traced_run):
        telemetry, _ = traced_run
        assert telemetry.registry.get("lc_cleaner_rounds_total").value > 0
        assert telemetry.registry.get("lc_cleaner_pages_total").value > 0

    def test_txn_latencies_match_tracker(self, traced_run):
        telemetry, result = traced_run
        family = telemetry.registry.get("txn_latency_seconds")
        total = sum(child.count for child in family.children())
        assert total == result.latencies.count()

    def test_gauges_read_live_state(self, traced_run):
        telemetry, result = traced_run
        manager = result.system.ssd_manager
        assert (telemetry.registry.get("ssd_used_frames").value
                == manager.used_frames)
        assert (telemetry.registry.get("bp_used_frames").value
                == result.system.bp.used)


class TestDisabledRunStaysDark:
    def test_no_registry_rows_without_telemetry(self):
        result = run_oltp_experiment(
            "tpcc", 100, "LC", duration=2.0,
            profile=SCALE_PROFILES["tiny"], nworkers=2)
        telemetry = result.system.telemetry
        assert telemetry.enabled is False
        assert telemetry.registry.snapshot() == []
        assert telemetry.tracer.events == ()
