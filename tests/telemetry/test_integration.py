"""End-to-end telemetry over a real (tiny) LC run.

One short run is shared by the whole module; the assertions check that
the instrumented hot paths actually fire, that registry counters agree
with the engine's own statistics, and that a telemetry-free run stays
dark.
"""

import json

import pytest

from repro.harness.experiments import SCALE_PROFILES, run_oltp_experiment
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def traced_run():
    telemetry = Telemetry()
    result = run_oltp_experiment(
        "tpcc", 100, "LC", duration=5.0,
        profile=SCALE_PROFILES["tiny"], nworkers=4,
        dirty_threshold=0.01, telemetry=telemetry)
    return telemetry, result


class TestEventCoverage:
    def test_all_component_categories_present(self, traced_run):
        telemetry, _ = traced_run
        cats = {event.cat for event in telemetry.tracer.events}
        assert {"bp", "ssd", "cleaner", "io", "counter"} <= cats

    def test_tracks_cover_the_engine(self, traced_run):
        telemetry, _ = traced_run
        tracks = {event.track for event in telemetry.tracer.events}
        assert "cleaner" in tracks
        assert "ssd_manager" in tracks
        assert "sampler" in tracks
        assert any(track.startswith("device:") for track in tracks)

    def test_events_use_virtual_time(self, traced_run):
        telemetry, result = traced_run
        assert all(0.0 <= event.ts <= result.system.env.now + 1e-9
                   for event in telemetry.tracer.events)

    def test_chrome_export_is_valid_json(self, traced_run, tmp_path):
        telemetry, _ = traced_run
        path = tmp_path / "trace.json"
        telemetry.tracer.write_chrome(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestMetricsAgreeWithStats:
    def test_buffer_pool_counters(self, traced_run):
        telemetry, result = traced_run
        registry = telemetry.registry
        stats = result.system.bp.stats
        requests = registry.get("bp_requests_total")
        assert requests.labels(result="hit").value == stats.hits
        assert requests.labels(result="ssd_hit").value == stats.ssd_hits
        evictions = registry.get("bp_evictions_total")
        assert evictions.labels(kind="clean").value == stats.evictions_clean
        assert evictions.labels(kind="dirty").value == stats.evictions_dirty

    def test_ssd_manager_counters(self, traced_run):
        telemetry, result = traced_run
        registry = telemetry.registry
        stats = result.system.ssd_manager.stats
        assert registry.get("ssd_mgr_writes_total").value == stats.writes
        assert registry.get("ssd_mgr_reads_total").value == stats.reads
        assert (registry.get("ssd_mgr_invalidations_total").value
                == stats.invalidations)

    def test_cleaner_actually_ran(self, traced_run):
        telemetry, _ = traced_run
        assert telemetry.registry.get("lc_cleaner_rounds_total").value > 0
        assert telemetry.registry.get("lc_cleaner_pages_total").value > 0

    def test_txn_latencies_match_tracker(self, traced_run):
        telemetry, result = traced_run
        family = telemetry.registry.get("txn_latency_seconds")
        total = sum(child.count for child in family.children())
        assert total == result.latencies.count()

    def test_gauges_read_live_state(self, traced_run):
        telemetry, result = traced_run
        manager = result.system.ssd_manager
        assert (telemetry.registry.get("ssd_used_frames").value
                == manager.used_frames)
        assert (telemetry.registry.get("bp_used_frames").value
                == result.system.bp.used)


class TestAttributionCoverage:
    """The tentpole acceptance check: the ctx-tagged leaf spans must
    partition each transaction's latency (sum within 5% of measured)."""

    @pytest.fixture(scope="class")
    def analysis(self, traced_run, tmp_path_factory):
        from repro.telemetry.analysis import analyze_trace
        telemetry, _ = traced_run
        path = tmp_path_factory.mktemp("analysis") / "trace.jsonl"
        telemetry.tracer.write_jsonl(str(path))
        return analyze_trace(str(path))

    def test_transactions_reconstructed(self, analysis):
        assert len(analysis.txns) > 100
        assert "new_order" in analysis.txn_types()

    def test_component_sums_match_latency_at_every_tail(self, analysis):
        for q in (50, 95, 99):
            att = analysis.attribution(q)
            assert att.count > 0
            assert att.coverage == pytest.approx(1.0, abs=0.05), (
                f"p{q}: components sum to {att.coverage:.1%} of latency")

    def test_latency_agrees_with_the_runner(self, traced_run, analysis):
        _, result = traced_run
        # The trace sees every committed transaction; the runner only
        # counts bodies that finished before cutoff, so the two agree
        # within the number of in-flight clients (plus setup txns).
        assert abs(len(analysis.txns) - result.latencies.count()) <= 64
        p99_trace = analysis.latency_summary()["p99"]
        p99_runner = result.latencies.percentile(99)
        assert p99_trace == pytest.approx(p99_runner, rel=0.25)

    def test_device_time_mostly_attributed(self, analysis):
        # Nearly every data/SSD device I/O carries a txn or a background
        # origin.  The exceptions are by design: WAL flush writes belong
        # to the group-commit flusher, and read-ahead's inner parallel
        # I/Os stay ctx-less (the outer prefetch_wait span holds the ctx
        # so overlapping device time is not double-attributed).
        from repro.telemetry.analysis import load_events
        events = load_events(analysis.path)
        device = [e for e in events
                  if e.get("track", "").startswith("device:")
                  and e.get("track") != "device:log-disk"]
        attributed = [e for e in device
                      if {"txn", "origin"} & set(e.get("args") or {})]
        assert device
        assert len(attributed) >= 0.9 * len(device)

    def test_cleaner_interference_measured_for_lc(self, analysis):
        assert "cleaner" in analysis.background_io
        assert 0.0 < analysis.interference_share("cleaner") < 1.0


class TestDisabledRunStaysDark:
    def test_no_registry_rows_without_telemetry(self):
        result = run_oltp_experiment(
            "tpcc", 100, "LC", duration=2.0,
            profile=SCALE_PROFILES["tiny"], nworkers=2)
        telemetry = result.system.telemetry
        assert telemetry.enabled is False
        assert telemetry.registry.snapshot() == []
        assert telemetry.tracer.events == ()
