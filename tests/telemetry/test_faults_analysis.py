"""Fault events in trace analysis: counting and the analyze table."""

from repro.telemetry import Tracer
from repro.telemetry.analysis import (
    analyze_trace,
    format_faults_table,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def faulted_trace(tmp_path, name="trace.jsonl"):
    tracer = Tracer(clock=FakeClock())
    tracer.instant("run_meta", "meta", "meta",
                   {"design": "LC", "benchmark": "tpcc", "scale": 100,
                    "duration": 10.0})
    for _ in range(3):
        tracer.instant("fault_transient", "fault", "faults",
                       {"device": "ssd"})
    tracer.instant("io_retry", "fault", "faults",
                   {"device": "ssd", "attempt": 1})
    tracer.instant("ssd_detached", "fault", "faults",
                   {"reason": "ssd_failure", "dropped_frames": 9,
                    "redo_pages": 2})
    tracer.complete("degrade_redo", 1.0, 1.5, "fault", "faults",
                    {"pages": 2})
    path = tmp_path / name
    tracer.write_jsonl(str(path))
    return str(path)


class TestFaultEventCounting:
    def test_fault_category_events_are_tallied_by_name(self, tmp_path):
        analysis = analyze_trace(faulted_trace(tmp_path))
        assert analysis.faults == {
            "fault_transient": 3,
            "io_retry": 1,
            "ssd_detached": 1,
            "degrade_redo": 1,
        }

    def test_clean_run_has_no_faults(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("run_meta", "meta", "meta",
                       {"design": "CW", "benchmark": "tpcc", "scale": 100,
                        "duration": 10.0})
        path = tmp_path / "clean.jsonl"
        tracer.write_jsonl(str(path))
        assert analyze_trace(str(path)).faults == {}


class TestFaultsTable:
    def test_formats_per_design_counts(self, tmp_path):
        analysis = analyze_trace(faulted_trace(tmp_path))
        table = format_faults_table([analysis])
        assert "Fault events" in table
        assert "fault_transient" in table
        assert "LC" in table
