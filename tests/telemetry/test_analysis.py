"""Trace analysis: loading, attribution, bench snapshots, validation."""

import json

import pytest

from repro.telemetry import CLEANER_CTX, EVICTION_CTX, TraceContext, Tracer
from repro.telemetry.analysis import (
    Attribution,
    analyze_trace,
    analyze_traces,
    bench_snapshot,
    format_attribution_table,
    format_interference_table,
    load_events,
    validate_bench,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def build_trace(tracer: Tracer) -> None:
    """A hand-built two-transaction run with background noise.

    txn 1 (new_order): 10 ms total = 4 ms disk read + 5 ms wal + 1 ms latch
    txn 2 (payment):    2 ms total = 2 ms wal
    Plus one cleaner write, one eviction write, and sampler counters.
    """
    tracer.instant("run_meta", "meta", "meta",
                   {"design": "LC", "benchmark": "tpcc", "scale": 100,
                    "duration": 10.0})
    t1 = TraceContext.for_txn(1, "new_order")
    t2 = TraceContext.for_txn(2, "payment")
    # Leaf waits precede their txn span (it is recorded at commit).
    tracer.complete("latch_wait", 0.000, 0.001, "bp", "buffer_pool", ctx=t1)
    tracer.complete("bp_miss", 0.001, 0.005, "bp", "buffer_pool",
                    {"page": 9, "src": "disk"}, ctx=t1)
    tracer.complete("random_read", 0.001, 0.005, "io", "device:hdd-array",
                    ctx=t1)
    tracer.complete("wal_wait", 0.005, 0.010, "wal", "wal", ctx=t1)
    tracer.complete("new_order", 0.0, 0.010, "txn", "txn",
                    {"writes": 2}, ctx=t1)
    tracer.complete("wal_wait", 0.004, 0.006, "wal", "wal", ctx=t2)
    tracer.complete("payment", 0.004, 0.006, "txn", "txn",
                    {"writes": 1}, ctx=t2)
    # Background device time.
    tracer.complete("sequential_write", 0.002, 0.006, "io",
                    "device:hdd-array", ctx=CLEANER_CTX)
    tracer.complete("random_write", 0.001, 0.003, "io", "device:ssd",
                    ctx=EVICTION_CTX)
    # Orphan: txn 99 never committed.
    tracer.complete("latch_wait", 0.008, 0.009, "bp", "buffer_pool",
                    ctx=TraceContext.for_txn(99, "delivery"))
    # Sampler counters (cumulative bp_requests).
    for ts, hits, misses, ssd_hits, dirty in (
            (1.0, 10, 10, 2, 0.1), (2.0, 40, 20, 10, 0.3)):
        tracer._clock.t = ts
        tracer.counter("bp_requests", {"hits": hits, "misses": misses,
                                       "ssd_hits": ssd_hits},
                       track="sampler")
        tracer.counter("ssd_dirty_fraction", {"fraction": dirty},
                       track="sampler")
        tracer.counter("ssd_frames", {"used": 50, "dirty": 5},
                       track="sampler")
        tracer.counter("pending_ios", {"disk": 3, "ssd": 1},
                       track="sampler")


@pytest.fixture
def trace_path(tmp_path):
    tracer = Tracer(clock=FakeClock())
    build_trace(tracer)
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(str(path))
    return str(path)


@pytest.fixture
def analysis(trace_path):
    return analyze_trace(trace_path)


class TestLoadEvents:
    def test_jsonl(self, trace_path):
        events = load_events(trace_path)
        assert any(e["name"] == "new_order" for e in events)

    def test_chrome_roundtrips_to_same_analysis(self, tmp_path, trace_path):
        tracer = Tracer(clock=FakeClock())
        build_trace(tracer)
        chrome = tmp_path / "trace.json"
        tracer.write_chrome(str(chrome))
        from_chrome = analyze_trace(str(chrome))
        from_jsonl = analyze_trace(trace_path)
        assert len(from_chrome.txns) == len(from_jsonl.txns)
        a, b = from_chrome.txns[0], from_jsonl.txns[0]
        assert a.components == pytest.approx(b.components)
        assert a.latency == pytest.approx(b.latency)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_events(str(path)) == []

    def test_garbage_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            load_events(str(path))


class TestAnalyzeTrace:
    def test_run_meta_extracted(self, analysis):
        assert analysis.design == "LC"
        assert analysis.benchmark == "tpcc"
        assert analysis.scale == 100
        assert analysis.duration == 10.0

    def test_transactions_reconstructed(self, analysis):
        assert [t.txn_id for t in analysis.txns] == [1, 2]
        first = analysis.txns[0]
        assert first.txn_type == "new_order"
        assert first.latency == pytest.approx(0.010)
        assert first.writes == 2

    def test_components_partition_latency(self, analysis):
        first = analysis.txns[0]
        assert first.components == pytest.approx(
            {"latch": 0.001, "disk_read": 0.004, "wal_flush": 0.005})
        assert first.attributed == pytest.approx(first.latency)

    def test_envelope_span_not_double_counted(self, analysis):
        # bp_miss encloses the disk read; only the read is summed but
        # both appear in the waterfall.
        first = analysis.txns[0]
        names = [e["name"] for e in first.waterfall()]
        assert "bp_miss" in names
        assert sum(first.components.values()) <= first.latency + 1e-12

    def test_orphan_events_counted(self, analysis):
        assert analysis.orphan_events == 1

    def test_background_io_by_origin(self, analysis):
        assert analysis.background_io["cleaner"]["busy"] == pytest.approx(
            0.004)
        assert analysis.background_io["eviction"]["ios"] == 1.0

    def test_interference_share(self, analysis):
        # Device seconds: txn disk read 4 ms + cleaner 4 ms + eviction 2 ms.
        assert analysis.interference_share("cleaner") == pytest.approx(
            0.004 / 0.010)

    def test_hit_ratio_series_from_cumulative_counters(self, analysis):
        ((ts, ratio),) = analysis.series["hit_ratio"]
        assert ts == 2.0
        assert ratio == pytest.approx(30 / 40)
        ((_, ssd_ratio),) = analysis.series["ssd_hit_ratio"]
        assert ssd_ratio == pytest.approx(8 / 10)

    def test_sampled_series_present(self, analysis):
        for key in ("ssd_dirty_fraction", "ssd_dirty", "disk_pending",
                    "ssd_pending"):
            assert len(analysis.series[key]) == 2

    def test_truncation_detected(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock, max_events=3)
        build_trace(tracer)
        path = tmp_path / "cut.jsonl"
        tracer.write_jsonl(str(path))
        cut = analyze_trace(str(path))
        assert cut.truncated
        assert cut.dropped > 0


class TestAttribution:
    def test_p50_covers_both_txns_threshold(self, analysis):
        att = analysis.attribution(50)
        assert isinstance(att, Attribution)
        assert att.count >= 1
        assert att.coverage == pytest.approx(1.0)

    def test_p99_selects_the_tail(self, analysis):
        att = analysis.attribution(99)
        assert att.count == 1
        assert att.mean_latency == pytest.approx(0.010)
        assert att.dominant == "wal_flush"

    def test_txn_type_filter(self, analysis):
        att = analysis.attribution(50, txn_type="payment")
        assert att.count == 1
        assert att.components == pytest.approx({"wal_flush": 0.002})

    def test_shares_sum_to_one(self, analysis):
        shares = analysis.attribution(50).shares()
        assert sum(share for _, share in shares) == pytest.approx(1.0)

    def test_latency_summary(self, analysis):
        summary = analysis.latency_summary()
        assert summary["count"] == 2
        assert summary["p99"] == pytest.approx(0.010, rel=0.01)

    def test_slowest(self, analysis):
        assert [t.txn_id for t in analysis.slowest(1)] == [1]


class TestTables:
    def test_attribution_table_renders(self, analysis):
        text = format_attribution_table([analysis])
        assert "LC" in text
        assert "p99" in text
        assert "wal_flush" in text
        assert "coverage" in text

    def test_interference_table_renders(self, analysis):
        text = format_interference_table([analysis])
        assert "cleaner" in text and "eviction" in text


class TestBenchSnapshot:
    def test_snapshot_validates(self, analysis):
        doc = bench_snapshot([analysis], "oltp")
        assert validate_bench(doc) == []
        assert doc["workload"] == "oltp"
        entry = doc["designs"]["LC"]
        assert entry["txns"] == 2
        assert entry["attribution"]["p99"]["dominant"] == "wal_flush"
        assert entry["attribution"]["p99"]["coverage"] == pytest.approx(1.0)

    def test_snapshot_is_json_serializable(self, analysis):
        json.dumps(bench_snapshot([analysis], "oltp"))

    def test_validator_rejects_broken_documents(self, analysis):
        assert validate_bench([]) == ["document is not an object"]
        assert any("designs" in e for e in validate_bench(
            {"schema_version": 1, "workload": "oltp", "designs": {}}))
        doc = bench_snapshot([analysis], "oltp")
        doc["designs"]["LC"]["latency_s"].pop("p99")
        assert any("p99" in e for e in validate_bench(doc))
        doc2 = bench_snapshot([analysis], "oltp")
        doc2["designs"]["LC"]["attribution"]["p99"]["components_s"][
            "wal_flush"] = -1
        assert any("non-negative" in e for e in validate_bench(doc2))
        doc3 = bench_snapshot([analysis], "oltp")
        doc3["schema_version"] = 99
        assert any("schema_version" in e for e in validate_bench(doc3))


class TestAnalyzeTraces:
    def test_multiple_paths(self, trace_path):
        analyses = analyze_traces([trace_path, trace_path])
        assert len(analyses) == 2
        assert all(a.design == "LC" for a in analyses)
