"""Tracer behaviour and Chrome trace_event export schema."""

import json

import pytest

from repro.telemetry import TRACE_PID, TRUNCATION_EVENT, Tracer


class FakeClock:
    """A settable virtual clock."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestRecording:
    def test_instant(self, tracer, clock):
        clock.t = 1.5
        tracer.instant("admit", cat="ssd", track="ssd_manager",
                       args={"page": 7})
        (event,) = tracer.events
        assert event.ph == "i"
        assert event.ts == 1.5
        assert event.track == "ssd_manager"
        assert event.args == {"page": 7}

    def test_complete(self, tracer):
        tracer.complete("flush", 2.0, 3.5, cat="wal", track="wal")
        (event,) = tracer.events
        assert event.ph == "X"
        assert event.ts == 2.0
        assert event.dur == 1.5

    def test_counter(self, tracer, clock):
        clock.t = 4.0
        tracer.counter("ssd_frames", {"used": 10, "dirty": 3})
        (event,) = tracer.events
        assert event.ph == "C"
        assert event.args == {"used": 10, "dirty": 3}

    def test_set_clock_rebinds(self, clock):
        tracer = Tracer()
        tracer.set_clock(clock)
        clock.t = 9.0
        assert tracer.now == 9.0

    def test_max_events_drops(self, clock):
        tracer = Tracer(clock=clock, max_events=2)
        for _ in range(5):
            tracer.instant("e")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)


class TestSpans:
    def test_span_measures_block(self, tracer, clock):
        clock.t = 1.0
        with tracer.span("work", cat="bp", track="buffer_pool"):
            clock.t = 4.0
        (event,) = tracer.events
        assert event.name == "work"
        assert (event.ts, event.dur) == (1.0, 3.0)

    def test_span_set_attaches_result_args(self, tracer, clock):
        with tracer.span("clean", args={"reason": "lambda"}) as span:
            clock.t = 2.0
            span.set(pages=8)
        (event,) = tracer.events
        assert event.args == {"reason": "lambda", "pages": 8}

    def test_nested_spans_contained(self, tracer, clock):
        """An inner span must lie fully within its enclosing span."""
        clock.t = 0.0
        with tracer.span("outer"):
            clock.t = 1.0
            with tracer.span("inner"):
                clock.t = 2.0
            clock.t = 3.0
        inner, outer = tracer.events  # inner exits (and records) first
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur

    def test_span_records_even_on_exception(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                clock.t = 1.0
                raise RuntimeError("boom")
        assert len(tracer.events) == 1

    def test_exceptional_exit_tags_error_type(self, tracer, clock):
        with pytest.raises(KeyError):
            with tracer.span("doomed", args={"page": 5}):
                raise KeyError("missing")
        (event,) = tracer.events
        assert event.args == {"page": 5, "error": "KeyError"}

    def test_clean_exit_carries_no_error_tag(self, tracer):
        with tracer.span("fine", args={"page": 5}):
            pass
        (event,) = tracer.events
        assert "error" not in event.args


class TestChromeExport:
    def _trace(self, tracer, clock):
        clock.t = 0.25
        tracer.instant("lambda_crossed", cat="cleaner", track="cleaner")
        tracer.complete("io", 0.1, 0.2, cat="io", track="device:disk")
        tracer.counter("depth", {"q": 2.0})
        return tracer.to_chrome()

    def test_top_level_shape(self, tracer, clock):
        doc = self._trace(tracer, clock)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)
        json.dumps(doc)  # must be serializable as-is

    def test_every_event_has_required_keys(self, tracer, clock):
        for event in self._trace(tracer, clock)["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert event["pid"] == TRACE_PID

    def test_metadata_names_tracks(self, tracer, clock):
        events = self._trace(tracer, clock)["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {"repro"} == {e["args"]["name"] for e in meta
                             if e["name"] == "process_name"}
        thread_names = {e["tid"]: e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        data = [e for e in events if e["ph"] != "M"]
        # Every data event's tid resolves to its track's name.
        by_name = {e["name"]: thread_names[e["tid"]] for e in data}
        assert by_name["lambda_crossed"] == "cleaner"
        assert by_name["io"] == "device:disk"
        assert by_name["depth"] == "counters"

    def test_microsecond_scaling(self, tracer, clock):
        events = self._trace(tracer, clock)["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] != "M"}
        assert by_name["lambda_crossed"]["ts"] == pytest.approx(250_000)
        assert by_name["io"]["ts"] == pytest.approx(100_000)
        assert by_name["io"]["dur"] == pytest.approx(100_000)

    def test_phase_specific_fields(self, tracer, clock):
        events = self._trace(tracer, clock)["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] != "M"}
        assert by_name["io"]["ph"] == "X" and "dur" in by_name["io"]
        instant = by_name["lambda_crossed"]
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert by_name["depth"]["ph"] == "C"
        assert by_name["depth"]["args"] == {"q": 2.0}

    def test_write_chrome_roundtrip(self, tracer, clock, tmp_path):
        self._trace(tracer, clock)
        path = tmp_path / "trace.json"
        tracer.write_chrome(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == len(tracer.to_chrome()["traceEvents"])


class TestJsonlExport:
    def test_one_parseable_object_per_event(self, tracer, clock, tmp_path):
        clock.t = 1.0
        tracer.instant("a", args={"k": 1})
        tracer.complete("b", 0.0, 1.0)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["a", "b"]
        assert lines[0]["args"] == {"k": 1}
        assert lines[1]["dur"] == 1.0
        assert "dur" not in lines[0]  # instants carry no duration


class TestTruncationMarker:
    def _truncated_tracer(self, clock, events=5, cap=2):
        tracer = Tracer(clock=clock, max_events=cap)
        for i in range(events):
            clock.t = float(i)
            tracer.instant("e")
        return tracer

    def test_jsonl_ends_with_marker(self, clock, tmp_path):
        tracer = self._truncated_tracer(clock)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        marker = lines[-1]
        assert marker["name"] == TRUNCATION_EVENT
        assert marker["cat"] == "meta"
        assert marker["args"] == {"dropped": 3, "max_events": 2}
        assert marker["ts"] == tracer.events[-1].ts

    def test_chrome_export_carries_marker_on_named_track(self, clock):
        tracer = self._truncated_tracer(clock)
        events = tracer.to_chrome()["traceEvents"]
        marker = next(e for e in events if e["name"] == TRUNCATION_EVENT)
        assert marker["args"]["dropped"] == 3
        thread_names = {e["tid"]: e["args"]["name"] for e in events
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert thread_names[marker["tid"]] == "meta"

    def test_complete_trace_has_no_marker(self, tracer, clock, tmp_path):
        tracer.instant("only")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        assert TRUNCATION_EVENT not in path.read_text()
        chrome = tracer.to_chrome()["traceEvents"]
        assert all(e["name"] != TRUNCATION_EVENT for e in chrome)
