"""Arrival processes and the tenant spec grammar.

Mean-rate preservation matters because the experiments compare arrival
*shapes* (bursty vs. smooth) at equal offered volume; determinism per
seed matters because the whole repo's byte-identical-trace contract
extends to open-loop runs.
"""

import random

import pytest

from repro.workloads.traffic import (DEFAULT_THINK_SECONDS, BurstyArrivals,
                                     DiurnalArrivals, PoissonArrivals,
                                     TenantSpec, parse_arrivals,
                                     parse_tenants, single_tenant)


def _arrivals_before(gen, seed, horizon):
    rng = random.Random(seed)
    out = []
    for t in gen.times(rng):
        if t >= horizon:
            break
        out.append(t)
    return out


@pytest.mark.parametrize("gen", [
    PoissonArrivals(rate=50.0),
    BurstyArrivals(rate=50.0, burst=10.0, on_fraction=0.2, cycle=5.0),
    DiurnalArrivals(rate=50.0, period=40.0, peak=3.0),
])
def test_long_run_mean_rate_is_preserved(gen):
    # Bursty counts are far super-Poissonian (whole on-phases of ~180/s
    # arrive or don't), so bound the mean over seeds, not one draw:
    # per-run relative sigma is ~8% for this shape, ~1.6% over 25 seeds.
    horizon = 400.0
    counts = [len(_arrivals_before(gen, seed=seed, horizon=horizon))
              for seed in range(25)]
    expected = gen.mean_rate * horizon
    mean = sum(counts) / len(counts)
    assert abs(mean - expected) < 0.05 * expected


@pytest.mark.parametrize("gen", [
    PoissonArrivals(rate=20.0),
    BurstyArrivals(rate=20.0),
    DiurnalArrivals(rate=20.0, period=10.0),
])
def test_same_seed_same_arrival_times(gen):
    a = _arrivals_before(gen, seed=42, horizon=30.0)
    b = _arrivals_before(gen, seed=42, horizon=30.0)
    c = _arrivals_before(gen, seed=43, horizon=30.0)
    assert a == b
    assert a != c
    assert a == sorted(a) and all(t >= 0 for t in a)


def test_bursty_rates_solve_the_mean_constraint():
    gen = BurstyArrivals(rate=100.0, burst=8.0, on_fraction=0.25, cycle=4.0)
    f = gen.on_fraction
    assert gen.rate_on == pytest.approx(8.0 * gen.rate_off)
    assert f * gen.rate_on + (1 - f) * gen.rate_off == pytest.approx(100.0)


def test_diurnal_peak_trough_ratio():
    gen = DiurnalArrivals(rate=10.0, period=100.0, peak=4.0)
    hi = gen.rate_at(25.0)   # sin = +1
    lo = gen.rate_at(75.0)   # sin = -1
    assert hi / lo == pytest.approx(4.0)
    assert (hi + lo) / 2 == pytest.approx(10.0)
    assert gen.max_rate == pytest.approx(hi)


def test_generator_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(rate=0.0)
    with pytest.raises(ValueError):
        BurstyArrivals(rate=1.0, burst=0.5)
    with pytest.raises(ValueError):
        BurstyArrivals(rate=1.0, on_fraction=1.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(rate=1.0, peak=0.9)


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------

def test_parse_arrivals_rate_form():
    gen = parse_arrivals("poisson:rate=5000")
    assert isinstance(gen, PoissonArrivals)
    assert gen.rate == 5000.0
    # rate= implies a logical-user count at the default think time.
    assert gen.users == 5000.0 * DEFAULT_THINK_SECONDS


def test_parse_arrivals_users_think_form():
    gen = parse_arrivals("poisson:users=1000000:think=100")
    assert gen.rate == pytest.approx(10_000.0)
    assert gen.users == 1_000_000.0


def test_parse_arrivals_kind_fields():
    gen = parse_arrivals("bursty:rate=10:burst=4:on=0.5:cycle=2")
    assert isinstance(gen, BurstyArrivals)
    assert (gen.burst, gen.on_fraction, gen.cycle) == (4.0, 0.5, 2.0)
    gen = parse_arrivals("diurnal:rate=10:period=600:peak=2")
    assert isinstance(gen, DiurnalArrivals)
    assert (gen.period, gen.peak) == (600.0, 2.0)


@pytest.mark.parametrize("bad", [
    "", "warp:rate=1", "poisson", "poisson:think=10",
    "poisson:rate=1:burst=2", "poisson:rate=abc", "poisson:rate",
])
def test_parse_arrivals_rejects_bad_specs(bad):
    with pytest.raises(ValueError):
        parse_arrivals(bad)


def test_parse_tenants_full_grammar():
    tenants = parse_tenants(
        "gold=poisson:users=800000:think=100:theta=0.6;"
        "noisy=bursty:rate=300:burst=10:theta=0.99")
    assert [t.name for t in tenants] == ["gold", "noisy"]
    gold, noisy = tenants
    assert gold.theta == 0.6 and noisy.theta == 0.99
    assert gold.logical_users == 800_000.0
    assert gold.mean_rate == pytest.approx(8000.0)
    assert isinstance(noisy.arrivals, BurstyArrivals)
    # theta= was stripped before arrival parsing.
    assert noisy.arrivals.burst == 10.0


def test_parse_tenants_rejects_duplicates_and_garbage():
    with pytest.raises(ValueError):
        parse_tenants("a=poisson:rate=1;a=poisson:rate=2")
    with pytest.raises(ValueError):
        parse_tenants("just-a-name")
    with pytest.raises(ValueError):
        parse_tenants(";;")


def test_single_tenant_helper():
    (tenant,) = single_tenant("poisson:rate=7", theta=0.7)
    assert isinstance(tenant, TenantSpec)
    assert tenant.name == "all" and tenant.theta == 0.7
    assert tenant.mean_rate == 7.0
