"""Tests for the three workload generators."""

import random
from collections import Counter

import pytest

from repro.harness.experiments import SCALE_PROFILES, make_system, make_workload
from repro.workloads.base import AppendRegion, Transaction, choose_mix
from repro.workloads.tpcc import MIX as TPCC_MIX, TpccWorkload
from repro.workloads.tpce import MIX as TPCE_MIX, TpceWorkload
from repro.workloads.tpch import QUERIES, TpchResult, TpchWorkload
from tests.conftest import drive, settle

PROFILE = SCALE_PROFILES["tiny"]


def build(benchmark, scale, design="noSSD"):
    workload = make_workload(benchmark, scale, PROFILE)
    system = make_system(benchmark, workload, design, PROFILE)
    workload.setup(system)
    return workload, system


def run_transactions(workload, system, n=60, seed=5):
    rng = random.Random(seed)
    names = []

    def loop():
        for _ in range(n):
            name, body = workload.transaction(rng, system)
            yield from body
            names.append(name)

    drive(system.env, loop())
    settle(system.env)
    return Counter(names)


class TestMixes:
    def test_tpcc_mix_sums_to_one(self):
        assert sum(w for _, w in TPCC_MIX) == pytest.approx(1.0)

    def test_tpce_mix_sums_to_one(self):
        assert sum(w for _, w in TPCE_MIX) == pytest.approx(1.0)

    def test_choose_mix_respects_weights(self):
        rng = random.Random(1)
        picks = Counter(choose_mix(rng, TPCC_MIX) for _ in range(5_000))
        assert picks["new_order"] / 5_000 == pytest.approx(0.45, abs=0.03)
        assert picks["payment"] / 5_000 == pytest.approx(0.43, abs=0.03)


class TestTpcc:
    def test_scaling_matches_paper_ratios(self):
        """1K/2K/4K warehouses = 100/200/400 GB: page counts must scale
        linearly with warehouses."""
        small = TpccWorkload(1_000, pages_per_warehouse=10)
        large = TpccWorkload(4_000, pages_per_warehouse=10)
        assert large.stock_pages == 4 * small.stock_pages
        assert large.customer_pages == 4 * small.customer_pages

    def test_all_transaction_types_run(self):
        workload, system = build("tpcc", 200)
        counts = run_transactions(workload, system, n=120)
        assert counts["new_order"] > 0
        assert counts["payment"] > 0

    def test_update_intensive(self):
        """§4.2: 'every two read accesses are accompanied by a write'."""
        workload, system = build("tpcc", 200)
        run_transactions(workload, system, n=150)
        stats = system.bp.stats
        reads = stats.hits + stats.misses
        writes = len(system.wal.records) + system.wal._truncated
        assert 0.15 < writes / reads < 0.6

    def test_oracle_records_committed_versions(self):
        oracle = {}
        workload = make_workload("tpcc", 200, PROFILE, oracle=oracle)
        system = make_system("tpcc", workload, "noSSD", PROFILE)
        workload.setup(system)
        run_transactions(workload, system, n=50)
        assert oracle
        for page_id, version in oracle.items():
            assert version >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TpccWorkload(0)


class TestTpce:
    def test_read_intensive(self):
        workload, system = build("tpce", 2)
        run_transactions(workload, system, n=200)
        stats = system.bp.stats
        reads = stats.hits + stats.misses
        writes = len(system.wal.records) + system.wal._truncated
        assert writes / reads < 0.15  # an order of magnitude fewer writes

    def test_trade_result_is_metric(self):
        assert TpceWorkload.metric_transaction == "trade_result"
        assert TpceWorkload.metric_window == 1.0  # per second

    def test_sizing_matches_paper(self):
        """10K customers = 115 GB in the paper."""
        workload = TpceWorkload(10, pages_per_customer_k=1_150)
        assert workload.db_pages() == pytest.approx(11_500, rel=0.02)


class TestTpch:
    def test_has_22_queries(self):
        assert len(QUERIES) == 22
        assert [q.number for q in QUERIES] == list(range(1, 23))

    def test_some_queries_are_lookup_heavy(self):
        """§4.4: some queries are dominated by LINEITEM index lookups."""
        assert sum(1 for q in QUERIES if q.li_lookup_fraction > 0) >= 6

    def test_lineitem_dominates_layout(self):
        workload = TpchWorkload(30, db_gb=45.0, pages_per_gb=5)
        workload_pages = workload.db_pages()
        lineitem = int(workload.total_pages * 0.62)
        assert lineitem / workload_pages > 0.5

    def test_power_test_times_every_query(self):
        workload, system = build("tpch", 30)
        result = TpchResult(sf=30)
        drive(system.env, workload.power_test(system, result))
        assert set(result.query_times) == set(range(1, 23))
        assert len(result.rf_times) == 2
        assert result.power > 0

    def test_throughput_test_runs_streams(self):
        workload, system = build("tpch", 30)
        result = TpchResult(sf=30)
        drive(system.env, workload.throughput_test(system, result))
        assert result.streams == 4
        assert result.throughput_elapsed > 0

    def test_stream_count_follows_paper(self):
        assert TpchWorkload(30).streams == 4
        assert TpchWorkload(100).streams == 5

    def test_qphh_is_geometric_mean_of_tests(self):
        result = TpchResult(sf=30)
        result.query_times = {q: 1.0 for q in range(1, 23)}
        result.rf_times = [1.0, 1.0]
        result.streams = 4
        result.throughput_elapsed = 4 * 22 * 1.0
        assert result.power == pytest.approx(3600 * 30)
        assert result.throughput == pytest.approx(3600 * 30)
        assert result.qphh == pytest.approx(3600 * 30)


class TestTransactionHelper:
    def test_commit_forces_log(self):
        workload, system = build("tpcc", 200)
        txn = Transaction(system)

        def proc():
            yield from txn.update(5)
            yield from txn.commit()

        drive(system.env, proc())
        assert system.wal.flushed_lsn >= txn.last_lsn

    def test_readonly_commit_is_free(self):
        workload, system = build("tpcc", 200)
        txn = Transaction(system)

        def proc():
            yield from txn.read(5)
            yield from txn.commit()

        drive(system.env, proc())
        assert system.wal.flushed_lsn == -1

    def test_append_region_advances_tail(self):
        region = AppendRegion(first_page=10, npages=5, rows_per_page=2)
        assert region.tail_page == 10
        region._rows = 2
        assert region.tail_page == 11
        region._rows = 10  # wraps
        assert region.tail_page == 10
