"""Focused tests for TPC-C generator internals."""

import random

import pytest

from repro.harness.experiments import SCALE_PROFILES, make_system, make_workload
from repro.workloads.tpcc import TpccWorkload
from tests.conftest import drive, settle

PROFILE = SCALE_PROFILES["tiny"]


def build(warehouses=200):
    workload = make_workload("tpcc", warehouses, PROFILE)
    system = make_system("tpcc", workload, "noSSD", PROFILE)
    workload.setup(system)
    return workload, system


class TestPagePickers:
    def test_keys_stay_in_table_ranges(self):
        workload, system = build()
        rng = random.Random(1)
        for _ in range(500):
            assert 0 <= workload._stock_key(rng) < workload.stock_pages
            assert 0 <= workload._customer_key(rng) < workload.customer_pages

    def test_district_pages_inside_table(self):
        workload, system = build()
        rng = random.Random(2)
        table = workload.district
        for _ in range(200):
            page = workload._district_page(rng)
            assert table.first_page <= page < table.end_page

    def test_recent_orders_cluster_at_tail(self):
        workload, system = build()
        rng = random.Random(3)
        keys = [workload._recent_order_key(rng) for _ in range(300)]
        top = workload.orders_pages - 1
        assert all(key <= top for key in keys)
        assert min(keys) > top - max(1, workload.orders_pages // 10)

    def test_stock_hot_set_is_skewed(self):
        workload, system = build()
        rng = random.Random(4)
        from collections import Counter
        counts = Counter(workload._stock_key(rng) for _ in range(10_000))
        hot = sum(count for _, count in counts.most_common(
            max(1, workload.stock_pages // 5)))
        assert hot / 10_000 > 0.5


class TestOrderGrowth:
    def test_order_inserts_bounded_by_free_pages(self):
        workload, system = build(warehouses=100)
        rng = random.Random(5)

        def lots_of_orders():
            for _ in range(200):
                yield from workload._new_order(rng, system)

        drive(system.env, lots_of_orders())
        settle(system.env)
        # Growth happened but never exhausted the allocator.
        assert system.db.free_pages >= 0
        assert workload._orders_next_key >= workload.orders_pages

    def test_new_order_is_update_heavy(self):
        workload, system = build()
        rng = random.Random(6)
        wal_before = len(system.wal.records) + system.wal._truncated

        def one():
            yield from workload._new_order(rng, system)

        drive(system.env, one())
        writes = (len(system.wal.records) + system.wal._truncated
                  - wal_before)
        assert writes >= 6  # district + 5 stock + order


class TestScaling:
    def test_db_pages_accounts_every_table(self):
        workload = TpccWorkload(1_000, pages_per_warehouse=10)
        total = (workload.stock_pages + workload.customer_pages
                 + workload.orders_pages + workload.history_pages
                 + workload.district_pages + workload.item_pages)
        assert workload.db_pages() == total

    def test_paper_sizing_1k_warehouses_is_100gb(self):
        """1K warehouses = 100 GB = 10,000 pages at 100 pages/GB."""
        workload = TpccWorkload(1_000, pages_per_warehouse=10,
                                item_pages=100)
        assert workload.db_pages() == pytest.approx(10_000, rel=0.05)
