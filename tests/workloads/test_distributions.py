"""Unit and property tests for the access distributions."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import NURand, ZipfGenerator, scramble


class TestNURand:
    def test_samples_stay_in_range(self):
        nurand = NURand(a=255, x=0, y=999)
        rng = random.Random(1)
        for _ in range(2_000):
            assert 0 <= nurand.sample(rng) <= 999

    def test_for_range_builder(self):
        nurand = NURand.for_range(10_000)
        rng = random.Random(2)
        assert all(0 <= nurand.sample(rng) < 10_000 for _ in range(500))

    def test_skew_concentrates_mass(self):
        nurand = NURand.for_range(10_000)
        rng = random.Random(3)
        counts = Counter(nurand.sample(rng) for _ in range(20_000))
        top_fifth = sum(count for __, count in counts.most_common(
            max(1, len(counts) // 5)))
        assert top_fifth / 20_000 > 0.5  # heavily skewed

    def test_validation(self):
        with pytest.raises(ValueError):
            NURand(a=0, x=0, y=10)
        with pytest.raises(ValueError):
            NURand(a=10, x=10, y=5)
        with pytest.raises(ValueError):
            NURand.for_range(0)

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=1, max_value=100_000),
           seed=st.integers(min_value=0, max_value=1_000))
    def test_bounds_property(self, n, seed):
        nurand = NURand.for_range(n)
        rng = random.Random(seed)
        for _ in range(20):
            assert 0 <= nurand.sample(rng) < n


class TestZipf:
    def test_samples_in_range(self):
        zipf = ZipfGenerator(500, theta=0.8)
        rng = random.Random(4)
        assert all(0 <= zipf.sample(rng) < 500 for _ in range(1_000))

    def test_paper_skew_75_20(self):
        """The paper's TPC-C skew: ~75% of accesses to ~20% of pages."""
        zipf = ZipfGenerator(1_000, theta=0.85)
        rng = random.Random(5)
        counts = Counter(zipf.sample(rng) for _ in range(50_000))
        hot = sum(counts.get(rank, 0) for rank in range(200))  # top 20%
        assert 0.6 < hot / 50_000 < 0.95

    def test_lower_theta_is_flatter(self):
        rng1, rng2 = random.Random(6), random.Random(6)
        sharp = ZipfGenerator(1_000, theta=0.95)
        flat = ZipfGenerator(1_000, theta=0.3)
        sharp_hot = sum(1 for _ in range(10_000)
                        if sharp.sample(rng1) < 100)
        flat_hot = sum(1 for _ in range(10_000) if flat.sample(rng2) < 100)
        assert sharp_hot > flat_hot

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, theta=0)


class TestScramble:
    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=1, max_value=5_000))
    def test_is_a_bijection(self, n):
        mapped = {scramble(value, n) for value in range(n)}
        assert len(mapped) == n
        assert all(0 <= m < n for m in mapped)

    def test_separates_adjacent_ranks(self):
        n = 1_000
        positions = [scramble(rank, n) for rank in range(10)]
        gaps = [abs(a - b) for a, b in zip(positions, positions[1:])]
        assert min(gaps) > 10  # hot ranks are not physically adjacent

    def test_degenerate_sizes(self):
        assert scramble(5, 1) == 0
