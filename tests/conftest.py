"""Shared fixtures and helpers for the test suite."""

import random

import pytest

from repro.sim import Environment
from repro.storage import HddArray, Ssd
from repro.core import DESIGNS, SsdDesignConfig
from repro.engine import BufferPool, Checkpointer, Database, DiskManager, WriteAheadLog
from repro.harness.system import System, SystemConfig


@pytest.fixture(scope="session", autouse=True)
def _session_runstore(tmp_path_factory):
    """Session-wide backstop for the run-store default path.

    Module- and session-scoped fixtures are set up *before* the
    function-scoped isolation fixture below, so one that invokes the
    CLI (e.g. a shared traced run) would otherwise record into
    ``.repro-runs.db`` in the working tree.
    """
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_RUNSTORE",
                   str(tmp_path_factory.mktemp("runstore") / "runs.db"))
    yield
    patcher.undo()


@pytest.fixture(autouse=True)
def _isolated_runstore(tmp_path, monkeypatch):
    """Route default run-store recording into the test's tmp dir.

    CLI commands record runs into ``.repro-runs.db`` by default; tests
    that invoke them must not leave databases in the working tree.
    Tests that care about the store pass an explicit path anyway.
    """
    monkeypatch.setenv("REPRO_RUNSTORE", str(tmp_path / "runs.db"))


@pytest.fixture
def env():
    return Environment()


def drive(env, generator):
    """Run a process generator to completion; return its value."""
    process = env.process(generator)
    env.run(process)
    return process.value


def settle(env, seconds=5.0):
    """Let in-flight background work (evictions, cleaner) finish."""
    env.run(until=env.now + seconds)


class MiniSystem:
    """A hand-wired small system for engine/core tests (no catalog)."""

    def __init__(self, design="noSSD", db_pages=2_000, bp_pages=100,
                 ssd_frames=500, env=None, **ssd_kwargs):
        self.env = env or Environment()
        self.data_device = HddArray(self.env)
        self.ssd_device = Ssd(self.env)
        self.disk = DiskManager(self.env, self.data_device, db_pages)
        self.wal = WriteAheadLog(self.env)
        config = SsdDesignConfig(
            ssd_frames=0 if design == "noSSD" else ssd_frames, **ssd_kwargs)
        self.ssd_manager = DESIGNS[design](
            self.env, self.ssd_device, self.disk, self.wal, config)
        self.bp = BufferPool(self.env, bp_pages, self.disk, self.wal,
                             self.ssd_manager)
        self.ssd_manager.bp = self.bp
        self.ssd_manager.start_cleaner()
        self.checkpointer = Checkpointer(self.env, self.bp, self.wal)
        self.db = Database(db_pages)

    def churn(self, accesses=2_000, write_fraction=0.33, span=None, seed=7,
              workers=8):
        """Run a uniform random read/write mix to exercise the stack."""
        span = span or self.disk.npages
        rng = random.Random(seed)

        def worker():
            for _ in range(accesses // workers):
                pid = rng.randrange(span)
                frame = yield from self.bp.fetch(pid)
                if rng.random() < write_fraction:
                    self.bp.mark_dirty(frame)
                self.bp.unpin(frame)

        procs = [self.env.process(worker()) for _ in range(workers)]
        self.env.run(self.env.all_of(procs))
        settle(self.env)


@pytest.fixture
def mini():
    return MiniSystem


@pytest.fixture
def small_system():
    """A small assembled System (noSSD) for harness tests."""
    return System(SystemConfig(design="noSSD", db_pages=1_000, bp_pages=64,
                               ssd=SsdDesignConfig(ssd_frames=0)))
