"""Fault injection at the device layer, and the fault-plan grammar."""

import random

import pytest

from repro.faults import (
    DeviceDeadError,
    FaultInjector,
    FaultPlan,
    TransientIoError,
)
from repro.storage import IoKind, IORequest, Ssd
from repro.storage.device import TrafficRecorder
from tests.conftest import drive


def submit_one(env, device):
    """Drive one read to completion; return (ok, exception_or_none)."""

    def proc():
        try:
            yield device.read(0)
        except Exception as exc:  # noqa: BLE001 - tests inspect the type
            return False, exc
        return True, None

    return drive(env, proc())


class TestTransientFaults:
    def test_transient_fails_the_completion_event(self, env):
        ssd = Ssd(env)
        injector = FaultInjector(env, ssd, random.Random("t"))
        injector.transient_p = 1.0
        ok, exc = submit_one(env, ssd)
        assert not ok
        assert isinstance(exc, TransientIoError)
        assert injector.stats["transient"] == 1

    def test_failed_io_does_not_leak_outstanding_count(self, env):
        """Regression: the ``_outstanding`` decrement must survive the
        failure path, or every failed I/O would permanently inflate
        ``pending`` and wedge the §3.3.2 throttle shut."""
        ssd = Ssd(env)
        injector = FaultInjector(env, ssd, random.Random("t"))
        injector.transient_p = 1.0
        for _ in range(5):
            ok, _ = submit_one(env, ssd)
            assert not ok
        assert ssd.pending == 0
        # The device still works once the fault clears.
        injector.transient_p = 0.0
        ok, _ = submit_one(env, ssd)
        assert ok
        assert ssd.pending == 0

    def test_transient_does_not_count_as_completed(self, env):
        ssd = Ssd(env)
        injector = FaultInjector(env, ssd, random.Random("t"))
        injector.transient_p = 1.0
        submit_one(env, ssd)
        assert ssd.stats.completed == 0


class TestDeadDevice:
    def test_submit_to_dead_device_fails_fast(self, env):
        ssd = Ssd(env)
        injector = FaultInjector(env, ssd, random.Random("d"))
        injector.kill()
        before = env.now
        ok, exc = submit_one(env, ssd)
        assert not ok
        assert isinstance(exc, DeviceDeadError)
        assert env.now == before  # rejected before queueing, no I/O time
        assert ssd.pending == 0
        assert injector.stats["dead_submit"] == 1

    def test_death_mid_flight_fails_inflight_ios(self, env):
        ssd = Ssd(env)
        injector = FaultInjector(env, ssd, random.Random("d"))

        def proc():
            done = ssd.read(0)
            injector.kill()  # dies while the I/O is in service
            try:
                yield done
            except DeviceDeadError:
                return "dead"
            return "ok"

        assert drive(env, proc()) == "dead"
        assert injector.stats["dead_inflight"] == 1
        assert ssd.pending == 0

    def test_kill_is_idempotent(self, env):
        ssd = Ssd(env)
        injector = FaultInjector(env, ssd, random.Random("d"))
        injector.kill()
        injector.kill()
        assert injector.stats["device_dead"] == 1


class TestLatencyAndStalls:
    def test_straggler_inflates_service_time(self, env):
        ssd = Ssd(env)

        def timed(device):
            start = env.now

            def proc():
                yield device.read(0)
                return env.now - start

            return drive(env, proc())

        baseline = timed(ssd)
        injector = FaultInjector(env, ssd, random.Random("l"))
        injector.latency_p = 1.0
        injector.latency_factor = 5.0
        inflated = timed(ssd)
        assert inflated == pytest.approx(5.0 * baseline)
        assert injector.stats["latency"] == 1

    def test_stall_window_delays_service(self, env):
        ssd = Ssd(env)
        injector = FaultInjector(env, ssd, random.Random("s"))
        injector.stall(0.5)

        def proc():
            start = env.now
            yield ssd.read(0)
            return env.now - start

        elapsed = drive(env, proc())
        assert elapsed > 0.5
        assert injector.stats["stall"] == 1

    def test_stall_in_the_past_is_inert(self, env):
        ssd = Ssd(env)
        injector = FaultInjector(env, ssd, random.Random("s"))
        injector.stall(0.25)
        env.run(until=1.0)
        ok, _ = submit_one(env, ssd)
        assert ok
        assert "stall" not in injector.stats


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            from repro.sim import Environment

            env = Environment()
            ssd = Ssd(env)
            injector = FaultInjector(env, ssd, random.Random(seed))
            injector.transient_p = 0.3
            injector.latency_p = 0.2
            outcomes = []
            for _ in range(50):
                ok, exc = submit_one(env, ssd)
                outcomes.append((ok, type(exc).__name__ if exc else None,
                                 round(env.now, 9)))
            return outcomes, dict(injector.stats)

        a = run("faults:42")
        b = run("faults:42")
        c = run("faults:43")
        assert a == b
        assert a != c  # a different seed draws a different sequence


class TestSeriesBoundary:
    """``TrafficRecorder.series(until=...)`` must *ceil* to the last
    (partial) bucket: flooring dropped it and truncated Figure 8."""

    def test_partial_final_bucket_is_kept(self):
        recorder = TrafficRecorder(bucket_seconds=2.0)
        recorder.record(0.5, IORequest(IoKind.RANDOM_READ, 0, 4))
        series = recorder.series(until=5.0)  # buckets [0,2), [2,4), [4,5]
        assert len(series) == 3
        assert [t for t, _, _ in series] == [0.0, 2.0, 4.0]

    def test_exact_boundary_adds_no_empty_bucket(self):
        recorder = TrafficRecorder(bucket_seconds=2.0)
        recorder.record(0.5, IORequest(IoKind.RANDOM_READ, 0, 4))
        series = recorder.series(until=4.0)  # ends exactly at a boundary
        assert len(series) == 2

    def test_until_never_shrinks_the_series(self):
        recorder = TrafficRecorder(bucket_seconds=1.0)
        recorder.record(3.5, IORequest(IoKind.RANDOM_WRITE, 0, 1))
        assert len(recorder.series(until=2.0)) == 4


class TestFaultPlanGrammar:
    def test_parses_the_docstring_examples(self):
        plan = FaultPlan.parse(
            "ssd_die@t=30,transient:p=0.001,latency:p=0.005:x=20,"
            "log_stall@t=10:dur=2")
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["ssd_die", "transient", "latency", "log_stall"]
        die, transient, latency, stall = plan.specs
        assert die.at == 30.0 and die.device == "ssd"
        assert transient.p == 0.001 and transient.device == "all"
        assert latency.factor == 20.0
        assert stall.device == "log" and stall.duration == 2.0

    def test_device_scoping(self):
        plan = FaultPlan.parse("transient:p=0.01:device=ssd")
        assert plan.specs[0].device == "ssd"

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("transient:p=0.5")

    @pytest.mark.parametrize("bad", [
        "explode@t=1",                # unknown kind
        "transient:q=0.5",            # unknown parameter
        "transient:p",                # malformed key=value
        "transient:p=lots",           # non-numeric
        "transient:p=1.5",            # probability out of range
        "ssd_die",                    # missing required @t=
        "disk_stall:dur=2",           # missing required @t=
        "transient:p=0.1:device=nas",  # unknown device
    ])
    def test_rejects_malformed_clauses(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)
