"""Calibration tests: the device models must reproduce the paper's Table 1."""

import pytest

from repro.storage import HddArray, IoKind, Ssd
from repro.storage.iometer import Table1, measure_iops, run_table1


class TestMeasureIops:
    def test_hdd_random_read_matches_paper(self):
        iops = measure_iops(lambda env: HddArray(env), IoKind.RANDOM_READ,
                            duration=3.0)
        assert iops == pytest.approx(1_015, rel=0.05)

    def test_hdd_sequential_read_matches_paper(self):
        iops = measure_iops(lambda env: HddArray(env), IoKind.SEQUENTIAL_READ,
                            duration=3.0)
        assert iops == pytest.approx(26_370, rel=0.05)

    def test_ssd_random_read_matches_paper(self):
        iops = measure_iops(lambda env: Ssd(env), IoKind.RANDOM_READ,
                            duration=3.0)
        assert iops == pytest.approx(12_182, rel=0.05)

    def test_ssd_random_write_matches_paper(self):
        iops = measure_iops(lambda env: Ssd(env), IoKind.RANDOM_WRITE,
                            duration=3.0)
        assert iops == pytest.approx(12_374, rel=0.05)


class TestTable1:
    def test_all_eight_cells_within_tolerance(self):
        table = run_table1(duration=3.0)
        for name, measured, paper in table.rows():
            assert measured == pytest.approx(paper, rel=0.05), name

    def test_key_paper_ratios_hold(self):
        """The ratios the paper's analysis leans on: the SSD is ~12x the
        disks at random reads but the disks win sequential reads."""
        table = run_table1(duration=3.0)
        assert table.ssd_random_read / table.hdd_random_read > 10
        assert table.hdd_sequential_read > table.ssd_sequential_read

    def test_rows_cover_all_cells(self):
        table = run_table1(duration=1.0)
        assert len(list(table.rows())) == 8
        assert set(Table1.PAPER) == {name for name, _, __ in table.rows()}
