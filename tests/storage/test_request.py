"""Unit tests for I/O request descriptors."""

import pytest

from repro.storage.request import IoKind, IORequest, PAGE_SIZE_BYTES


class TestIoKind:
    def test_four_classes(self):
        assert len(list(IoKind)) == 4

    def test_direction_flags(self):
        assert IoKind.RANDOM_READ.is_read
        assert not IoKind.RANDOM_READ.is_write
        assert IoKind.SEQUENTIAL_WRITE.is_write

    def test_random_flags(self):
        assert IoKind.RANDOM_READ.random
        assert not IoKind.SEQUENTIAL_READ.random

    def test_of_builds_all_combinations(self):
        assert IoKind.of("read", True) is IoKind.RANDOM_READ
        assert IoKind.of("read", False) is IoKind.SEQUENTIAL_READ
        assert IoKind.of("write", True) is IoKind.RANDOM_WRITE
        assert IoKind.of("write", False) is IoKind.SEQUENTIAL_WRITE

    def test_of_rejects_unknown_direction(self):
        with pytest.raises(ValueError):
            IoKind.of("erase", True)


class TestIORequest:
    def test_byte_size(self):
        request = IORequest(IoKind.RANDOM_READ, 0, npages=3)
        assert request.nbytes == 3 * PAGE_SIZE_BYTES

    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            IORequest(IoKind.RANDOM_READ, 0, npages=0)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            IORequest(IoKind.RANDOM_READ, -1)

    def test_latency_requires_completion(self):
        request = IORequest(IoKind.RANDOM_READ, 0)
        with pytest.raises(ValueError):
            request.latency

    def test_latency_after_completion(self):
        request = IORequest(IoKind.RANDOM_READ, 0)
        request.submitted_at = 1.0
        request.completed_at = 1.5
        assert request.latency == pytest.approx(0.5)
