"""Unit tests for the HDD array and SSD device models."""

import pytest

from repro.sim import Environment
from repro.storage import HddArray, IoKind, IORequest, Ssd
from repro.storage.device import TrafficRecorder
from tests.conftest import drive


class TestHddStriping:
    def test_disk_of_rotates_by_stripe(self, env):
        hdd = HddArray(env, ndisks=4, stripe_pages=8)
        assert hdd.disk_of(0) == 0
        assert hdd.disk_of(7) == 0
        assert hdd.disk_of(8) == 1
        assert hdd.disk_of(32) == 0

    def test_lba_is_per_drive_contiguous(self, env):
        hdd = HddArray(env, ndisks=4, stripe_pages=8)
        # Drive 1 holds addresses 8..15, 40..47, ... -> LBAs 0..7, 8..15.
        assert hdd.lba_of(8) == 0
        assert hdd.lba_of(15) == 7
        assert hdd.lba_of(40) == 8

    def test_split_respects_stripe_boundaries(self, env):
        hdd = HddArray(env, ndisks=4, stripe_pages=8)
        fragments = hdd._split(IORequest(IoKind.SEQUENTIAL_READ, 6, 10))
        assert [(f.address, f.npages) for f in fragments] == [(6, 2), (8, 8)]

    def test_single_stripe_request_not_split(self, env):
        hdd = HddArray(env, ndisks=4, stripe_pages=8)
        request = IORequest(IoKind.SEQUENTIAL_READ, 8, 8)
        assert hdd._split(request) == [request]

    def test_ndisks_validation(self, env):
        with pytest.raises(ValueError):
            HddArray(env, ndisks=0)


class TestHddTiming:
    def test_random_read_latency_near_8ms(self, env):
        hdd = HddArray(env)
        request = drive(env, self._one(env, hdd,
                                       IORequest(IoKind.RANDOM_READ, 4096)))
        assert request.latency == pytest.approx(8 / 1015, rel=0.01)

    def test_second_adjacent_read_avoids_seek(self, env):
        hdd = HddArray(env)
        first = IORequest(IoKind.RANDOM_READ, 0)
        second = IORequest(IoKind.RANDOM_READ, 1)
        drive(env, self._one(env, hdd, first))
        drive(env, self._one(env, hdd, second))
        assert second.latency < first.latency / 5

    def test_far_jump_on_same_disk_seeks_again(self, env):
        hdd = HddArray(env, ndisks=8, stripe_pages=8)
        first = IORequest(IoKind.RANDOM_READ, 0)
        far = IORequest(IoKind.RANDOM_READ, 64 * 100)  # disk 0, far LBA
        drive(env, self._one(env, hdd, first))
        drive(env, self._one(env, hdd, far))
        assert far.latency == pytest.approx(first.latency, rel=0.05)

    def test_multipage_spans_disks_in_parallel(self, env):
        hdd = HddArray(env, ndisks=8, stripe_pages=8)
        wide = IORequest(IoKind.SEQUENTIAL_READ, 0, 64)  # one stripe row
        narrow = IORequest(IoKind.SEQUENTIAL_READ, 0, 8)
        t_wide = self._elapsed(hdd, wide)
        t_narrow = self._elapsed(HddArray(Environment(), 8, 8), narrow)
        # 64 pages over 8 drives should take about as long as 8 on one.
        assert t_wide < t_narrow * 2

    @staticmethod
    def _one(env, device, request):
        yield device.submit(request)
        return request

    def _elapsed(self, device, request):
        env = device.env
        start = env.now
        drive(env, self._one(env, device, request))
        return env.now - start


class TestSsdTiming:
    def test_random_read_latency(self, env):
        ssd = Ssd(env)
        request = IORequest(IoKind.RANDOM_READ, 123)

        def proc():
            yield ssd.submit(request)

        drive(env, proc())
        assert request.latency == pytest.approx(8 / 12_182, rel=0.01)

    def test_sequential_cheaper_than_random(self, env):
        ssd = Ssd(env)
        random_req = IORequest(IoKind.RANDOM_READ, 0)
        seq_req = IORequest(IoKind.SEQUENTIAL_READ, 0)
        assert ssd.service_time(seq_req) < ssd.service_time(random_req)

    def test_channel_scaling_preserves_aggregate(self, env):
        narrow = Ssd(env, channels=4)
        wide = Ssd(env, channels=16)
        request = IORequest(IoKind.RANDOM_READ, 0)
        # aggregate IOPS = channels / service: equal by construction.
        assert 4 / narrow.service_time(request) == pytest.approx(
            16 / wide.service_time(request), rel=0.001)

    def test_pending_counts_from_submit_to_completion(self, env):
        ssd = Ssd(env, channels=2)
        for i in range(5):
            ssd.submit(IORequest(IoKind.RANDOM_READ, i))
        assert ssd.pending == 5  # counted at submit time (throttle, §3.3.2)
        env.run()
        assert ssd.pending == 0


class TestStats:
    def test_read_write_page_counts(self, env):
        ssd = Ssd(env)

        def proc():
            yield ssd.read(0, npages=2)
            yield ssd.write(5, npages=3)

        drive(env, proc())
        assert ssd.stats.pages_read == 2
        assert ssd.stats.pages_written == 3
        assert ssd.stats.completed == 2

    def test_by_kind_histogram(self, env):
        ssd = Ssd(env)

        def proc():
            yield ssd.read(0, random=True)
            yield ssd.read(1, random=False)
            yield ssd.write(2, random=True)

        drive(env, proc())
        assert ssd.stats.by_kind[IoKind.RANDOM_READ] == 1
        assert ssd.stats.by_kind[IoKind.SEQUENTIAL_READ] == 1
        assert ssd.stats.by_kind[IoKind.RANDOM_WRITE] == 1


class TestTrafficRecorder:
    def test_buckets_by_completion_time(self):
        recorder = TrafficRecorder(bucket_seconds=1.0)
        recorder.record(0.5, IORequest(IoKind.RANDOM_READ, 0, 4))
        recorder.record(1.5, IORequest(IoKind.RANDOM_WRITE, 0, 2))
        series = recorder.series()
        assert len(series) == 2
        t0, read0, write0 = series[0]
        assert read0 > 0 and write0 == 0
        __, read1, write1 = series[1]
        assert read1 == 0 and write1 > 0

    def test_validates_bucket_size(self):
        import pytest
        with pytest.raises(ValueError):
            TrafficRecorder(0)

    def test_attach_to_device(self, env):
        ssd = Ssd(env)
        recorder = ssd.attach_traffic_recorder(1.0)

        def proc():
            yield ssd.read(0, npages=8)

        drive(env, proc())
        assert recorder.series()
