"""Unit and property tests for the FTL model (DESIGN.md §10).

The invariants here are the ones the LS design's WAF claims rest on:
GC never loses a valid page, the logical mapping survives relocation,
``nand_writes == host_writes + gc_migrated_pages`` exactly, wear stays
level, and the whole model is deterministic under a fixed seed.
"""

import random

import pytest

from repro.sim import Environment
from repro.storage import IoKind, IORequest, Ssd
from repro.storage.ftl import FlashTranslationLayer, FtlConfig
from tests.conftest import drive


def make_ftl(logical_pages=256, **kwargs):
    return FlashTranslationLayer(logical_pages,
                                 FtlConfig(pages_per_block=8, **kwargs))


class TestGeometry:
    def test_physical_exceeds_logical(self):
        ftl = make_ftl(256)
        assert ftl.nblocks * ftl.config.pages_per_block > 256

    def test_floor_guarantees_gc_headroom(self):
        # Even a tiny logical space gets low-water + stream + slack blocks.
        ftl = FlashTranslationLayer(4, FtlConfig(pages_per_block=4))
        assert ftl.nblocks >= 1 + ftl.config.gc_low_water_blocks + 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FtlConfig(pages_per_block=1)
        with pytest.raises(ValueError):
            FtlConfig(op_ratio=0.0)
        with pytest.raises(ValueError):
            FtlConfig(gc_low_water_blocks=0)
        with pytest.raises(ValueError):
            FlashTranslationLayer(0)

    def test_lpn_bounds_checked(self):
        ftl = make_ftl(16)
        with pytest.raises(ValueError):
            ftl.host_write(16)
        with pytest.raises(ValueError):
            ftl.host_read(-1)


class TestGcInvariants:
    def test_gc_never_loses_a_valid_page(self):
        """Random overwrites force heavy GC; every logical page written
        must stay mapped, whatever relocation did to its physical home."""
        ftl = make_ftl(128)
        rng = random.Random(42)
        written = set()
        for _ in range(4_000):
            lpn = rng.randrange(128)
            ftl.host_write(lpn)
            written.add(lpn)
        assert ftl.stats.gc_runs > 0, "workload never triggered GC"
        assert ftl.mapped_pages == len(written)
        ftl.check()

    def test_mapping_consistent_under_relocation(self):
        """check() proves the lpn->ppn and ppn->lpn views stay inverse
        bijections while GC shuffles physical pages underneath."""
        ftl = make_ftl(64)
        rng = random.Random(7)
        for step in range(2_000):
            ftl.host_write(rng.randrange(64))
            if step % 100 == 0:
                ftl.check()
        ftl.check()

    def test_waf_identity_exact(self):
        """WAF == nand_writes / host_writes, with nand_writes exactly
        host_writes + gc_migrated_pages — no leaks, no double counting."""
        ftl = make_ftl(128)
        rng = random.Random(3)
        for _ in range(3_000):
            ftl.host_write(rng.randrange(128))
        stats = ftl.stats
        assert stats.nand_writes == stats.host_writes + stats.gc_migrated_pages
        assert ftl.waf == stats.nand_writes / stats.host_writes
        assert ftl.waf > 1.0  # random overwrites must amplify

    def test_wear_stays_level(self):
        """Min-erase free-block allocation bounds the erase-count spread
        under uniform traffic."""
        ftl = make_ftl(128)
        rng = random.Random(11)
        for _ in range(20_000):
            ftl.host_write(rng.randrange(128))
        assert max(ftl.erase_counts()) > 5  # enough wear to mean something
        assert ftl.wear_spread <= 10

    def test_free_pool_never_exhausts_under_gc(self):
        ftl = make_ftl(128, gc_low_water_blocks=2)
        rng = random.Random(5)
        for _ in range(10_000):
            ftl.host_write(rng.randrange(128))
            assert ftl.free_block_count >= 1


class TestTrafficPatterns:
    def test_sequential_log_with_trim_has_unit_waf(self):
        """The LS write pattern: append sequentially, trim before reuse.
        GC victims are fully dead, so nothing migrates and WAF == 1."""
        ftl = make_ftl(256)
        for lap in range(20):
            for lpn in range(256):
                ftl.trim(lpn)
                ftl.host_write(lpn)
        assert ftl.waf == 1.0
        assert ftl.stats.gc_migrated_pages == 0
        assert ftl.wear_spread <= 1
        ftl.check()

    def test_random_overwrite_amplifies_more_than_sequential(self):
        seq, rnd = make_ftl(256), make_ftl(256)
        rng = random.Random(9)
        for lap in range(12):
            for lpn in range(256):
                seq.trim(lpn)
                seq.host_write(lpn)
                rnd.host_write(rng.randrange(256))
        assert rnd.waf > seq.waf + 0.2

    def test_trim_is_metadata_only(self):
        ftl = make_ftl(64)
        for lpn in range(64):
            ftl.host_write(lpn)
        nand_before = (ftl.stats.nand_writes, ftl.stats.nand_reads,
                       ftl.stats.erases)
        for lpn in range(64):
            ftl.trim(lpn)
        assert (ftl.stats.nand_writes, ftl.stats.nand_reads,
                ftl.stats.erases) == nand_before
        assert ftl.stats.trims == 64
        assert ftl.mapped_pages == 0
        ftl.check()

    def test_trim_of_unmapped_page_is_noop(self):
        ftl = make_ftl(64)
        ftl.trim(5)
        assert ftl.stats.trims == 0

    def test_force_gc_reclaims_blocks(self):
        ftl = make_ftl(64)
        for lap in range(3):
            for lpn in range(64):
                ftl.host_write(lpn)
        before = ftl.stats.erases
        work = ftl.force_gc(blocks=2)
        assert work.erases == 2
        assert ftl.stats.erases == before + 2
        ftl.check()


class TestDeterminism:
    def test_identical_runs_produce_identical_snapshots(self):
        def run():
            ftl = make_ftl(128)
            rng = random.Random(20110612)
            for _ in range(5_000):
                lpn = rng.randrange(128)
                if rng.random() < 0.1:
                    ftl.trim(lpn)
                else:
                    ftl.host_write(lpn)
            return ftl.snapshot()

        assert run() == run()


class TestSsdIntegration:
    def test_default_ssd_has_no_ftl_and_keeps_table1_timing(self):
        env = Environment()
        ssd = Ssd(env)
        assert ssd.ftl is None
        read = IORequest(IoKind.RANDOM_READ, 0)
        write = IORequest(IoKind.RANDOM_WRITE, 0)
        assert ssd.service_time(read) == pytest.approx(8 / 12_182, rel=1e-6)
        assert ssd.service_time(write) == pytest.approx(8 / 12_374, rel=1e-6)

    def test_ftl_ssd_requires_logical_pages(self):
        env = Environment()
        with pytest.raises(ValueError):
            Ssd(env, ftl=FtlConfig())

    def test_ftl_ssd_accounts_host_io(self):
        env = Environment()
        ssd = Ssd(env, ftl=FtlConfig(pages_per_block=8), logical_pages=64)

        def proc():
            yield ssd.write(0, npages=4)
            yield ssd.read(0, npages=4)

        drive(env, proc())
        assert ssd.ftl.stats.host_writes == 4
        assert ssd.ftl.stats.host_reads == 4

    def test_gc_cost_lands_on_triggering_write(self):
        """Once the FTL starts erasing, a write is billed the erase time
        on top of its program — the foreground GC stall."""
        env = Environment()
        ssd = Ssd(env, ftl=FtlConfig(pages_per_block=8), logical_pages=64)
        quiet = ssd.service_time(IORequest(IoKind.RANDOM_WRITE, 0))
        rng = random.Random(1)
        stall = 0.0
        for _ in range(2_000):
            t = ssd.service_time(
                IORequest(IoKind.RANDOM_WRITE, rng.randrange(64)))
            stall = max(stall, t)
        assert ssd.ftl.stats.erases > 0
        assert stall > quiet + ssd._block_erase * 0.9

    def test_device_trim_forwards_to_ftl(self):
        env = Environment()
        ssd = Ssd(env, ftl=FtlConfig(pages_per_block=8), logical_pages=64)

        def proc():
            yield ssd.write(0, npages=8)

        drive(env, proc())
        ssd.trim(0, npages=8)
        assert ssd.ftl.stats.trims == 8
        # trim on a black-box Ssd is a no-op, not an error
        Ssd(env).trim(0, npages=8)

    def test_fail_channels_inflates_service_time(self):
        env = Environment()
        ssd = Ssd(env, channels=8)
        request = IORequest(IoKind.RANDOM_READ, 0)
        base = ssd.service_time(request)
        assert ssd.fail_channels(4) == 4
        assert ssd.channels_alive == 4
        assert ssd.service_time(request) == pytest.approx(base * 2.0)

    def test_fail_all_channels_reports_dead(self):
        env = Environment()
        ssd = Ssd(env, channels=2)
        assert ssd.fail_channels(5) == 0
        assert ssd.channels_alive == 0
