"""Smaller §3.3 machinery: SSD partitioning, throttle stats, log sizing."""

from repro.core import SsdDesignConfig
from repro.engine.wal import RECORDS_PER_LOG_PAGE, WriteAheadLog
from tests.conftest import MiniSystem, drive


class TestPartitioning:
    def test_default_is_sixteen_partitions(self):
        assert SsdDesignConfig().partitions == 16

    def test_partition_ops_are_counted(self):
        sys_ = MiniSystem(design="DW", db_pages=500, bp_pages=32,
                          ssd_frames=64, partitions=4)
        for page in range(32):
            drive(sys_.env, sys_.ssd_manager._cache_page(page, 0, False))
        ops = sys_.ssd_manager.table.partition_ops
        assert len(ops) == 4
        assert sum(ops) >= 32

    def test_ops_spread_across_partitions(self):
        """Frames rotate through partitions, so no partition is idle
        under uniform load — the point of §3.3.4."""
        sys_ = MiniSystem(design="DW", db_pages=500, bp_pages=32,
                          ssd_frames=64, partitions=4)
        for page in range(64):
            drive(sys_.env, sys_.ssd_manager._cache_page(page, 0, False))
        assert all(ops > 0 for ops in sys_.ssd_manager.table.partition_ops)


class TestWalSizing:
    def test_long_tail_needs_multiple_log_pages(self, env):
        wal = WriteAheadLog(env)
        n = RECORDS_PER_LOG_PAGE * 3 + 1
        for i in range(n):
            wal.append(i, 1)
        drive(env, wal.force(wal.tail_lsn))
        # One flush, but it had to write ceil(n / per-page) pages.
        assert wal.device.stats.pages_written >= 4

    def test_log_writes_are_sequential(self, env):
        wal = WriteAheadLog(env)
        for round_ in range(5):
            wal.append(round_, 1)
            drive(env, wal.force(wal.tail_lsn))
        stats = wal.device.stats
        from repro.storage.request import IoKind
        assert stats.by_kind[IoKind.SEQUENTIAL_WRITE] == stats.completed


class TestThrottleAccounting:
    def test_declines_counted_not_fatal(self):
        sys_ = MiniSystem(design="DW", db_pages=500, bp_pages=32,
                          ssd_frames=64, throttle_limit=1)
        # Saturate the SSD, then attempt optional caching.
        for i in range(32):
            sys_.ssd_device.read(i)
        result = drive(sys_.env,
                       sys_.ssd_manager._cache_page(400, 0, False))
        assert result is False
        assert sys_.ssd_manager.stats.declined_throttle >= 1
