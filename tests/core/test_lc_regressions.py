"""Regression tests for subtle LC write-back hazards found during
development.  Each of these corresponds to a way the newest copy of a
page could silently become unreachable — the class of bug the paper's
§3.2 checkpoint discussion is about."""

import pytest

from repro.engine.page import Frame
from tests.conftest import MiniSystem, drive, settle


def make_lc(**kwargs):
    defaults = dict(design="LC", db_pages=600, bp_pages=48, ssd_frames=64,
                    dirty_threshold=0.9)
    defaults.update(kwargs)
    return MiniSystem(**defaults)


def evict_dirty(sys_, page_id, version):
    frame = Frame(page_id, version=version)
    frame.dirty = True
    drive(sys_.env, sys_.ssd_manager.on_evict_dirty(frame))


class TestCleanButNewerReCache:
    """A page whose newest copy lives only in the SSD is read back
    *clean*; if its SSD record is then replaced and the page evicted
    clean, the newest version must not be re-cached as clean."""

    def test_clean_evict_of_newer_version_recaches_dirty(self):
        sys_ = make_lc()
        manager = sys_.ssd_manager
        frame = Frame(7, version=3)  # newer than disk (v0), but clean
        drive(sys_.env, manager.on_evict_clean(frame))
        record = manager.table.lookup_valid(7)
        assert record is not None
        assert record.dirty  # must be flushable by cleaner/checkpoint

    def test_clean_evict_of_newer_version_falls_back_to_disk(self):
        """If the SSD cannot take the page, the newest copy goes to disk
        rather than being dropped."""
        sys_ = make_lc(ssd_frames=1)
        manager = sys_.ssd_manager
        # Occupy the single frame with a *dirty* record so the clean
        # heap has no victim.
        evict_dirty(sys_, 1, version=2)
        frame = Frame(7, version=3)
        drive(sys_.env, manager.on_evict_clean(frame))
        assert sys_.disk.disk_version(7) == 3

    def test_recovered_after_checkpoint(self):
        """End-to-end: the re-cached-dirty page survives checkpoint +
        crash."""
        sys_ = make_lc()
        manager = sys_.ssd_manager
        lsn = sys_.wal.append(7, 3)
        drive(sys_.env, sys_.wal.force(lsn))
        frame = Frame(7, version=3)
        drive(sys_.env, manager.on_evict_clean(frame))
        drive(sys_.env, sys_.checkpointer.checkpoint())
        assert sys_.disk.disk_version(7) == 3


class TestCleanerIdentityGuard:
    """The cleaner must not mark a record clean if, during its I/O, the
    record was invalidated and reused for a different page/version."""

    def test_reused_record_is_not_marked_clean(self):
        sys_ = make_lc(dirty_threshold=0.9)
        manager = sys_.ssd_manager
        evict_dirty(sys_, 10, version=1)
        record = manager.table.lookup_valid(10)
        # Simulate what can happen while a clean batch is in flight:
        captured = [(record, record.page_id, record.version)]
        manager.invalidate(10)          # released ...
        evict_dirty(sys_, 99, version=5)  # ... and the frame reused
        reused = manager.table.lookup_valid(99)
        if reused is not record:
            pytest.skip("free list did not reuse the same frame")
        # The cleaner's completion logic must skip it.
        for rec, page_id, version in captured:
            assert not (rec.valid and rec.dirty
                        and rec.page_id == page_id
                        and rec.version == version)

    def test_heavy_churn_preserves_invariants(self):
        sys_ = make_lc(db_pages=400, bp_pages=32, ssd_frames=50,
                       dirty_threshold=0.2)
        sys_.churn(accesses=4_000, write_fraction=0.5, span=200, seed=21)
        sys_.ssd_manager.check_invariants()

    def test_no_dirty_page_stranded_after_checkpoint(self):
        """After a checkpoint, every SSD-resident version must equal its
        disk version (nothing left newer-but-clean)."""
        sys_ = make_lc(db_pages=400, bp_pages=32, ssd_frames=50,
                       dirty_threshold=0.8)
        sys_.churn(accesses=2_000, write_fraction=0.5, span=200, seed=22)
        drive(sys_.env, sys_.checkpointer.checkpoint())
        settle(sys_.env)
        for record in sys_.ssd_manager.table.occupied_records():
            if record.valid:
                assert record.version <= sys_.disk.disk_version(record.page_id)


class TestCleanerConcurrency:
    def test_parallel_cleaner_keeps_up_at_low_lambda(self):
        """A λ=1% setting must actually be enforced under write load —
        the serial-cleaner failure mode let dirty pages pile up
        unboundedly."""
        sys_ = make_lc(ssd_frames=200, dirty_threshold=0.05,
                       cleaner_concurrency=8)
        for page in range(150):
            evict_dirty(sys_, page, version=1)
        settle(sys_.env, 15.0)
        assert sys_.ssd_manager.dirty_frames <= 10
