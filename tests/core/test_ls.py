"""Tests for the log-structured (LS) design (DESIGN.md §10).

The properties under test are LS's contract: admissions batch into
sequential log appends (never random SSD writes), the mapping tolerates
supersede-in-place and tail reclamation, newest-copy pages reach disk
before their log entry is dropped, checkpoints drain staged batches, and
the on-flash journal replays into a warm mapping after a crash.
"""

import random

import pytest

from repro.core import DESIGNS
from repro.core.ls import LogStructuredManager
from repro.storage import IoKind
from tests.conftest import MiniSystem, drive, settle


def ls_system(db_pages=2_000, bp_pages=100, ssd_frames=500, **kwargs):
    return MiniSystem(design="LS", db_pages=db_pages, bp_pages=bp_pages,
                      ssd_frames=ssd_frames, **kwargs)


def admit(system, page_id, version=1, dirty=False, rec_lsn=0):
    """Drive one page admission through the group-commit path."""
    return drive(system.env,
                 system.ssd_manager._cache_page(page_id, version, dirty,
                                                rec_lsn=rec_lsn))


class TestRegistration:
    def test_ls_is_a_registered_design(self):
        assert DESIGNS["LS"] is LogStructuredManager
        assert LogStructuredManager.name == "LS"


class TestGroupCommit:
    def test_single_admission_flushes_on_timeout(self):
        system = ls_system()
        assert admit(system, 7) is True
        manager = system.ssd_manager
        assert manager.contains_valid(7)
        assert manager.used_frames == 1
        assert manager._free_slots == system.ssd_manager.config.ssd_frames - 1

    def test_full_batch_is_striped_sequential_writes(self):
        system = ls_system(ssd_frames=500)
        manager = system.ssd_manager
        batch_pages = manager.config.ls_batch_pages
        procs = [system.env.process(
            manager._cache_page(pid, 1, False)) for pid in range(batch_pages)]
        system.env.run(system.env.all_of(procs))
        assert manager.used_frames == batch_pages
        # One batch, one striped write wave: at most one sequential
        # sub-request per channel, never a random write.
        seq_writes = system.ssd_device.stats.by_kind.get(
            IoKind.SEQUENTIAL_WRITE, 0)
        assert 1 <= seq_writes <= system.ssd_device.channels.capacity
        assert system.ssd_device.stats.pages_written == batch_pages
        assert system.ssd_device.stats.by_kind.get(IoKind.RANDOM_WRITE, 0) == 0

    def test_log_discipline_no_random_ssd_writes_ever(self):
        system = ls_system()
        system.churn(accesses=4_000, write_fraction=0.4, seed=3)
        assert system.ssd_device.stats.by_kind.get(IoKind.RANDOM_WRITE, 0) == 0
        assert system.ssd_device.stats.by_kind.get(
            IoKind.SEQUENTIAL_WRITE, 0) > 0
        system.ssd_manager.check_invariants()

    def test_admission_flush_hint_closes_partial_batch(self):
        system = ls_system()
        manager = system.ssd_manager
        proc = system.env.process(manager._cache_page(3, 1, False))
        system.env.run(until=1e-6)  # staged, batch still open
        assert manager._batch is not None and manager._batch.entries
        manager.admission_flush_hint()
        assert manager._batch is None
        system.env.run(proc)
        assert proc.value is True
        assert manager.contains_valid(3)

    def test_hint_without_batch_is_noop(self):
        system = ls_system()
        system.ssd_manager.admission_flush_hint()  # must not raise


class TestSupersede:
    def test_readmission_supersedes_in_place(self):
        system = ls_system()
        manager = system.ssd_manager
        assert admit(system, 9, version=1, dirty=True)
        assert admit(system, 9, version=2, dirty=True)
        record = manager.table.lookup_valid(9)
        assert record is not None and record.version == 2
        # The old entry died where it lay: both slots stay consumed.
        assert manager._free_slots == manager.config.ssd_frames - 2
        assert manager.table.invalid_count == 1
        manager.check_invariants()

    def test_invalidate_is_logical(self):
        system = ls_system()
        manager = system.ssd_manager
        assert admit(system, 4, version=1)
        free_before = manager._free_slots
        manager.invalidate(4)
        assert not manager.contains_valid(4)
        assert manager._free_slots == free_before  # slot freed only at tail
        assert manager.stats.invalidations == 1


class TestTailReclaim:
    def test_wraparound_reclaims_segments(self):
        # DB far larger than the log forces the head all the way around.
        system = ls_system(db_pages=2_000, bp_pages=50, ssd_frames=200)
        system.churn(accesses=6_000, write_fraction=0.4, seed=11)
        manager = system.ssd_manager
        assert manager.stats.cleaner_ios > 0, "log never wrapped"
        assert manager.used_frames == (manager.config.ssd_frames
                                       - manager._free_slots)
        manager.check_invariants()

    def test_newest_dirty_copy_reaches_disk_before_drop(self):
        """check_invariants() after heavy churn proves no dirty newest
        copy was dropped: a lost version would leave a clean record
        whose version disagrees with disk."""
        system = ls_system(db_pages=1_000, bp_pages=40, ssd_frames=150)
        system.churn(accesses=8_000, write_fraction=0.5, seed=13)
        manager = system.ssd_manager
        assert manager.stats.cleaner_pages > 0, "no dirty flushes happened"
        manager.check_invariants()
        # And the engine still serves reads afterwards.
        system.churn(accesses=500, write_fraction=0.0, seed=14)

    def test_reclaim_trims_the_segment(self):
        from repro.storage.ftl import FtlConfig
        from repro.storage import Ssd
        from repro.sim import Environment

        env = Environment()
        system = MiniSystem(design="LS", db_pages=1_000, bp_pages=40,
                            ssd_frames=150, env=env)
        # Swap in an FTL-backed device before any traffic.
        system.ssd_device = Ssd(env, ftl=FtlConfig(pages_per_block=8),
                                logical_pages=150)
        system.ssd_manager.device = system.ssd_device
        system.churn(accesses=6_000, write_fraction=0.4, seed=17)
        ftl = system.ssd_device.ftl
        assert system.ssd_manager.stats.cleaner_ios > 0
        assert ftl.stats.trims > 0
        # The log pattern keeps device-level WAF at exactly 1.0.
        assert ftl.waf == pytest.approx(1.0)


class TestCheckpoint:
    def test_oldest_dirty_lsn_includes_staged_batches(self):
        system = ls_system()
        manager = system.ssd_manager
        system.env.process(manager._cache_page(2, 1, True, rec_lsn=5))
        system.env.run(until=1e-6)  # staged but not yet flushed
        assert manager.oldest_dirty_rec_lsn() == 5

    def test_checkpoint_drains_all_dirty_entries(self):
        system = ls_system(db_pages=1_000, bp_pages=40, ssd_frames=300)
        system.churn(accesses=3_000, write_fraction=0.5, seed=19)
        manager = system.ssd_manager
        # The background reclaimer may have cleaned everything the churn
        # left behind; stage fresh dirty entries the checkpoint must
        # drain (version far above anything the churn produced, pages
        # not resident in the pool — these admissions bypass the BP).
        pids = [p for p in range(system.disk.npages)
                if system.bp.get_resident(p) is None][:24]
        for pid in pids:
            assert admit(system, pid, version=1_000, dirty=True,
                         rec_lsn=7)
        assert manager.dirty_frames > 0
        drive(system.env, manager.on_checkpoint())
        assert manager.dirty_frames == 0
        manager.check_invariants()


class TestDetach:
    def test_ssd_die_degrades_to_no_ssd(self):
        system = ls_system(db_pages=1_000, bp_pages=40, ssd_frames=300)
        system.churn(accesses=2_000, write_fraction=0.5, seed=23)
        manager = system.ssd_manager
        drive(system.env, manager.detach())
        assert manager.detached
        assert manager.used_frames == 0
        assert manager._free_slots == manager.config.ssd_frames
        assert not manager._journal
        # The engine keeps running SSD-less.
        system.churn(accesses=1_000, write_fraction=0.4, seed=24)
        manager.check_invariants()

    def test_admission_declined_after_detach(self):
        system = ls_system()
        drive(system.env, system.ssd_manager.detach())
        assert admit(system, 1) is False


def crash(system):
    """Hard crash, the way System.crash sequences it: DRAM dies first
    (buffer pool), then the SSD manager replays its on-flash journal."""
    system.bp.crash_reset()
    system.ssd_manager.crash_reset()


class TestCrashReplay:
    def _crashed_system(self, seed=29):
        system = ls_system(db_pages=1_000, bp_pages=40, ssd_frames=300)
        system.churn(accesses=3_000, write_fraction=0.5, seed=seed)
        return system

    def test_replay_rebuilds_the_mapping(self):
        system = self._crashed_system()
        manager = system.ssd_manager
        before = {r.page_id: (r.version, r.dirty)
                  for r in manager.table.occupied_records() if r.valid}
        crash(system)  # on_crash replays the journal
        after = {r.page_id: (r.version, r.dirty)
                 for r in manager.table.occupied_records() if r.valid}
        # Every live entry comes back; entries that were only *logically*
        # invalidated (in-DRAM state, lost in the crash) may resurrect —
        # on_restart weeds those out against the redone disk.
        assert before.items() <= after.items()

    def test_on_crash_is_idempotent(self):
        system = self._crashed_system()
        manager = system.ssd_manager
        crash(system)
        once = {r.page_id: r.version
                for r in manager.table.occupied_records() if r.valid}
        manager.on_crash()
        twice = {r.page_id: r.version
                 for r in manager.table.occupied_records() if r.valid}
        assert twice == once

    def test_restart_keeps_only_disk_matching_versions_clean(self):
        system = self._crashed_system()
        manager = system.ssd_manager
        crash(system)
        manager.on_restart(0)
        assert manager.dirty_frames == 0
        for record in manager.table.occupied_records():
            if record.valid:
                assert not record.dirty
                assert record.version == system.disk.disk_version(
                    record.page_id)
        manager.check_invariants()
        # Warm restart: the survivors keep serving hits.
        system.churn(accesses=500, write_fraction=0.2, seed=31)
        manager.check_invariants()


class TestDeterminism:
    def test_identical_seeds_identical_log_state(self):
        def run():
            system = ls_system(db_pages=1_000, bp_pages=40, ssd_frames=200)
            system.churn(accesses=4_000, write_fraction=0.4, seed=37)
            manager = system.ssd_manager
            return (manager._head, manager._free_slots,
                    manager.stats.writes, manager.stats.cleaner_pages,
                    sorted(manager._journal.items()),
                    system.env.now)

        assert run() == run()
