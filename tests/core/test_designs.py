"""Behavioural tests for the four designs: the §2.3/§2.5 contracts."""

import pytest

from repro.engine.page import Frame
from tests.conftest import MiniSystem, drive, settle


def evict_dirty(sys_, page_id, version=1, sequential=False):
    frame = Frame(page_id, version=version, sequential=sequential)
    frame.dirty = True
    drive(sys_.env, sys_.ssd_manager.on_evict_dirty(frame))
    return frame


def evict_clean(sys_, page_id, version=0, sequential=False):
    frame = Frame(page_id, version=version, sequential=sequential)
    drive(sys_.env, sys_.ssd_manager.on_evict_clean(frame))
    return frame


class TestCleanWrite:
    def test_dirty_eviction_goes_to_disk_only(self):
        sys_ = MiniSystem(design="CW", ssd_frames=64)
        evict_dirty(sys_, 7)
        assert sys_.disk.disk_version(7) == 1
        assert not sys_.ssd_manager.contains_valid(7)
        assert sys_.ssd_device.stats.pages_written == 0

    def test_clean_random_eviction_is_cached(self):
        sys_ = MiniSystem(design="CW", ssd_frames=64)
        # Get past the fill phase so the admission decision is real.
        sys_.ssd_manager.config.fill_threshold = 0.0
        evict_clean(sys_, 7, sequential=False)
        assert sys_.ssd_manager.contains_valid(7)

    def test_clean_sequential_eviction_rejected(self):
        sys_ = MiniSystem(design="CW", ssd_frames=64)
        sys_.ssd_manager.config.fill_threshold = 0.0
        evict_clean(sys_, 7, sequential=True)
        assert not sys_.ssd_manager.contains_valid(7)

    def test_ssd_copies_always_match_disk(self):
        sys_ = MiniSystem(design="CW", db_pages=600, bp_pages=48,
                          ssd_frames=128)
        sys_.churn(accesses=2_000, write_fraction=0.4)
        for record in sys_.ssd_manager.table.occupied_records():
            if record.valid:
                assert record.version == sys_.disk.disk_version(record.page_id)


class TestDualWrite:
    def test_dirty_eviction_writes_both(self):
        sys_ = MiniSystem(design="DW", ssd_frames=64)
        evict_dirty(sys_, 7)
        assert sys_.disk.disk_version(7) == 1
        assert sys_.ssd_manager.contains_valid(7)
        record = sys_.ssd_manager.table.lookup(7)
        assert not record.dirty  # write-through: the SSD copy is clean

    def test_writes_overlap(self):
        """Disk and SSD writes are issued in parallel, not serially."""
        sys_ = MiniSystem(design="DW", ssd_frames=64)
        evict_dirty(sys_, 7)
        elapsed = sys_.env.now
        # A serial disk-then-SSD write would exceed the disk write alone
        # by the SSD service time; parallel writes complete in
        # max(disk, ssd) = disk time.
        disk_only = 8 / 895.0
        assert elapsed == pytest.approx(disk_only, rel=0.1)

    def test_sequential_dirty_page_skips_ssd(self):
        sys_ = MiniSystem(design="DW", ssd_frames=64)
        sys_.ssd_manager.config.fill_threshold = 0.0
        evict_dirty(sys_, 7, sequential=True)
        assert sys_.disk.disk_version(7) == 1
        assert not sys_.ssd_manager.contains_valid(7)

    def test_checkpoint_write_primes_ssd_with_random_pages(self):
        """§3.2: checkpointed dirty random pages also go to the SSD."""
        sys_ = MiniSystem(design="DW", ssd_frames=64)
        frame = Frame(9, version=2, sequential=False)
        frame.dirty = True
        drive(sys_.env, sys_.ssd_manager.checkpoint_write(frame))
        assert sys_.disk.disk_version(9) == 2
        assert sys_.ssd_manager.contains_valid(9)

    def test_checkpoint_write_sequential_page_disk_only(self):
        sys_ = MiniSystem(design="DW", ssd_frames=64)
        frame = Frame(9, version=2, sequential=True)
        frame.dirty = True
        drive(sys_.env, sys_.ssd_manager.checkpoint_write(frame))
        assert sys_.disk.disk_version(9) == 2
        assert not sys_.ssd_manager.contains_valid(9)


class TestLazyCleaning:
    def make(self, **kwargs):
        defaults = dict(design="LC", db_pages=600, bp_pages=48,
                        ssd_frames=64, dirty_threshold=0.5)
        defaults.update(kwargs)
        return MiniSystem(**defaults)

    def test_dirty_eviction_goes_to_ssd_only(self):
        sys_ = self.make()
        evict_dirty(sys_, 7)
        assert sys_.disk.disk_version(7) == 0  # not written to disk
        record = sys_.ssd_manager.table.lookup(7)
        assert record.valid and record.dirty and record.version == 1

    def test_fallback_to_disk_during_checkpoint(self):
        sys_ = self.make()
        sys_.bp.checkpoint_active = True
        evict_dirty(sys_, 7)
        assert sys_.disk.disk_version(7) == 1
        assert not sys_.ssd_manager.contains_valid(7)
        assert sys_.ssd_manager.stats.fallback_disk_writes == 1

    def test_cleaner_drains_to_just_below_lambda(self):
        sys_ = self.make(dirty_threshold=0.25)  # limit = 16 of 64
        for page in range(40):
            evict_dirty(sys_, page, version=1)
        settle(sys_.env, 10.0)
        assert sys_.ssd_manager.dirty_frames <= 16
        # Cleaned pages reached the disk.
        cleaned = [p for p in range(40) if sys_.disk.disk_version(p) == 1]
        assert len(cleaned) >= 24

    def test_group_cleaning_batches_consecutive_addresses(self):
        sys_ = self.make(dirty_threshold=0.25, group_clean_pages=8)
        for page in range(40):
            evict_dirty(sys_, page, version=1)
        settle(sys_.env, 10.0)
        stats = sys_.ssd_manager.stats
        assert stats.cleaner_pages > 0
        # Consecutive dirty pages were grouped: fewer I/Os than pages.
        assert stats.cleaner_ios < stats.cleaner_pages

    def test_cleaned_pages_remain_cached_as_clean(self):
        sys_ = self.make(dirty_threshold=0.25)
        for page in range(40):
            evict_dirty(sys_, page, version=1)
        settle(sys_.env, 10.0)
        record = sys_.ssd_manager.table.lookup_valid(0)
        assert record is not None and not record.dirty

    def test_newer_ssd_version_bypasses_throttle(self):
        sys_ = self.make()
        evict_dirty(sys_, 7)  # SSD v1, disk v0
        sys_.ssd_manager.config.throttle_limit = 1
        for i in range(8):
            sys_.env.process(sys_.ssd_manager._raw_ssd_read(i % 4))

        def proc():
            return (yield from sys_.ssd_manager.try_read(7))

        assert drive(sys_.env, proc()) == 1


class TestTac:
    def make(self, **kwargs):
        defaults = dict(design="TAC", db_pages=600, bp_pages=48,
                        ssd_frames=64)
        defaults.update(kwargs)
        return MiniSystem(**defaults)

    def test_temperature_bumped_on_miss(self):
        sys_ = self.make()

        def proc():
            yield from sys_.ssd_manager.try_read(5)

        drive(sys_.env, proc())
        assert sys_.ssd_manager.temperature_of(5) > 0

    def test_extent_granularity(self):
        sys_ = self.make()
        manager = sys_.ssd_manager
        assert manager.extent_of(0) == manager.extent_of(31)
        assert manager.extent_of(31) != manager.extent_of(32)

    def test_caches_immediately_after_disk_read(self):
        sys_ = self.make()

        def proc():
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.unpin(frame)

        drive(sys_.env, proc())
        settle(sys_.env)
        assert sys_.ssd_manager.contains_valid(5)

    def test_page_dirtied_before_write_is_skipped(self):
        """§2.5/§4.2: dirty-on-first-touch pages never reach the SSD."""
        sys_ = self.make()

        def proc():
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.mark_dirty(frame)  # dirtied before TAC's write runs
            sys_.bp.unpin(frame)

        drive(sys_.env, proc())
        settle(sys_.env)
        assert not sys_.ssd_manager.contains_valid(5)
        assert sys_.ssd_manager.stats.missed_dirty_writes == 1

    def test_logical_invalidation_wastes_frames(self):
        sys_ = self.make()

        def proc():
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.unpin(frame)
            yield sys_.env.timeout(1.0)  # let TAC cache it
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.mark_dirty(frame)
            sys_.bp.unpin(frame)

        drive(sys_.env, proc())
        assert sys_.ssd_manager.wasted_frames == 1
        assert sys_.ssd_manager.table.free_count < 64

    def test_dirty_eviction_revalidates_invalid_frame(self):
        sys_ = self.make()

        def proc():
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.unpin(frame)
            yield sys_.env.timeout(1.0)
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.mark_dirty(frame)
            sys_.bp.unpin(frame)
            return frame

        frame = drive(sys_.env, proc())
        drive(sys_.env, sys_.ssd_manager.on_evict_dirty(frame))
        record = sys_.ssd_manager.table.lookup_valid(5)
        assert record is not None
        assert record.version == frame.version
        assert sys_.disk.disk_version(5) == frame.version

    def test_dirty_eviction_without_invalid_copy_skips_ssd(self):
        sys_ = self.make()
        frame = Frame(9, version=3)
        frame.dirty = True
        drive(sys_.env, sys_.ssd_manager.on_evict_dirty(frame))
        assert sys_.disk.disk_version(9) == 3
        assert not sys_.ssd_manager.contains_valid(9)

    def test_latch_held_during_post_read_write(self):
        """The §2.5 latch-contention effect: a concurrent fetch of the
        page TAC is writing to the SSD must wait."""
        sys_ = self.make()

        def first():
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.unpin(frame)

        def second():
            yield sys_.env.timeout(0.00001)
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.unpin(frame)

        sys_.env.process(first())
        sys_.env.process(second())
        settle(sys_.env)
        assert sys_.bp.stats.latch_waits >= 1

    def test_replacement_may_evict_valid_over_invalid(self):
        """§4.2: TAC's temperature heap ignores validity, so a valid page
        can be replaced while invalid ones linger."""
        sys_ = self.make(ssd_frames=4)
        manager = sys_.ssd_manager
        manager.config.fill_threshold = 1.0
        # Fill 4 frames via the TAC cache path with rising temperatures.
        for page in (0, 32, 64, 96):
            manager.temperatures[manager.extent_of(page)] = 10.0 + page
            drive(sys_.env, manager._cache_tac(page, 0))
        # Invalidate the hottest page: frame stays occupied.
        manager.invalidate(96)
        assert manager.wasted_frames == 1
        # A new hot page must evict the *coldest* (page 0, valid), not
        # the invalid frame.
        manager.temperatures[manager.extent_of(200)] = 500.0
        drive(sys_.env, manager._cache_tac(200, 0))
        assert not manager.contains_valid(0)
        assert manager.wasted_frames == 1  # invalid frame still wasted
