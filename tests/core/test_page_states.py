"""Property tests for the paper's Figure 3: the six legal relationships
among the (up to) three copies of a page — memory, SSD, disk.

Legal states (P' denotes a newer version):

=====  =========  =====  =====
Case   Memory     SSD    Disk
=====  =========  =====  =====
1      P          —      P
2      P'         —      P
3      —          P      P
4      —          P'     P      (LC only)
5      P          P      P
6      P'         P'     P      (LC only)
=====  =========  =====  =====

Never legal: a memory copy differing from a valid SSD copy (dirtying
invalidates the SSD copy first), or a valid clean SSD copy differing
from disk.  CW/DW/TAC additionally never hold an SSD copy newer than
disk (cases 4 and 6 are LC-only).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import MiniSystem, settle


def classify(sys_, page_id):
    """Map a page's current copies onto a Figure 3 case number."""
    frame = sys_.bp.get_resident(page_id)
    record = sys_.ssd_manager.table.lookup_valid(page_id)
    disk_version = sys_.disk.disk_version(page_id)
    mem = frame.version if frame is not None else None
    ssd = record.version if record is not None else None
    if mem is not None and ssd is None:
        return 1 if mem == disk_version else 2
    if mem is None and ssd is not None:
        return 3 if ssd == disk_version else 4
    if mem is not None and ssd is not None:
        if mem != ssd:
            return None  # illegal
        return 5 if mem == disk_version else 6
    return 0  # only the disk copy exists


def run_random_workload(design, seed, accesses=1_200):
    sys_ = MiniSystem(design=design, db_pages=400, bp_pages=32,
                      ssd_frames=100)
    rng = random.Random(seed)

    def worker():
        for _ in range(accesses // 4):
            pid = rng.randrange(200)
            frame = yield from sys_.bp.fetch(pid)
            if rng.random() < 0.4:
                sys_.bp.mark_dirty(frame)
            sys_.bp.unpin(frame)

    procs = [sys_.env.process(worker()) for _ in range(4)]
    sys_.env.run(sys_.env.all_of(procs))
    settle(sys_.env)
    return sys_


class TestFigure3:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_lc_reaches_only_legal_states(self, seed):
        sys_ = run_random_workload("LC", seed)
        for page in range(400):
            case = classify(sys_, page)
            assert case in (0, 1, 2, 3, 4, 5, 6), (page, case)
        sys_.ssd_manager.check_invariants()

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           design=st.sampled_from(["CW", "DW"]))
    def test_cw_dw_never_reach_cases_4_and_6(self, seed, design):
        """Write-through designs keep SSD == disk: only cases 1,2,3,5."""
        sys_ = run_random_workload(design, seed)
        for page in range(400):
            case = classify(sys_, page)
            assert case in (0, 1, 2, 3, 5), (design, page, case)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_tac_never_holds_newer_than_disk(self, seed):
        sys_ = run_random_workload("TAC", seed)
        for page in range(400):
            case = classify(sys_, page)
            assert case in (0, 1, 2, 3, 5), (page, case)

    def test_lc_actually_exercises_case_4(self):
        """The write-back design must produce SSD-newer-than-disk pages,
        otherwise the LC-only cases were never tested."""
        sys_ = run_random_workload("LC", seed=1)
        cases = {classify(sys_, page) for page in range(400)}
        assert 4 in cases or 6 in cases

    def test_dirty_memory_invalidates_ssd_copy_immediately(self):
        sys_ = MiniSystem(design="DW", db_pages=100, bp_pages=16,
                          ssd_frames=50)

        def proc():
            frame = yield from sys_.bp.fetch(1)
            sys_.bp.unpin(frame)
            yield from sys_.ssd_manager._cache_page(1, frame.version, False)
            frame = yield from sys_.bp.fetch(1)
            sys_.bp.mark_dirty(frame)
            sys_.bp.unpin(frame)

        process = sys_.env.process(proc())
        sys_.env.run(process)
        assert not sys_.ssd_manager.contains_valid(1)
