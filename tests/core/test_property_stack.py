"""Property-based whole-stack tests: arbitrary workloads, durable facts.

These drive random fetch/update/commit/checkpoint/crash schedules through
every design and assert the system-level contracts:

* no committed update is ever lost across a crash (WAL + checkpoint
  correctness, including LC's SSD flush);
* the Figure 3 page-copy invariants hold at quiescence;
* the SSD never exceeds its frame budget and its counters stay exact.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SsdDesignConfig
from repro.engine.recovery import simulate_crash_and_recover
from repro.harness.system import System, SystemConfig
from tests.conftest import drive, settle

DESIGNS = ["noSSD", "CW", "DW", "LC", "TAC"]


def build(design, seed):
    rng = random.Random(seed)
    system = System(SystemConfig(
        design=design, db_pages=300, bp_pages=24,
        ssd=SsdDesignConfig(
            ssd_frames=0 if design == "noSSD" else 80,
            dirty_threshold=rng.choice([0.1, 0.5, 0.9]))))
    return system, rng


def random_schedule(system, rng, steps, oracle):
    """One client performing a random mix of operations."""
    def worker():
        for _ in range(steps):
            action = rng.random()
            page = rng.randrange(150)
            if action < 0.55:
                frame = yield from system.bp.fetch(page)
                system.bp.unpin(frame)
            elif action < 0.90:
                frame = yield from system.bp.fetch(page)
                system.bp.mark_dirty(frame)
                written = (frame.page_id, frame.version)
                system.bp.unpin(frame)
                yield from system.wal.force(system.wal.tail_lsn)
                if written[1] > oracle.get(written[0], -1):
                    oracle[written[0]] = written[1]
            elif action < 0.95:
                yield from system.bp.prefetch(page, min(8, 300 - page))
            else:
                yield from system.checkpointer.checkpoint()

    return worker


class TestDurability:
    @settings(max_examples=10, deadline=None)
    @given(design=st.sampled_from(DESIGNS),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_crash_never_loses_committed_updates(self, design, seed):
        system, rng = build(design, seed)
        oracle = {}
        workers = [
            system.env.process(
                random_schedule(system, rng, steps=60, oracle=oracle)())
            for _ in range(3)
        ]
        system.env.run(system.env.all_of(workers))
        settle(system.env)
        drive(system.env, simulate_crash_and_recover(
            system.env, system, committed=oracle))

    @settings(max_examples=8, deadline=None)
    @given(design=st.sampled_from(["CW", "DW", "LC", "TAC"]),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_invariants_and_budgets_after_random_schedule(self, design, seed):
        system, rng = build(design, seed)
        oracle = {}
        workers = [
            system.env.process(
                random_schedule(system, rng, steps=80, oracle=oracle)())
            for _ in range(3)
        ]
        system.env.run(system.env.all_of(workers))
        settle(system.env)
        manager = system.ssd_manager
        manager.check_invariants()
        table = manager.table
        assert table.used_count <= manager.config.ssd_frames
        assert table.used_count + table.free_count == manager.config.ssd_frames
        assert table.valid_count == sum(
            1 for r in table.records if r.valid)
        assert table.dirty_count == sum(
            1 for r in table.records if r.valid and r.dirty)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_checkpoint_then_crash_needs_no_redo_for_old_updates(self, seed):
        """Everything before a checkpoint must already be on disk."""
        system, rng = build("LC", seed)
        oracle = {}
        drive(system.env,
              random_schedule(system, rng, steps=80, oracle=oracle)())
        settle(system.env)
        drive(system.env, system.checkpointer.checkpoint())
        settle(system.env)
        for page, version in oracle.items():
            assert system.disk.disk_version(page) >= version
