"""Tests for the related-work designs (paper §5): rotating SSD and the
exclusive approach."""

from repro.engine.page import Frame
from repro.engine.recovery import simulate_crash_and_recover
from repro.harness.system import System, SystemConfig
from repro.core import SsdDesignConfig
from tests.conftest import MiniSystem, drive, settle


def evict_clean(sys_, page_id, version=0):
    frame = Frame(page_id, version=version)
    drive(sys_.env, sys_.ssd_manager.on_evict_clean(frame))


def evict_dirty(sys_, page_id, version=1):
    frame = Frame(page_id, version=version)
    frame.dirty = True
    drive(sys_.env, sys_.ssd_manager.on_evict_dirty(frame))


class TestRotating:
    def make(self, frames=4):
        return MiniSystem(design="ROT", db_pages=500, bp_pages=32,
                          ssd_frames=frames)

    def test_frames_claimed_in_rotation(self):
        sys_ = self.make(frames=4)
        for page in range(4):
            evict_clean(sys_, page)
        assert [r.page_id for r in sys_.ssd_manager.table.records] == [0, 1, 2, 3]

    def test_rotation_displaces_even_hot_pages(self):
        """The design's defining weakness: the pointer evicts whatever is
        in the next frame, hot or not."""
        sys_ = self.make(frames=2)
        evict_clean(sys_, 0)
        evict_clean(sys_, 1)
        # Make page 0 hot.
        drive(sys_.env, sys_.ssd_manager.try_read(0))
        drive(sys_.env, sys_.ssd_manager.try_read(0))
        evict_clean(sys_, 9)  # rotates into frame 0, displacing hot page 0
        assert not sys_.ssd_manager.contains_valid(0)
        assert sys_.ssd_manager.contains_valid(9)

    def test_ssd_writes_are_sequential(self):
        sys_ = self.make(frames=8)
        for page in range(8):
            evict_clean(sys_, page)
        from repro.storage.request import IoKind
        stats = sys_.ssd_device.stats
        assert stats.by_kind[IoKind.SEQUENTIAL_WRITE] == 8
        assert stats.by_kind[IoKind.RANDOM_WRITE] == 0

    def test_displaced_newer_page_copied_to_disk(self):
        sys_ = self.make(frames=1)
        evict_dirty(sys_, 7, version=3)
        assert sys_.disk.disk_version(7) == 0
        evict_clean(sys_, 8)  # displaces page 7, whose copy is newest
        assert sys_.disk.disk_version(7) == 3

    def test_checkpoint_flushes_dirty_pages(self):
        sys_ = self.make(frames=8)
        for page in range(6):
            evict_dirty(sys_, page, version=2)
        drive(sys_.env, sys_.checkpointer.checkpoint())
        assert sys_.ssd_manager.dirty_frames == 0
        for page in range(6):
            assert sys_.disk.disk_version(page) == 2


class TestExclusive:
    def make(self, frames=64):
        return MiniSystem(design="EXCL", db_pages=500, bp_pages=32,
                          ssd_frames=frames)

    def test_read_removes_ssd_copy(self):
        sys_ = self.make()
        evict_clean(sys_, 5)
        assert sys_.ssd_manager.contains_valid(5)

        def proc():
            return (yield from sys_.ssd_manager.try_read(5))

        assert drive(sys_.env, proc()) == 0
        assert not sys_.ssd_manager.contains_valid(5)

    def test_page_never_in_both_levels(self):
        sys_ = self.make()
        sys_.churn(accesses=2_000, write_fraction=0.3, span=300, seed=17)
        for record in sys_.ssd_manager.table.occupied_records():
            if record.valid:
                assert record.page_id not in sys_.bp.frames, record

    def test_dirty_handoff_marks_memory_frame_dirty(self):
        """Reading the SSD's only newest copy makes the frame dirty so
        durability machinery keeps covering it."""
        sys_ = self.make()
        evict_dirty(sys_, 5, version=4)  # SSD-only newest copy

        def proc():
            frame = yield from sys_.bp.fetch(5)
            sys_.bp.unpin(frame)
            return frame

        frame = drive(sys_.env, proc())
        assert frame.version == 4
        assert frame.dirty
        assert not sys_.ssd_manager.contains_valid(5)

    def test_crash_safety(self):
        system = System(SystemConfig(
            design="EXCL", db_pages=600, bp_pages=48,
            ssd=SsdDesignConfig(ssd_frames=200, dirty_threshold=0.9)))
        import random
        rng = random.Random(23)
        oracle = {}

        def worker():
            for _ in range(300):
                page = rng.randrange(300)
                frame = yield from system.bp.fetch(page)
                if rng.random() < 0.5:
                    system.bp.mark_dirty(frame)
                    written = (frame.page_id, frame.version)
                else:
                    written = None
                system.bp.unpin(frame)
                if written:
                    yield from system.wal.force(system.wal.tail_lsn)
                    oracle[written[0]] = max(oracle.get(written[0], 0),
                                             written[1])

        drive(system.env, worker())
        settle(system.env)
        drive(system.env, system.checkpointer.checkpoint())
        drive(system.env, simulate_crash_and_recover(
            system.env, system, committed=oracle))

    def test_invariants_after_churn(self):
        sys_ = self.make()
        sys_.churn(accesses=2_000, write_fraction=0.4, span=300, seed=29)
        sys_.ssd_manager.check_invariants()
