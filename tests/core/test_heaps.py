"""Unit and property tests for the lazy victim-selection heaps."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heaps import LazyMinHeap
from repro.core.ssd_buffer_table import SsdRecord


def make_records(n):
    records = []
    for i in range(n):
        record = SsdRecord(i)
        record.page_id = i
        record.valid = True
        records.append(record)
    return records


def clean_heap():
    return LazyMinHeap(key=lambda r: r.lru2_key(),
                       member=lambda r: r.valid and not r.dirty)


class TestBasics:
    def test_pop_returns_minimum(self):
        heap = clean_heap()
        records = make_records(3)
        for record, access in zip(records, (5.0, 1.0, 3.0)):
            record.prev_access = access
            heap.push(record)
        assert heap.pop() is records[1]
        assert heap.pop() is records[2]
        assert heap.pop() is records[0]
        assert heap.pop() is None

    def test_repush_updates_priority(self):
        heap = clean_heap()
        records = make_records(2)
        records[0].prev_access = 1.0
        records[1].prev_access = 2.0
        heap.push(records[0])
        heap.push(records[1])
        records[0].prev_access = 9.0
        heap.push(records[0])  # re-accessed: now hottest
        assert heap.pop() is records[1]

    def test_remove_makes_entry_stale(self):
        heap = clean_heap()
        records = make_records(2)
        records[0].prev_access = 1.0
        records[1].prev_access = 2.0
        for record in records:
            heap.push(record)
        heap.remove(records[0])
        assert heap.pop() is records[1]

    def test_member_filter_drops_non_members(self):
        heap = clean_heap()
        records = make_records(2)
        for record in records:
            heap.push(record)
        records[0].dirty = True  # no longer belongs to the clean heap
        assert heap.pop() is records[1]

    def test_key_drift_reinserts(self):
        """If a record's key changed since push (TAC temperatures only
        grow), pop must still return the true minimum."""
        temps = {0: 1.0, 1: 2.0}
        heap = LazyMinHeap(key=lambda r: temps[r.frame_no],
                           member=lambda r: True)
        records = make_records(2)
        heap.push(records[0])
        heap.push(records[1])
        temps[0] = 10.0  # record 0 got hot after push
        assert heap.pop() is records[1]

    def test_peek_does_not_remove(self):
        heap = clean_heap()
        record = make_records(1)[0]
        record.prev_access = 1.0
        heap.push(record)
        assert heap.peek() is record
        assert heap.pop() is record

    def test_clear(self):
        heap = clean_heap()
        for record in make_records(3):
            heap.push(record)
        heap.clear()
        assert heap.pop() is None


class TestPropertyBased:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=40, unique=True))
    def test_pops_in_sorted_order(self, accesses):
        heap = clean_heap()
        records = make_records(len(accesses))
        for record, access in zip(records, accesses):
            record.prev_access = access
            heap.push(record)
        popped = []
        while True:
            record = heap.pop()
            if record is None:
                break
            popped.append(record.prev_access)
        assert popped == sorted(accesses)

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_matches_reference_under_mixed_ops(self, data):
        """Interleave push/remove/pop and compare against a brute-force
        reference implementation."""
        heap = clean_heap()
        records = make_records(20)
        live = {}
        ops = data.draw(st.lists(st.tuples(
            st.sampled_from(["push", "remove", "pop"]),
            st.integers(min_value=0, max_value=19),
            st.floats(min_value=0, max_value=100)), max_size=60))
        for op, index, access in ops:
            record = records[index]
            if op == "push":
                record.prev_access = access
                heap.push(record)
                live[index] = access
            elif op == "remove":
                heap.remove(record)
                live.pop(index, None)
            else:
                expected = (min(live, key=lambda i: (live[i], ))
                            if live else None)
                actual = heap.pop()
                if expected is None:
                    assert actual is None
                else:
                    assert actual.prev_access == min(live.values())
                    live.pop(actual.frame_no)


class TestCompaction:
    """The lazy heap must not grow without bound under churn."""

    def test_heap_length_stays_bounded_under_churn(self):
        heap = clean_heap()
        records = make_records(10)
        # Re-push the same 10 records thousands of times: without
        # compaction the heap would hold ~10,000 stale entries.
        for round_no in range(1_000):
            for record in records:
                record.prev_access = float(round_no)
                heap.push(record)
        assert heap.live_count == 10
        assert len(heap) <= max(LazyMinHeap.MIN_COMPACT, 2 * 10) + 10

    def test_remove_churn_stays_bounded(self):
        heap = clean_heap()
        records = make_records(4)
        for round_no in range(2_000):
            for record in records:
                record.prev_access = float(round_no)
                heap.push(record)
            for record in records[:3]:
                heap.remove(record)
        assert heap.live_count == 1
        assert len(heap) <= LazyMinHeap.MIN_COMPACT + 2 * 4 + 4

    def test_compaction_preserves_pop_order(self):
        heap = clean_heap()
        records = make_records(50)
        for round_no in range(200):
            for record in records:
                record.prev_access = float(round_no * 50 + record.frame_no)
                heap.push(record)
        popped = []
        while True:
            record = heap.pop()
            if record is None:
                break
            popped.append(record.frame_no)
        # Final keys are round 199's: ordered by frame_no.
        assert popped == list(range(50))

    def test_small_heaps_never_compact(self):
        heap = clean_heap()
        records = make_records(2)
        for round_no in range(10):
            for record in records:
                record.prev_access = float(round_no)
                heap.push(record)
        # 20 entries, 18 stale: below MIN_COMPACT, left alone.
        assert len(heap) == 20
