"""Unit tests for the SSD buffer table (Figure 4 structures)."""

import pytest

from repro.core.ssd_buffer_table import SsdBufferTable, SsdRecord


@pytest.fixture
def table():
    return SsdBufferTable(nframes=8, partitions=4)


class TestFreeList:
    def test_starts_fully_free(self, table):
        assert table.free_count == 8
        assert table.used_count == 0

    def test_take_free_depletes(self, table):
        taken = [table.take_free() for _ in range(8)]
        assert all(record is not None for record in taken)
        assert table.take_free() is None

    def test_release_returns_to_free_list(self, table):
        record = table.take_free()
        table.install(record, page_id=5, version=1, dirty=False, now=0.0)
        table.release(record)
        assert table.free_count == 8
        assert table.lookup(5) is None


class TestInstallLookup:
    def test_lookup_finds_installed(self, table):
        record = table.take_free()
        table.install(record, page_id=7, version=2, dirty=True, now=1.0)
        found = table.lookup(7)
        assert found is record
        assert found.version == 2
        assert found.dirty

    def test_lookup_valid_filters_invalid(self, table):
        record = table.take_free()
        table.install(record, 7, 1, False, 0.0)
        table.invalidate_logical(record)
        assert table.lookup(7) is record
        assert table.lookup_valid(7) is None

    def test_install_over_occupied_rejected(self, table):
        record = table.take_free()
        table.install(record, 1, 1, False, 0.0)
        with pytest.raises(ValueError):
            table.install(record, 2, 1, False, 0.0)

    def test_partition_assignment_is_stable(self, table):
        record = table.records[5]
        assert table.partition_of(record) == 5 % 4


class TestCounters:
    def fill(self, table, n, dirty_every=2):
        for i in range(n):
            record = table.take_free()
            table.install(record, i, 1, dirty=(i % dirty_every == 0), now=0.0)

    def test_valid_and_dirty_counts(self, table):
        self.fill(table, 6)
        assert table.used_count == 6
        assert table.valid_count == 6
        assert table.dirty_count == 3

    def test_invalidate_logical_updates_counts(self, table):
        self.fill(table, 4)
        table.invalidate_logical(table.lookup(0))
        assert table.valid_count == 3
        assert table.invalid_count == 1
        assert table.dirty_count == 1

    def test_set_dirty_toggles_count(self, table):
        self.fill(table, 2, dirty_every=1)
        record = table.lookup(0)
        table.set_dirty(record, False)
        assert table.dirty_count == 1
        table.set_dirty(record, False)  # idempotent
        assert table.dirty_count == 1
        table.set_dirty(record, True)
        assert table.dirty_count == 2

    def test_release_dirty_updates_counts(self, table):
        self.fill(table, 2, dirty_every=1)
        table.release(table.lookup(0))
        assert table.dirty_count == 1
        assert table.used_count == 1

    def test_counters_match_brute_force(self, table):
        self.fill(table, 8, dirty_every=3)
        table.invalidate_logical(table.lookup(1))
        table.release(table.lookup(2))
        expected_valid = sum(1 for r in table.records if r.valid)
        expected_dirty = sum(1 for r in table.records if r.valid and r.dirty)
        assert table.valid_count == expected_valid
        assert table.dirty_count == expected_dirty


class TestRevalidate:
    def test_revalidate_invalid_record(self, table):
        record = table.take_free()
        table.install(record, 9, 1, False, 0.0)
        table.invalidate_logical(record)
        table.revalidate(record, version=5, now=2.0)
        assert record.valid
        assert record.version == 5
        assert table.valid_count == 1

    def test_revalidate_valid_record_rejected(self, table):
        record = table.take_free()
        table.install(record, 9, 1, False, 0.0)
        with pytest.raises(ValueError):
            table.revalidate(record, 2, 0.0)


class TestClearAndLru:
    def test_clear_resets_everything(self, table):
        for i in range(4):
            table.install(table.take_free(), i, 1, False, 0.0)
        table.clear()
        assert table.free_count == 8
        assert table.valid_count == 0
        assert table.dirty_count == 0
        assert all(not r.occupied for r in table.records)

    def test_record_access_history(self):
        record = SsdRecord(0)
        record.record_access(1.0)
        record.record_access(2.0)
        assert record.lru2_key() == 1.0
        assert record.last_access == 2.0
