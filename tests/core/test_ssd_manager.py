"""Unit tests for the shared SSD-manager machinery."""

import pytest

from tests.conftest import MiniSystem, drive


def cached(sys_, page_id, version=0, dirty=False):
    """Drive the manager's cache path directly."""
    return drive(sys_.env,
                 sys_.ssd_manager._cache_page(page_id, version, dirty))


@pytest.fixture
def dw():
    return MiniSystem(design="DW", db_pages=500, bp_pages=32, ssd_frames=16)


class TestTryRead:
    def test_absent_page_returns_none(self, dw):
        def proc():
            return (yield from dw.ssd_manager.try_read(1))

        assert drive(dw.env, proc()) is None

    def test_cached_page_served(self, dw):
        cached(dw, 1, version=0)

        def proc():
            return (yield from dw.ssd_manager.try_read(1))

        assert drive(dw.env, proc()) == 0
        assert dw.ssd_manager.stats.reads == 1

    def test_read_for_correctness_requires_presence(self, dw):
        def proc():
            yield from dw.ssd_manager.read_for_correctness(99)

        with pytest.raises(LookupError):
            drive(dw.env, proc())


class TestCaching:
    def test_cache_installs_and_writes(self, dw):
        assert cached(dw, 3) is True
        assert dw.ssd_manager.contains_valid(3)
        assert dw.ssd_device.stats.pages_written == 1

    def test_recache_same_version_is_free(self, dw):
        cached(dw, 3)
        writes = dw.ssd_device.stats.pages_written
        assert cached(dw, 3) is True
        assert dw.ssd_device.stats.pages_written == writes

    def test_full_ssd_evicts_lru2_victim(self, dw):
        for page in range(16):
            cached(dw, page)
        # Re-read page 0 so it has a two-access history (hot).
        drive(dw.env, dw.ssd_manager.try_read(0))
        assert cached(dw, 100) is True
        assert dw.ssd_manager.stats.evictions == 1
        assert dw.ssd_manager.contains_valid(0)
        assert dw.ssd_manager.contains_valid(100)

    def test_throttle_declines_optional_io(self, dw):
        dw.ssd_manager.config.throttle_limit = 1
        # Saturate the SSD with background reads.
        for i in range(16):
            cached(dw, i)
        for i in range(16):
            dw.env.process(dw.ssd_manager.try_read(i))
        before = dw.ssd_manager.stats.declined_throttle
        result = cached(dw, 200)
        assert result is False
        assert dw.ssd_manager.stats.declined_throttle > before


class TestInvalidation:
    def test_invalidate_frees_frame_physically(self, dw):
        cached(dw, 5)
        dw.ssd_manager.invalidate(5)
        assert not dw.ssd_manager.contains_valid(5)
        assert dw.ssd_manager.table.free_count == 16
        assert dw.ssd_manager.stats.invalidations == 1

    def test_invalidate_absent_is_noop(self, dw):
        dw.ssd_manager.invalidate(5)
        assert dw.ssd_manager.stats.invalidations == 0


class TestTrimPlan:
    def test_all_disk_when_ssd_empty(self, dw):
        plan = dw.ssd_manager.trim_plan(list(range(10, 18)))
        assert (plan.disk_start, plan.disk_count) == (10, 8)
        assert not plan.ssd_pages

    def test_leading_and_trailing_trim(self, dw):
        cached(dw, 10)
        cached(dw, 11)
        cached(dw, 17)
        plan = dw.ssd_manager.trim_plan(list(range(10, 18)))
        assert (plan.disk_start, plan.disk_count) == (12, 5)
        assert sorted(plan.ssd_pages) == [10, 11, 17]

    def test_middle_same_version_stays_in_disk_run(self, dw):
        cached(dw, 14)  # middle page, same version as disk
        plan = dw.ssd_manager.trim_plan(list(range(10, 18)))
        assert (plan.disk_start, plan.disk_count) == (10, 8)
        assert not plan.ssd_pages

    def test_middle_newer_version_read_from_ssd(self, dw):
        cached(dw, 14, version=3, dirty=True)  # newer than disk (v0)
        plan = dw.ssd_manager.trim_plan(list(range(10, 18)))
        assert plan.disk_count == 8
        assert list(plan.ssd_pages) == [14]
        assert plan.skip_in_run == frozenset({14})

    def test_fully_cached_run_has_no_disk_io(self, dw):
        for page in range(10, 14):
            cached(dw, page)
        plan = dw.ssd_manager.trim_plan(list(range(10, 14)))
        assert plan.disk_count == 0
        assert sorted(plan.ssd_pages) == [10, 11, 12, 13]

    def test_empty_plan(self, dw):
        plan = dw.ssd_manager.trim_plan([])
        assert plan.disk_count == 0


class TestCrashRestart:
    def test_cold_crash_clears_table(self, dw):
        cached(dw, 1)
        dw.ssd_manager.on_crash()
        assert dw.ssd_manager.used_frames == 0

    def test_warm_crash_keeps_clean_drops_dirty(self):
        sys_ = MiniSystem(design="LC", db_pages=500, bp_pages=32,
                          ssd_frames=16, warm_restart=True)
        cached(sys_, 1, version=0, dirty=False)
        cached(sys_, 2, version=4, dirty=True)
        sys_.ssd_manager.on_crash()
        assert sys_.ssd_manager.contains_valid(1)
        assert not sys_.ssd_manager.contains_valid(2)

    def test_restart_drops_stale_clean_frames(self):
        sys_ = MiniSystem(design="DW", db_pages=500, bp_pages=32,
                          ssd_frames=16, warm_restart=True)
        cached(sys_, 1, version=0)
        # Redo advanced the disk past the SSD copy.
        sys_.disk._persist(1, 7)
        sys_.ssd_manager.on_crash()
        sys_.ssd_manager.on_restart(last_checkpoint_lsn=0)
        assert not sys_.ssd_manager.contains_valid(1)


class TestEndToEndInvariants:
    @pytest.mark.parametrize("design", ["CW", "DW", "LC", "TAC"])
    def test_invariants_hold_after_churn(self, design):
        sys_ = MiniSystem(design=design, db_pages=800, bp_pages=64,
                          ssd_frames=200)
        sys_.churn(accesses=3_000, write_fraction=0.3, seed=13)
        sys_.ssd_manager.check_invariants()
