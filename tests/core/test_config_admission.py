"""Unit tests for design configuration and the admission policy."""

import pytest

from repro.core import SsdDesignConfig
from repro.core.admission import AdmissionPolicy
from repro.engine.page import Frame
from repro.engine.readahead import WindowClassifier


class TestConfig:
    def test_paper_defaults(self):
        config = SsdDesignConfig()
        assert config.fill_threshold == 0.95     # τ
        assert config.throttle_limit == 100      # μ
        assert config.partitions == 16           # N
        assert config.group_clean_pages == 32    # α
        assert config.extent_pages == 32

    def test_derived_frame_counts(self):
        config = SsdDesignConfig(ssd_frames=1000, fill_threshold=0.9,
                                 dirty_threshold=0.5, clean_slack=0.01)
        assert config.fill_target_frames == 900
        assert config.dirty_limit_frames == 500
        assert config.clean_target_frames == 490

    def test_clean_target_never_negative(self):
        config = SsdDesignConfig(ssd_frames=10, dirty_threshold=0.0)
        assert config.clean_target_frames == 0

    @pytest.mark.parametrize("kwargs", [
        {"ssd_frames": -1},
        {"fill_threshold": 1.5},
        {"dirty_threshold": -0.1},
        {"throttle_limit": 0},
        {"partitions": 0},
        {"group_clean_pages": 0},
        {"extent_pages": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SsdDesignConfig(**kwargs)


def random_frame(page_id=1):
    return Frame(page_id, sequential=False)


def sequential_frame(page_id=1):
    return Frame(page_id, sequential=True)


class TestAdmission:
    def test_random_pages_admitted_after_fill(self):
        policy = AdmissionPolicy(SsdDesignConfig(ssd_frames=100))
        assert policy.qualifies(random_frame(), ssd_used=100)
        assert policy.admitted == 1

    def test_sequential_pages_rejected_after_fill(self):
        policy = AdmissionPolicy(SsdDesignConfig(ssd_frames=100))
        assert not policy.qualifies(sequential_frame(), ssd_used=100)
        assert policy.rejected == 1

    def test_aggressive_fill_admits_everything(self):
        """§3.3.1: until the SSD reaches τ, all evicted pages qualify."""
        policy = AdmissionPolicy(SsdDesignConfig(ssd_frames=100,
                                                 fill_threshold=0.95))
        assert policy.qualifies(sequential_frame(), ssd_used=50)
        assert policy.fill_admitted == 1

    def test_fill_phase_ends_at_tau(self):
        policy = AdmissionPolicy(SsdDesignConfig(ssd_frames=100,
                                                 fill_threshold=0.95))
        assert not policy.qualifies(sequential_frame(), ssd_used=95)

    def test_zero_frames_rejects_everything(self):
        policy = AdmissionPolicy(SsdDesignConfig(ssd_frames=0))
        assert not policy.qualifies(random_frame(), ssd_used=0)

    def test_window_classifier_override(self):
        """Admission can use the 64-page-window heuristic instead of the
        read-ahead flag (the ablation's 'window' mode)."""
        classifier = WindowClassifier(window=64)
        policy = AdmissionPolicy(SsdDesignConfig(ssd_frames=100),
                                 classifier=classifier)
        # Two adjacent "random" lookups: the window method misclassifies
        # the second as sequential and wrongly rejects it.
        assert policy.qualifies(random_frame(page_id=10), ssd_used=100)
        assert not policy.qualifies(random_frame(page_id=11), ssd_used=100)
