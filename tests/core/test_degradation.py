"""Graceful degradation on SSD death (§2.4), and the fault hardening
around the SSD managers: retry, throttle-preserve, and the LC drain
liveness machinery."""

import random

import pytest

from repro.engine.recovery import RecoveryError
from repro.faults import FaultInjector
from tests.conftest import MiniSystem, drive, settle


def make(design, **kwargs):
    defaults = dict(design=design, db_pages=600, bp_pages=48, ssd_frames=96)
    defaults.update(kwargs)
    return MiniSystem(**defaults)


def kill_ssd(sys_):
    """Attach an injector to the SSD device and fail it permanently."""
    injector = FaultInjector(sys_.env, sys_.ssd_device, random.Random("die"))
    injector.kill()
    return injector


class TestDetachContinuesAsNoSsd:
    @pytest.mark.parametrize("design", ["CW", "DW", "TAC", "LC"])
    def test_detach_then_keep_serving(self, design):
        sys_ = make(design)
        sys_.churn(accesses=600, seed=11)
        drive(sys_.env, sys_.ssd_manager.detach())
        mgr = sys_.ssd_manager
        assert mgr.detached
        assert mgr.used_frames == 0
        assert drive(sys_.env, mgr.try_read(3)) is None
        # The system keeps making progress with the SSD gone.
        sys_.churn(accesses=600, seed=12)
        assert mgr.used_frames == 0  # nothing re-enters the dead SSD
        mgr.check_invariants()

    @pytest.mark.parametrize("design", ["CW", "DW", "TAC"])
    def test_write_through_designs_redo_nothing(self, design):
        """CW/DW/TAC never hold the only copy of a page: detach is just
        forgetting the mapping."""
        sys_ = make(design)
        sys_.churn(accesses=800, seed=21)
        drive(sys_.env, sys_.ssd_manager.detach())
        assert sys_.ssd_manager.stats.detach_redo_pages == 0

    def test_concurrent_detach_callers_coalesce(self):
        sys_ = make("CW")
        sys_.churn(accesses=400, seed=31)
        env, mgr = sys_.env, sys_.ssd_manager
        procs = [env.process(mgr.detach()) for _ in range(4)]
        env.run(env.all_of(procs))
        assert mgr.detached
        assert mgr._detach_complete.triggered


class TestDeviceDeathTriggersDetach:
    @pytest.mark.parametrize("design", ["CW", "DW", "TAC", "LC"])
    def test_io_observing_death_starts_degradation(self, design):
        sys_ = make(design)
        sys_.churn(accesses=800, seed=41)
        assert sys_.ssd_manager.used_frames > 0
        kill_ssd(sys_)
        # Keep working: the next SSD I/O observes the death and detaches.
        sys_.churn(accesses=800, seed=42)
        mgr = sys_.ssd_manager
        assert mgr.detached
        assert mgr.used_frames == 0
        mgr.check_invariants()


class TestLcDegradationRedo:
    def lc_with_dirty_ssd(self, seed=51):
        """An LC system whose SSD holds dirty (newer-than-disk) pages.

        Writers append WAL records before dirtying, as the real buffer
        pool does, so the degradation redo has a durable log to replay.
        """
        sys_ = make("LC", dirty_threshold=0.95)  # keep the cleaner asleep
        env, bp, wal = sys_.env, sys_.bp, sys_.wal
        rng = random.Random(seed)

        def writer():
            for _ in range(300):
                pid = rng.randrange(sys_.disk.npages)
                frame = yield from bp.fetch(pid)
                if rng.random() < 0.5:
                    lsn = bp.mark_dirty(frame)
                    bp.unpin(frame)
                    yield from wal.force(lsn)
                else:
                    bp.unpin(frame)

        procs = [env.process(writer()) for _ in range(4)]
        env.run(env.all_of(procs))
        settle(env)
        return sys_

    def test_detach_redoes_dirty_pages_to_disk(self):
        sys_ = self.lc_with_dirty_ssd()
        mgr, disk = sys_.ssd_manager, sys_.disk
        targets = [(r.page_id, r.version)
                   for r in mgr.table.occupied_records()
                   if r.valid and r.dirty
                   and r.version > disk.disk_version(r.page_id)]
        assert targets, "setup must leave SSD-only page versions behind"
        drive(sys_.env, mgr.detach())
        assert mgr.stats.detach_redo_pages == len(targets)
        for page_id, version in targets:
            assert disk.disk_version(page_id) >= version
        mgr.check_invariants()

    def test_detach_with_truncated_log_raises(self):
        """The §3.2 argument, machine-checked: if the log no longer
        covers a dirty SSD page, the SSD's death loses committed data
        and degradation must fail loudly instead of serving stale
        pages."""
        sys_ = self.lc_with_dirty_ssd(seed=52)
        mgr, wal = sys_.ssd_manager, sys_.wal
        assert mgr.dirty_frames > 0
        wal.truncate(wal.tail_lsn)  # an over-eager "checkpoint"
        with pytest.raises(RecoveryError):
            drive(sys_.env, mgr.detach())
        # Waiters must not hang while the error propagates.
        assert mgr.detached
        assert mgr._detach_complete.triggered
        assert mgr.used_frames == 0

    def test_reads_during_detach_wait_then_fall_back(self):
        sys_ = self.lc_with_dirty_ssd(seed=53)
        env, mgr = sys_.env, sys_.ssd_manager
        detach = env.process(mgr.detach())
        reader = env.process(mgr.try_read(7))
        env.run(env.all_of([detach, reader]))
        assert reader.value is None  # fell back to the now-current disk
        assert reader.ok


class TestThrottlePreserve:
    def test_declined_admission_keeps_the_existing_copy(self, monkeypatch):
        """Regression: the throttle decline must happen *before* the
        existing record is dropped — drop-then-decline destroyed a valid
        SSD copy without replacing it."""
        sys_ = make("CW")
        mgr = sys_.ssd_manager
        assert drive(sys_.env, mgr._cache_page(7, 1, dirty=False))
        # Managers are slotted (RPL002): patch the class, not the instance.
        monkeypatch.setattr(type(mgr), "_throttled", lambda self: True)
        assert not drive(sys_.env, mgr._cache_page(7, 2, dirty=False))
        record = mgr.table.lookup_valid(7)
        assert record is not None and record.version == 1
        assert mgr.stats.throttle_preserved == 1
        assert mgr.stats.declined_throttle == 1

    def test_preserve_counts_only_when_a_copy_existed(self, monkeypatch):
        sys_ = make("CW")
        mgr = sys_.ssd_manager
        monkeypatch.setattr(type(mgr), "_throttled", lambda self: True)
        assert not drive(sys_.env, mgr._cache_page(8, 1, dirty=False))
        assert mgr.stats.declined_throttle == 1
        assert mgr.stats.throttle_preserved == 0


class TestLcDrainLiveness:
    def desynced_lc(self):
        """An LC manager whose dirty heap lost a record the table still
        holds dirty (the desync the reseed machinery exists for)."""
        sys_ = make("LC", dirty_threshold=0.95)
        mgr = sys_.ssd_manager
        drive(sys_.env, mgr._cache_page(5, 3, dirty=True))
        assert mgr.dirty_frames == 1
        mgr.dirty_heap.clear()
        return sys_

    def test_reseed_recovers_a_lost_dirty_record(self):
        sys_ = self.desynced_lc()
        mgr = sys_.ssd_manager
        drive(sys_.env, mgr.on_checkpoint())  # drains all dirty pages
        assert mgr.dirty_frames == 0
        assert mgr.stats.heap_reseeds >= 1
        assert sys_.disk.disk_version(5) == 3

    def test_counter_desync_fails_loudly(self, monkeypatch):
        sys_ = self.desynced_lc()
        mgr = sys_.ssd_manager
        # Table claims dirty pages exist but exposes none: the counters
        # themselves are inconsistent — refuse to spin forever.  The
        # table is slotted, so the sabotage goes on the class.
        monkeypatch.setattr(type(mgr.table), "occupied_records",
                            lambda self: [])
        with pytest.raises(RuntimeError, match="desync"):
            drive(sys_.env, mgr.on_checkpoint())

    def test_healthy_runs_never_reseed(self):
        sys_ = make("LC", dirty_threshold=0.3)
        sys_.churn(accesses=2_000, write_fraction=0.5, seed=61)
        drive(sys_.env, sys_.ssd_manager.on_checkpoint())
        assert sys_.ssd_manager.stats.heap_reseeds == 0
