"""The metrics registry: Counter / Gauge / Histogram with labeled children.

Prometheus-shaped but simulation-native: instruments are plain Python
objects registered by name, optionally fanned out into *labeled children*
(``io_pages_total{device="ssd",kind="random_read"}``).  Values are read
directly (no scrape cycle) and a :meth:`MetricRegistry.snapshot` renders
everything for reports.

The null twins at the bottom (:data:`NULL_REGISTRY` and friends) are the
disabled mode: every factory returns a shared singleton whose mutators do
nothing, so instrumented hot paths cost one no-op method call and zero
allocation when telemetry is off.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple


def percentile_of(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated q-th percentile of a pre-sorted sequence.

    Matches :class:`repro.harness.metrics.LatencyTracker` exactly so the
    two report identical numbers for identical samples.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not sorted_values:
        return float("nan")
    rank = (len(sorted_values) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = labels or {}
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value


class Gauge:
    """A value that can go up and down, or track a callback."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_fn")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = labels or {}
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make the gauge track ``fn()`` instead of a stored value."""
        self._fn = fn

    @property
    def value(self) -> float:
        """Current value (calls the callback if one is set)."""
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """A distribution of observed values with percentile queries.

    Samples are kept raw; the sorted view is cached and invalidated on
    :meth:`observe`, so repeated percentile queries sort at most once.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "_samples", "_sorted", "_sum")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = labels or {}
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._samples.append(value)
        self._sum += value
        self._sorted = None

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._samples)

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    def _sorted_samples(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]; NaN when empty)."""
        return percentile_of(self._sorted_samples(), q)

    def mean(self) -> float:
        """Mean observation (NaN when empty)."""
        return self._sum / len(self._samples) if self._samples else float("nan")

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p95 / p99 in one dict."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricFamily:
    """A named metric with declared label names and per-value children."""

    __slots__ = ("name", "help", "labelnames", "_cls", "_children")

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...], cls: type):
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._cls = cls
        self._children: Dict[Tuple[str, ...], object] = {}

    @property
    def kind(self) -> str:
        """The instrument kind this family fans out ("counter", ...)."""
        return self._cls.kind

    def labels(self, **labelvalues: str):
        """The child instrument for exactly these label values."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._cls(self.name, dict(zip(self.labelnames, key)))
            self._children[key] = child
        return child

    def children(self) -> Iterator[object]:
        """All children created so far, in creation order."""
        return iter(self._children.values())


class MetricRegistry:
    """Registry of all instruments, keyed by metric name.

    Factories are idempotent: asking for an existing name returns the
    existing instrument, provided kind and label names agree (a mismatch
    is a programming error and raises).
    """

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._help: Dict[str, str] = {}

    def _make(self, cls: type, name: str, help_text: str,
              labelnames: Sequence[str]):
        labelnames = tuple(labelnames)
        existing = self._metrics.get(name)
        if existing is not None:
            want_family = bool(labelnames)
            is_family = isinstance(existing, MetricFamily)
            if (existing.kind != cls.kind or want_family != is_family
                    or (is_family and existing.labelnames != labelnames)):
                raise ValueError(
                    f"metric {name!r} already registered with a "
                    f"different kind or labels")
            return existing
        metric = (MetricFamily(name, help_text, labelnames, cls)
                  if labelnames else cls(name))
        self._metrics[name] = metric
        self._help[name] = help_text
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()):
        """Register (or fetch) a counter; labeled names return a family."""
        return self._make(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()):
        """Register (or fetch) a gauge; labeled names return a family."""
        return self._make(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = ()):
        """Register (or fetch) a histogram; labeled names return a family."""
        return self._make(Histogram, name, help_text, labelnames)

    def get(self, name: str):
        """The registered metric (family or bare instrument), or None."""
        return self._metrics.get(name)

    def snapshot(self) -> List[dict]:
        """Flatten every instrument into report rows.

        Each row is ``{"name", "kind", "labels", "value"}`` where
        histograms carry their :meth:`Histogram.summary` dict as value.
        """
        rows: List[dict] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            instruments = (metric.children()
                           if isinstance(metric, MetricFamily) else (metric,))
            for instrument in instruments:
                value = (instrument.summary()
                         if instrument.kind == "histogram"
                         else instrument.value)
                rows.append({
                    "name": name,
                    "kind": instrument.kind,
                    "labels": dict(instrument.labels),
                    "value": value,
                })
        return rows


# ----------------------------------------------------------------------
# Disabled mode: shared no-op singletons
# ----------------------------------------------------------------------

class NullCounter:
    """No-op counter; ``labels()`` returns itself."""

    kind = "counter"
    __slots__ = ()
    name = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def labels(self, **labelvalues):
        return self


class NullGauge:
    """No-op gauge; ``labels()`` returns itself."""

    kind = "gauge"
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set_function(self, fn) -> None:
        pass

    def labels(self, **labelvalues):
        return self


class NullHistogram:
    """No-op histogram; queries return the empty-distribution answers."""

    kind = "histogram"
    __slots__ = ()
    name = "null"
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return float("nan")

    def mean(self) -> float:
        return float("nan")

    def summary(self) -> Dict[str, float]:
        return {"count": 0.0, "mean": float("nan"), "p50": float("nan"),
                "p95": float("nan"), "p99": float("nan")}

    def labels(self, **labelvalues):
        return self


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry twin for disabled telemetry: factories hand out the
    shared no-op singletons and nothing is ever recorded."""

    enabled = False
    __slots__ = ()

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()):
        return NULL_COUNTER

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()):
        return NULL_GAUGE

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = ()):
        return NULL_HISTOGRAM

    def get(self, name: str):
        return None

    def snapshot(self) -> List[dict]:
        return []


NULL_REGISTRY = NullRegistry()
