"""Self-contained HTML report for ``repro analyze``.

One file, no external assets: inline SVG line charts (per-design time
series — hit ratio, SSD dirty fraction, cleaner backlog, queue depths),
the tail-latency attribution tables, and run metadata.  Styling uses CSS
custom properties with a ``prefers-color-scheme`` dark variant; series
colors come from a fixed categorical order (a design keeps its hue no
matter which charts it appears in).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.analysis import DesignAnalysis

#: Fixed categorical hue order (light-mode steps); series are assigned
#: in design order and never cycled — a fifth design folds into a note.
PALETTE_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100")
#: The same slots re-stepped for the dark surface.
PALETTE_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500")

#: Maximum polyline points per series (longer series are bucket-averaged).
MAX_POINTS = 200

#: The charts: (series key, chart title, y-axis label, value format).
CHARTS = (
    ("hit_ratio", "Buffer-pool hit ratio", "hit ratio", "{:.0%}"),
    ("ssd_dirty_fraction", "SSD dirty fraction", "dirty fraction", "{:.0%}"),
    ("ssd_dirty", "Cleaner backlog (dirty SSD frames)", "frames", "{:,.0f}"),
    ("disk_pending", "Disk queue depth", "pending I/Os", "{:,.0f}"),
    ("ssd_pending", "SSD queue depth", "pending I/Os", "{:,.0f}"),
)

REPORT_CSS = """
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  }
}
body {
  margin: 2rem auto; max-width: 60rem; padding: 0 1rem;
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif;
}
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.meta, caption, .note { color: var(--ink-2); }
.warn { color: var(--ink); border-left: 3px solid var(--s2);
        padding-left: .6rem; }
figure { margin: 1.2rem 0; }
figcaption { color: var(--ink-2); margin-bottom: .3rem; }
.legend { display: flex; gap: 1rem; flex-wrap: wrap; margin: .3rem 0;
          color: var(--ink-2); font-size: 13px; }
.legend .chip { display: inline-block; width: 10px; height: 10px;
                border-radius: 2px; margin-right: .35rem; }
svg text { fill: var(--ink-3); font: 11px system-ui, sans-serif; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .baseline { stroke: var(--baseline); stroke-width: 1; }
svg .line { fill: none; stroke-width: 2; }
table { border-collapse: collapse; margin: .8rem 0; }
th, td { text-align: right; padding: .25rem .7rem;
         border-bottom: 1px solid var(--grid);
         font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
"""


def _downsample(series: List[Tuple[float, float]],
                max_points: int) -> List[Tuple[float, float]]:
    if len(series) <= max_points:
        return series
    from repro.harness.report import downsample_series
    return downsample_series(series, max_rows=max_points)


def svg_chart(per_design: Dict[str, List[Tuple[float, float]]],
              value_fmt: str, x_fmt: str = "{:.0f}s") -> str:
    """One SVG line chart: x (time by default), one polyline per series.

    Public because the run-store dashboard (:mod:`repro.runstore`)
    renders its cross-commit trajectories with the same chart — pass
    ``x_fmt`` to relabel the x axis (e.g. ``"#{:.0f}"`` for run ids).
    """
    width, height = 640, 240
    left, right, top, bottom = 56, 12, 10, 26
    plot_w, plot_h = width - left - right, height - top - bottom

    points = {design: _downsample(series, MAX_POINTS)
              for design, series in per_design.items() if series}
    xs = [t for series in points.values() for t, _ in series]
    ys = [v for series in points.values() for _, v in series]
    if not xs:
        return "<p class='note'>(no samples)</p>"
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(0.0, min(ys)), max(ys)
    if x1 <= x0:
        x1 = x0 + 1.0
    if y1 <= y0:
        y1 = y0 + 1.0

    def sx(t: float) -> float:
        return left + (t - x0) / (x1 - x0) * plot_w

    def sy(v: float) -> float:
        return top + (1.0 - (v - y0) / (y1 - y0)) * plot_h

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'preserveAspectRatio="xMidYMid meet">']
    # Horizontal grid + y tick labels (4 divisions, one axis).
    for i in range(5):
        value = y0 + (y1 - y0) * i / 4
        y = sy(value)
        css = "baseline" if i == 0 else "grid"
        parts.append(f'<line class="{css}" x1="{left}" y1="{y:.1f}" '
                     f'x2="{left + plot_w}" y2="{y:.1f}"/>')
        label = html.escape(value_fmt.format(value))
        parts.append(f'<text x="{left - 6}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{label}</text>')
    # X tick labels (virtual seconds by default).
    for i in range(5):
        t = x0 + (x1 - x0) * i / 4
        x = sx(t)
        label = html.escape(x_fmt.format(t))
        parts.append(f'<text x="{x:.1f}" y="{height - 8}" '
                     f'text-anchor="middle">{label}</text>')
    for slot, (design, series) in enumerate(points.items()):
        path = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in series)
        title = html.escape(f"{design}: {len(per_design[design])} samples")
        parts.append(f'<polyline class="line" stroke="var(--s{slot + 1})" '
                     f'points="{path}"><title>{title}</title></polyline>')
    parts.append("</svg>")
    return "".join(parts)


def legend(designs: Sequence[str]) -> str:
    if len(designs) < 2:
        return ""
    chips = "".join(
        f'<span><span class="chip" '
        f'style="background: var(--s{slot + 1})"></span>'
        f'{html.escape(design)}</span>'
        for slot, design in enumerate(designs))
    return f'<div class="legend">{chips}</div>'


def _charts_section(analyses: Sequence[DesignAnalysis]) -> List[str]:
    designs = [a.design for a in analyses]
    out: List[str] = []
    for key, title, ylabel, fmt in CHARTS:
        per_design = {a.design: a.series.get(key, []) for a in analyses}
        if not any(per_design.values()):
            continue
        out.append("<figure>")
        out.append(f"<figcaption>{html.escape(title)} "
                   f"<span class='note'>({html.escape(ylabel)})</span>"
                   f"</figcaption>")
        out.append(legend(designs))
        out.append(svg_chart(per_design, fmt))
        out.append("</figure>")
    return out


def html_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
               caption: Optional[str] = None) -> str:
    parts = ["<table>"]
    if caption:
        parts.append(f"<caption>{html.escape(caption)}</caption>")
    parts.append("<tr>" + "".join(f"<th>{html.escape(h)}</th>"
                                  for h in headers) + "</tr>")
    for row in rows:
        parts.append("<tr>" + "".join(f"<td>{html.escape(str(c))}</td>"
                                      for c in row) + "</tr>")
    parts.append("</table>")
    return "".join(parts)


def _latency_table(analyses: Sequence[DesignAnalysis]) -> str:
    rows = []
    for analysis in analyses:
        summary = analysis.latency_summary()
        rows.append([
            analysis.design,
            f"{int(summary['count']):,}",
            f"{summary['mean'] * 1e3:.2f}",
            f"{summary['p50'] * 1e3:.2f}",
            f"{summary['p95'] * 1e3:.2f}",
            f"{summary['p99'] * 1e3:.2f}",
        ])
    return html_table(["design", "txns", "mean", "p50", "p95", "p99"], rows,
                  caption="Transaction latency (ms)")


def _attribution_tables(analyses: Sequence[DesignAnalysis],
                        quantiles: Sequence[float]) -> List[str]:
    out = []
    for analysis in analyses:
        rows = []
        for q in quantiles:
            att = analysis.attribution(q)
            breakdown = ", ".join(f"{name} {share:.0%}"
                                  for name, share in att.shares()[:4])
            rows.append([
                f"p{q:g}",
                f"{att.mean_latency * 1e3:.2f}" if att.count else "-",
                f"{att.count:,}",
                f"{att.coverage:.1%}" if att.count else "-",
                att.dominant,
                breakdown or "-",
            ])
        out.append(html_table(
            ["tail", "latency (ms)", "txns", "coverage", "dominant",
             "breakdown"],
            rows, caption=f"{analysis.design} — tail-latency attribution"))
    return out


def render_report(analyses: Sequence[DesignAnalysis], workload: str,
                  quantiles: Sequence[float] = (50, 95, 99),
                  title: Optional[str] = None) -> str:
    """The full report as one self-contained HTML document."""
    title = title or f"repro analyze — {workload}"
    first = analyses[0] if analyses else None
    meta_bits = []
    if first is not None:
        meta_bits.append(f"benchmark {html.escape(str(first.benchmark))}")
        if first.scale is not None:
            meta_bits.append(f"scale {first.scale}")
        if first.duration is not None:
            meta_bits.append(f"{first.duration:g} virtual s")
    meta_bits.append(", ".join(html.escape(a.design) for a in analyses))

    body: List[str] = [
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='meta'>{' · '.join(meta_bits)}</p>",
    ]
    for analysis in analyses:
        if analysis.truncated:
            body.append(
                f"<p class='warn'>{html.escape(analysis.design)}: trace "
                f"truncated — {analysis.dropped:,} events dropped past the "
                f"tracer cap; attribution undercounts late waits.</p>")
    if len(analyses) > len(PALETTE_LIGHT):
        shown = ", ".join(html.escape(a.design)
                          for a in analyses[:len(PALETTE_LIGHT)])
        body.append(f"<p class='note'>Charts show the first "
                    f"{len(PALETTE_LIGHT)} designs ({shown}); tables cover "
                    f"all {len(analyses)}.</p>")

    body.append("<h2>Latency</h2>")
    body.append(_latency_table(analyses))
    body.extend(_attribution_tables(analyses, quantiles))

    body.append("<h2>Time series</h2>")
    body.extend(_charts_section(analyses[:len(PALETTE_LIGHT)]))

    origins = sorted({o for a in analyses for o in a.background_io})
    if origins:
        body.append("<h2>Background device time</h2>")
        rows = [[a.design] + [
            f"{a.interference_share(origin):.1%}"
            if origin in a.background_io else "-"
            for origin in origins
        ] for a in analyses]
        body.append(html_table(["design"] + origins, rows,
                           caption="Share of total device-busy time"))

    return (
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>"
        f"<style>{REPORT_CSS}</style></head><body>"
        + "".join(body) + "</body></html>"
    )


def write_report(path: str, analyses: Sequence[DesignAnalysis],
                 workload: str,
                 quantiles: Sequence[float] = (50, 95, 99)) -> None:
    """Render and write the HTML report to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_report(analyses, workload, quantiles=quantiles))
