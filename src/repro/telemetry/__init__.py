"""Unified telemetry: a metrics registry plus a structured event tracer.

Every instrumented component takes an optional :class:`Telemetry` and
defaults to :data:`NULL_TELEMETRY`, whose registry and tracer are shared
no-op singletons — instrumentation then costs one no-op method call per
event and performs no allocation, so the hot paths run at seed speed
when observability is off.

Typical wiring (the harness does this for you)::

    telemetry = Telemetry()
    system = System(config, telemetry=telemetry)
    ... run ...
    telemetry.tracer.write_chrome("out.json")   # chrome://tracing
    print(format_metrics(telemetry.registry))

Metric and event names are stable API: DESIGN.md maps each paper figure
to the names that reproduce it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NullRegistry,
    percentile_of,
)
from repro.telemetry.context import (
    ADMISSION_CTX,
    CHECKPOINT_CTX,
    CLEANER_CTX,
    EVICTION_CTX,
    RECOVERY_CTX,
    TraceContext,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    TRACE_PID,
    TRUNCATION_EVENT,
    TraceEvent,
    Tracer,
)


class Telemetry:
    """An enabled registry + tracer pair, sharing one virtual clock."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_events: int = 500_000):
        self.registry = MetricRegistry()
        self.tracer = Tracer(clock, max_events=max_events)

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Bind the virtual clock (called by the system wiring)."""
        self.tracer.set_clock(clock)


class NullTelemetry:
    """The disabled mode: no-op registry and tracer singletons."""

    enabled = False
    __slots__ = ()
    registry = NULL_REGISTRY
    tracer = NULL_TRACER

    def set_clock(self, clock) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()

__all__ = [
    "ADMISSION_CTX",
    "CHECKPOINT_CTX",
    "CLEANER_CTX",
    "EVICTION_CTX",
    "RECOVERY_CTX",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTelemetry",
    "NullTracer",
    "TRACE_PID",
    "TRUNCATION_EVENT",
    "Telemetry",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "percentile_of",
]
