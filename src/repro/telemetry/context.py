"""Request-scoped trace context: who caused this event?

A :class:`TraceContext` travels with a unit of work — a workload
transaction, or a background activity like the LC cleaner — down
through the buffer pool, the SSD managers, the WAL, and the device
queues.  Every trace event recorded along the way carries the context's
fields in its ``args``, so the analysis layer
(:mod:`repro.telemetry.analysis`) can reconstruct a per-transaction
waterfall and attribute tail latency to the component waits that
produced it.

Two flavours share the class:

* **transaction contexts** (``txn_id`` set) are created per workload
  transaction and tag events with ``{"txn": id, "txn_type": kind}``;
* **background contexts** (``txn_id`` None) are module singletons —
  :data:`EVICTION_CTX`, :data:`CLEANER_CTX`, :data:`CHECKPOINT_CTX`,
  :data:`ADMISSION_CTX` — and tag events with ``{"origin": kind}``, so
  device time burned by background machinery (the "cleaner
  interference" of the paper's Figure 6/7 discussion) is separable
  from foreground transaction waits.

Contexts are plain data; passing ``ctx=None`` everywhere keeps the
disabled-telemetry hot path allocation-free.
"""

from __future__ import annotations

from typing import Optional


class TraceContext:
    """Identifies the transaction (or background activity) causing work."""

    __slots__ = ("txn_id", "kind", "tenant")

    def __init__(self, txn_id: Optional[int], kind: str,
                 tenant: Optional[str] = None):
        self.txn_id = txn_id
        self.kind = kind
        self.tenant = tenant

    @classmethod
    def for_txn(cls, txn_id: int, txn_type: str,
                tenant: Optional[str] = None) -> "TraceContext":
        """Context for one workload transaction."""
        return cls(txn_id, txn_type, tenant)

    @classmethod
    def background(cls, origin: str) -> "TraceContext":
        """Context for background machinery (cleaner, eviction, ...)."""
        return cls(None, origin)

    @property
    def is_background(self) -> bool:
        """True for background-origin contexts (no transaction id)."""
        return self.txn_id is None

    def to_args(self) -> dict:
        """The key/value pairs merged into a trace event's ``args``.

        ``tenant`` is only emitted when set, so single-tenant traces stay
        byte-identical to those from before the multi-tenant layer.
        """
        if self.txn_id is None:
            return {"origin": self.kind}
        if self.tenant is None:
            return {"txn": self.txn_id, "txn_type": self.kind}
        return {"txn": self.txn_id, "txn_type": self.kind,
                "tenant": self.tenant}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.txn_id is None:
            return f"TraceContext(origin={self.kind!r})"
        return f"TraceContext(txn={self.txn_id}, type={self.kind!r})"


#: Shared background contexts — one per machinery, compared by identity.
EVICTION_CTX = TraceContext.background("eviction")
CLEANER_CTX = TraceContext.background("cleaner")
CHECKPOINT_CTX = TraceContext.background("checkpoint")
ADMISSION_CTX = TraceContext.background("admission")
RECOVERY_CTX = TraceContext.background("recovery")
