"""Structured event tracing against the simulation clock.

Records typed events — *spans* (operations with a duration: an eviction
write-out, a cleaner round, a checkpoint, one device I/O) and *instants*
(points in time: a λ-crossing, an SSD admission) — on named tracks, and
exports two formats:

* JSONL: one event object per line, for ad-hoc analysis;
* Chrome ``trace_event`` JSON, loadable in ``chrome://tracing`` and
  Perfetto, with one named thread per track so the engine's components
  (buffer pool, cleaner, WAL, each device) appear as parallel swimlanes.

Counter events (``ph: "C"``) carry the sampled time series (SSD
occupancy, queue depths) that back the paper's Figures 6–8.

:class:`NullTracer` is the disabled mode: every recording method is a
no-op and :meth:`NullTracer.span` returns one shared context manager, so
instrumented paths allocate nothing when tracing is off.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.telemetry.context import TraceContext

#: Synthetic pid for Chrome trace output (one simulated process).
TRACE_PID = 1

#: Event name of the truncation marker appended to exports when events
#: were dropped past ``max_events`` (consumed by ``repro analyze``).
TRUNCATION_EVENT = "trace_truncated"


def _merge_ctx(args: Optional[dict],
               ctx: Optional[TraceContext]) -> Optional[dict]:
    """Fold a trace context's attribution fields into event args."""
    if ctx is None:
        return args
    merged = dict(args) if args else {}
    merged.update(ctx.to_args())
    return merged


class TraceEvent:
    """One recorded event; ``ts``/``dur`` are virtual seconds."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "track", "args")

    def __init__(self, name: str, cat: str, ph: str, ts: float,
                 dur: Optional[float] = None, track: str = "main",
                 args: Optional[dict] = None):
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.track = track
        self.args = args

    def to_dict(self) -> dict:
        """Plain-dict view (the JSONL line format)."""
        out = {"name": self.name, "cat": self.cat, "ph": self.ph,
               "ts": self.ts, "track": self.track}
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args is not None:
            out["args"] = self.args
        return out


class _Span:
    """Context manager recording one complete ("X") event on exit.

    An exceptional exit is still recorded (the time was spent), but the
    event is tagged with the exception type (``args["error"]``) so
    failed operations are distinguishable in traces and in
    ``repro analyze``.
    """

    __slots__ = ("_tracer", "name", "cat", "track", "args", "ctx", "start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, track: str,
                 args: Optional[dict], ctx: Optional[TraceContext] = None):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.args = args
        self.ctx = ctx
        self.start = 0.0

    def set(self, **more) -> None:
        """Attach result arguments discovered while the span runs."""
        if self.args is None:
            self.args = {}
        self.args.update(more)

    def __enter__(self) -> "_Span":
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.set(error=exc_type.__name__)
        self._tracer.complete(self.name, self.start, self._tracer._clock(),
                              self.cat, self.track, self.args, ctx=self.ctx)
        return False


class Tracer:
    """Collects :class:`TraceEvent` records against a virtual clock.

    ``clock`` is a zero-argument callable returning the current virtual
    time in seconds (``lambda: env.now``); :meth:`set_clock` rebinds it
    when the environment is created after the tracer.  ``max_events``
    bounds memory: past it, new events are counted in :attr:`dropped`
    instead of stored.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_events: int = 500_000):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._clock = clock or (lambda: 0.0)
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the virtual clock (wiring-time, before any events)."""
        self._clock = clock

    @property
    def now(self) -> float:
        """Current virtual time according to the bound clock."""
        return self._clock()

    def _record(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    # Recording API
    # ------------------------------------------------------------------

    def instant(self, name: str, cat: str = "event", track: str = "main",
                args: Optional[dict] = None,
                ctx: Optional[TraceContext] = None) -> None:
        """Record a point-in-time event at the current clock."""
        self._record(TraceEvent(name, cat, "i", self._clock(),
                                track=track, args=_merge_ctx(args, ctx)))

    def complete(self, name: str, start: float, end: float,
                 cat: str = "span", track: str = "main",
                 args: Optional[dict] = None,
                 ctx: Optional[TraceContext] = None) -> None:
        """Record a finished operation spanning ``[start, end]``."""
        self._record(TraceEvent(name, cat, "X", start, dur=end - start,
                                track=track, args=_merge_ctx(args, ctx)))

    def span(self, name: str, cat: str = "span", track: str = "main",
             args: Optional[dict] = None,
             ctx: Optional[TraceContext] = None) -> _Span:
        """Context manager measuring a block as one complete event."""
        return _Span(self, name, cat, track, args, ctx)

    def counter(self, name: str, values: Dict[str, float],
                track: str = "counters") -> None:
        """Record a sampled time-series point (Chrome counter event)."""
        self._record(TraceEvent(name, "counter", "C", self._clock(),
                                track=track, args=dict(values)))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _track_ids(self) -> Dict[str, int]:
        tracks: Dict[str, int] = {}
        for event in self.events:
            if event.track not in tracks:
                tracks[event.track] = len(tracks) + 1
        return tracks

    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` JSON object.

        Timestamps are converted to microseconds; each track becomes a
        named thread of one synthetic process via ``thread_name``
        metadata events.
        """
        tracks = self._track_ids()
        marker = self._truncation_event()
        if marker is not None and marker.track not in tracks:
            tracks[marker.track] = len(tracks) + 1
        trace_events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
            "args": {"name": "repro"},
        }]
        for track, tid in tracks.items():
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                "tid": tid, "args": {"name": track},
            })
        exported = list(self.events)
        if marker is not None:
            exported.append(marker)
        for event in exported:
            out = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts": round(event.ts * 1e6, 3),
                "pid": TRACE_PID,
                "tid": tracks[event.track],
            }
            if event.ph == "X":
                out["dur"] = round((event.dur or 0.0) * 1e6, 3)
            if event.ph == "i":
                out["s"] = "t"  # thread-scoped instant
            if event.args is not None:
                out["args"] = event.args
            trace_events.append(out)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def _truncation_event(self) -> Optional[TraceEvent]:
        """Metadata instant flagging dropped events, or None if complete."""
        if not self.dropped:
            return None
        last_ts = self.events[-1].ts if self.events else 0.0
        return TraceEvent(TRUNCATION_EVENT, "meta", "i", last_ts,
                          track="meta",
                          args={"dropped": self.dropped,
                                "max_events": self.max_events})

    def write_chrome(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)

    def write_jsonl(self, path: str) -> None:
        """Write one JSON object per event to ``path``.

        A truncated trace ends with a ``trace_truncated`` metadata line so
        consumers can tell the export is incomplete.
        """
        marker = self._truncation_event()
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event.to_dict()))
                fh.write("\n")
            if marker is not None:
                fh.write(json.dumps(marker.to_dict()))
                fh.write("\n")


# ----------------------------------------------------------------------
# Disabled mode
# ----------------------------------------------------------------------

class _NullSpan:
    """Shared do-nothing span."""

    __slots__ = ()

    def set(self, **more) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer twin for disabled telemetry: records nothing, allocates
    nothing (``span`` hands back one shared context manager)."""

    enabled = False
    __slots__ = ()
    events: tuple = ()
    dropped = 0
    now = 0.0

    def set_clock(self, clock) -> None:
        pass

    def instant(self, name, cat="event", track="main", args=None,
                ctx=None) -> None:
        pass

    def complete(self, name, start, end, cat="span", track="main",
                 args=None, ctx=None) -> None:
        pass

    def span(self, name, cat="span", track="main", args=None,
             ctx=None) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name, values, track="counters") -> None:
        pass


NULL_TRACER = NullTracer()
