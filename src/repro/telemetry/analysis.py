"""Post-hoc trace analysis: per-transaction waterfalls and tail-latency
attribution (the engine behind ``repro analyze``).

The tracer (:mod:`repro.telemetry.tracer`) records every wait a traced
transaction experiences as a *leaf span* carrying the transaction's
:class:`~repro.telemetry.TraceContext` — latch waits, duplicate-read
waits, free-frame waits, device I/Os, WAL group-commit waits.  Because
the simulation's virtual clock only advances at yields, those leaf spans
partition the transaction's latency exactly: summing them recovers the
measured latency (the ``coverage`` figures below report how exactly).

This module loads a trace back (JSONL or Chrome ``trace_event`` JSON,
auto-detected), groups events by transaction, and answers the questions
the paper's figures raise but cannot answer themselves: *where does the
p99 go* under each SSD design, and *who else* (cleaner, evictions,
checkpoints) was occupying the devices at the time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.registry import percentile_of
from repro.telemetry.tracer import TRUNCATION_EVENT

#: Wait-span names that map straight to a latency component.
LEAF_SPAN_COMPONENTS = {
    "latch_wait": "latch",
    "inflight_wait": "inflight",
    "free_wait": "free_frame",
    "prefetch_wait": "prefetch",
    "wal_wait": "wal_flush",
}

#: Device-track suffix → component prefix ("device:ssd" → ssd_read/…).
DEVICE_COMPONENTS = {
    "ssd": "ssd",
    "hdd-array": "disk",
    "log-disk": "log",
}

#: Display/export order of the latency components.
COMPONENT_ORDER = (
    "disk_read", "disk_write", "ssd_read", "ssd_write", "log_read",
    "log_write", "wal_flush", "latch", "inflight", "free_frame", "prefetch",
)

#: Span names recorded for waterfalls but excluded from the component sum
#: (they *enclose* leaf waits and would double-count them).
ENVELOPE_SPANS = frozenset({"bp_miss"})


def _component_of(event: dict) -> Optional[str]:
    """The latency component a trace event contributes to, or None."""
    name = event.get("name", "")
    direct = LEAF_SPAN_COMPONENTS.get(name)
    if direct is not None:
        return direct
    track = event.get("track", "")
    if track.startswith("device:"):
        prefix = DEVICE_COMPONENTS.get(track[len("device:"):])
        if prefix is None:
            return None
        return f"{prefix}_read" if name.endswith("read") else f"{prefix}_write"
    return None


# ----------------------------------------------------------------------
# Trace loading
# ----------------------------------------------------------------------

def load_events(path: str) -> List[dict]:
    """Load a trace file as normalized event dicts.

    Accepts both tracer export formats and auto-detects which one it got:

    * JSONL (one event object per line) — used as-is;
    * Chrome ``trace_event`` JSON — timestamps/durations converted back
      from microseconds to virtual seconds and ``tid`` mapped back to the
      track name via the ``thread_name`` metadata events.

    Every returned dict has ``name``/``cat``/``ph``/``ts``/``track`` and
    optionally ``dur``/``args`` (the JSONL line shape).
    """
    with open(path) as fh:
        text = fh.read()
    stripped = text.strip()
    if not stripped:
        return []
    try:
        doc = json.loads(stripped)
    except ValueError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _normalize_chrome(doc)
    events = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: not a JSONL trace "
                             f"({exc})") from None
        if not isinstance(event, dict) or "name" not in event:
            raise ValueError(f"{path}:{lineno}: not a trace event line")
        events.append(event)
    return events


def _normalize_chrome(doc: dict) -> List[dict]:
    """Chrome trace_event JSON → JSONL-shaped dicts (seconds, tracks)."""
    tracks: Dict[int, str] = {}
    events: List[dict] = []
    for raw in doc.get("traceEvents", ()):
        ph = raw.get("ph")
        if ph == "M":
            if raw.get("name") == "thread_name":
                tracks[raw.get("tid", 0)] = raw.get("args", {}).get(
                    "name", "main")
            continue
        event = {
            "name": raw.get("name", ""),
            "cat": raw.get("cat", ""),
            "ph": ph,
            "ts": raw.get("ts", 0.0) / 1e6,
            "track": tracks.get(raw.get("tid"), "main"),
        }
        if "dur" in raw:
            event["dur"] = raw["dur"] / 1e6
        if "args" in raw:
            event["args"] = raw["args"]
        events.append(event)
    return events


# ----------------------------------------------------------------------
# Per-transaction records
# ----------------------------------------------------------------------

@dataclass
class TxnRecord:
    """One traced transaction: its span plus attributed component waits."""

    txn_id: int
    txn_type: str
    start: float
    latency: float
    writes: int = 0
    #: Tenant name from the multi-tenant traffic layer (None for
    #: single-tenant / closed-loop traces).
    tenant: Optional[str] = None
    #: Component name → attributed seconds.
    components: Dict[str, float] = field(default_factory=dict)
    #: The transaction's attributed events, for waterfall rendering.
    events: List[dict] = field(default_factory=list)

    @property
    def attributed(self) -> float:
        """Seconds accounted for by the component waits."""
        return sum(self.components.values())

    def waterfall(self) -> List[dict]:
        """The transaction's events ordered by start time — a textual
        flame chart of where its latency went."""
        return sorted(self.events, key=lambda e: (e.get("ts", 0.0),
                                                  -(e.get("dur") or 0.0)))


@dataclass
class Attribution:
    """Latency decomposition at one percentile."""

    quantile: float
    threshold: float
    count: int
    mean_latency: float
    components: Dict[str, float]
    coverage: float

    @property
    def dominant(self) -> str:
        """The component contributing the most wait time."""
        if not self.components:
            return "-"
        return max(self.components, key=self.components.get)

    def shares(self) -> List[Tuple[str, float]]:
        """(component, fraction of attributed time), largest first."""
        total = sum(self.components.values())
        if total <= 0:
            return []
        return sorted(((name, value / total)
                       for name, value in self.components.items()),
                      key=lambda pair: -pair[1])


@dataclass
class DesignAnalysis:
    """Everything ``repro analyze`` extracts from one trace file."""

    path: str
    design: str = "?"
    benchmark: str = "?"
    scale: Optional[int] = None
    duration: Optional[float] = None
    txns: List[TxnRecord] = field(default_factory=list)
    #: Events dropped past the tracer cap (0 = complete trace).
    dropped: int = 0
    #: Attributed events whose transaction span never appeared (the
    #: client was cut off mid-transaction or the trace was truncated).
    orphan_events: int = 0
    #: Series name → [(time, value)], built from the sampler counters.
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Background origin ("cleaner", "eviction", …) → device-busy stats.
    background_io: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Fault-category event name → occurrence count (injected faults,
    #: retries, SSD detach, degradation redo — ``cat == "fault"``).
    faults: Dict[str, int] = field(default_factory=dict)
    #: Device-level flash counters from the FTL model (DESIGN.md §10):
    #: final cumulative ``host_writes`` / ``nand_writes`` / ``erases``
    #: plus the derived ``waf`` and the count of traced GC bursts.
    #: Empty when the run used the black-box SSD timing.
    ftl: Dict[str, float] = field(default_factory=dict)
    #: Provenance stamped into the trace's ``run_meta`` instant
    #: (``git_commit``/``git_branch``/``git_dirty``/``source_hash``/
    #: ``seed``) — which code produced this trace, same answer the run
    #: store gives for recorded runs.  Empty for pre-provenance traces.
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def truncated(self) -> bool:
        """Whether the trace export was cut off at the event cap."""
        return self.dropped > 0

    # -- latency ------------------------------------------------------

    def _latencies(self, txn_type: Optional[str] = None) -> List[float]:
        values = sorted(t.latency for t in self.txns
                        if txn_type is None or t.txn_type == txn_type)
        return values

    def latency_summary(self, txn_type: Optional[str] = None) -> Dict[str, float]:
        """count / mean / p50 / p95 / p99 of transaction latency."""
        values = self._latencies(txn_type)
        mean = sum(values) / len(values) if values else float("nan")
        return {
            "count": float(len(values)),
            "mean": mean,
            "p50": percentile_of(values, 50),
            "p95": percentile_of(values, 95),
            "p99": percentile_of(values, 99),
        }

    def txn_types(self) -> List[str]:
        """Distinct transaction types, most frequent first."""
        counts: Dict[str, int] = {}
        for txn in self.txns:
            counts[txn.txn_type] = counts.get(txn.txn_type, 0) + 1
        return sorted(counts, key=lambda name: -counts[name])

    def tenants(self) -> List[str]:
        """Distinct tenant names (empty for single-tenant traces)."""
        seen: Dict[str, None] = {}
        for txn in self.txns:
            if txn.tenant is not None:
                seen.setdefault(txn.tenant)
        return sorted(seen)

    def tenant_summary(self, tenant: str) -> Dict[str, float]:
        """count / mean / p50 / p99 latency for one tenant's transactions."""
        values = sorted(t.latency for t in self.txns if t.tenant == tenant)
        mean = sum(values) / len(values) if values else float("nan")
        return {
            "count": float(len(values)),
            "mean": mean,
            "p50": percentile_of(values, 50),
            "p99": percentile_of(values, 99),
        }

    # -- attribution --------------------------------------------------

    def attribution(self, quantile: float,
                    txn_type: Optional[str] = None) -> Attribution:
        """Decompose the latency of transactions at/above ``quantile``.

        Selects the transactions whose latency is >= the ``quantile``-th
        percentile (the tail the percentile names) and averages their
        component waits.  ``coverage`` is total attributed seconds over
        total measured latency for that subset — ~1.0 when the leaf
        spans partition the transactions' time, as they do for the OLTP
        paths.
        """
        values = self._latencies(txn_type)
        threshold = percentile_of(values, quantile)
        subset = [t for t in self.txns
                  if (txn_type is None or t.txn_type == txn_type)
                  and t.latency >= threshold]
        if not subset:
            return Attribution(quantile, threshold, 0, float("nan"), {}, 0.0)
        totals: Dict[str, float] = {}
        for txn in subset:
            for name, value in txn.components.items():
                totals[name] = totals.get(name, 0.0) + value
        n = len(subset)
        total_latency = sum(t.latency for t in subset)
        components = {name: totals[name] / n
                      for name in COMPONENT_ORDER if name in totals}
        coverage = (sum(totals.values()) / total_latency
                    if total_latency > 0 else 0.0)
        return Attribution(quantile, threshold, n,
                           total_latency / n, components, coverage)

    # -- background interference --------------------------------------

    def interference_share(self, origin: str = "cleaner") -> float:
        """Fraction of total device-busy seconds consumed by a
        background origin (cleaner interference, per §2.3.3)."""
        busy = sum(stats["busy"] for stats in self.background_io.values())
        busy += sum(value for txn in self.txns
                    for name, value in txn.components.items()
                    if name.startswith(("disk_", "ssd_", "log_")))
        own = self.background_io.get(origin, {}).get("busy", 0.0)
        return own / busy if busy > 0 else 0.0

    def waterfall(self, txn_id: int) -> List[dict]:
        """The event waterfall of one transaction (empty if unknown)."""
        for txn in self.txns:
            if txn.txn_id == txn_id:
                return txn.waterfall()
        return []

    def slowest(self, n: int = 5,
                txn_type: Optional[str] = None) -> List[TxnRecord]:
        """The ``n`` slowest transactions — waterfall candidates."""
        pool = [t for t in self.txns
                if txn_type is None or t.txn_type == txn_type]
        return sorted(pool, key=lambda t: -t.latency)[:n]


# ----------------------------------------------------------------------
# Trace → analysis
# ----------------------------------------------------------------------

def _series_point(series: Dict[str, List[Tuple[float, float]]],
                  name: str, ts: float, value: float) -> None:
    series.setdefault(name, []).append((ts, value))


def analyze_trace(path: str) -> DesignAnalysis:
    """Reconstruct one run's :class:`DesignAnalysis` from a trace file."""
    events = load_events(path)
    analysis = DesignAnalysis(path=path)
    by_txn: Dict[int, TxnRecord] = {}
    pending: Dict[int, List[dict]] = {}
    requests: List[Tuple[float, float, float, float]] = []

    for event in events:
        name = event.get("name", "")
        args = event.get("args") or {}
        ph = event.get("ph")
        track = event.get("track", "")

        if name == "run_meta":
            analysis.design = args.get("design", analysis.design)
            analysis.benchmark = args.get("benchmark", analysis.benchmark)
            analysis.scale = args.get("scale", analysis.scale)
            analysis.duration = args.get("duration", analysis.duration)
            analysis.provenance = {
                key: args[key]
                for key in ("git_commit", "git_branch", "git_dirty",
                            "source_hash", "seed")
                if args.get(key) is not None}
            continue
        if name == TRUNCATION_EVENT:
            analysis.dropped = int(args.get("dropped", 0))
            continue
        if ph == "C" and track == "sampler":
            ts = event.get("ts", 0.0)
            if name == "bp_requests":
                requests.append((ts, args.get("hits", 0),
                                 args.get("misses", 0),
                                 args.get("ssd_hits", 0)))
            elif name == "ssd_dirty_fraction":
                _series_point(analysis.series, "ssd_dirty_fraction",
                              ts, args.get("fraction", 0.0))
            elif name == "ssd_frames":
                _series_point(analysis.series, "ssd_used",
                              ts, args.get("used", 0))
                _series_point(analysis.series, "ssd_dirty",
                              ts, args.get("dirty", 0))
            elif name == "pending_ios":
                _series_point(analysis.series, "disk_pending",
                              ts, args.get("disk", 0))
                _series_point(analysis.series, "ssd_pending",
                              ts, args.get("ssd", 0))
            elif name == "bp_dirty":
                _series_point(analysis.series, "bp_dirty",
                              ts, args.get("frames", 0))
            elif name == "ftl":
                host = args.get("host_writes", 0)
                nand = args.get("nand_writes", 0)
                erases = args.get("erases", 0)
                _series_point(analysis.series, "ftl_host_writes", ts, host)
                _series_point(analysis.series, "ftl_nand_writes", ts, nand)
                _series_point(analysis.series, "ftl_erases", ts, erases)
                # Counters are cumulative, so the last sample is the
                # run's final total.
                analysis.ftl.update(
                    host_writes=float(host), nand_writes=float(nand),
                    erases=float(erases),
                    waf=(nand / host if host else 0.0))
            continue

        if name == "ftl_gc":
            analysis.ftl["gc_events"] = analysis.ftl.get("gc_events", 0.0) + 1
            continue

        if event.get("cat") == "fault":
            analysis.faults[name] = analysis.faults.get(name, 0) + 1
            continue

        txn_id = args.get("txn")
        origin = args.get("origin")
        if ph == "X" and event.get("cat") == "txn" and txn_id is not None:
            record = TxnRecord(
                txn_id=txn_id,
                txn_type=args.get("txn_type", name),
                start=event.get("ts", 0.0),
                latency=event.get("dur", 0.0) or 0.0,
                writes=int(args.get("writes", 0)),
                tenant=args.get("tenant"),
            )
            by_txn[txn_id] = record
            for prior in pending.pop(txn_id, ()):
                _attribute(record, prior)
            continue
        if txn_id is not None and ph == "X":
            record = by_txn.get(txn_id)
            if record is not None:
                _attribute(record, event)
            else:
                # Leaf waits precede the txn span (it is recorded at
                # commit); hold them until it appears.
                pending.setdefault(txn_id, []).append(event)
            continue
        if origin is not None and ph == "X" and track.startswith("device:"):
            stats = analysis.background_io.setdefault(
                origin, {"busy": 0.0, "ios": 0.0})
            stats["busy"] += event.get("dur", 0.0) or 0.0
            stats["ios"] += 1.0

    analysis.orphan_events = sum(len(v) for v in pending.values())
    analysis.txns = sorted(by_txn.values(), key=lambda t: t.start)
    _hit_ratio_series(analysis, requests)
    return analysis


def _attribute(record: TxnRecord, event: dict) -> None:
    record.events.append(event)
    component = _component_of(event)
    if component is None or event.get("name") in ENVELOPE_SPANS:
        return
    record.components[component] = (record.components.get(component, 0.0)
                                    + (event.get("dur", 0.0) or 0.0))


def _hit_ratio_series(analysis: DesignAnalysis,
                      requests: Sequence[Tuple[float, float, float, float]]
                      ) -> None:
    """Windowed hit ratios from the cumulative ``bp_requests`` counters."""
    hit_ratio = []
    ssd_ratio = []
    for (t0, h0, m0, s0), (t1, h1, m1, s1) in zip(requests, requests[1:]):
        total = (h1 - h0) + (m1 - m0)
        if total > 0:
            hit_ratio.append((t1, (h1 - h0) / total))
        misses = m1 - m0
        if misses > 0:
            ssd_ratio.append((t1, (s1 - s0) / misses))
    if hit_ratio:
        analysis.series["hit_ratio"] = hit_ratio
    if ssd_ratio:
        analysis.series["ssd_hit_ratio"] = ssd_ratio


def analyze_traces(paths: Sequence[str]) -> List[DesignAnalysis]:
    """Analyze several trace files (one per design, as the CLI writes)."""
    return [analyze_trace(path) for path in paths]


# ----------------------------------------------------------------------
# Terminal report
# ----------------------------------------------------------------------

def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def format_attribution_table(analyses: Sequence[DesignAnalysis],
                             quantiles: Sequence[float] = (50, 95, 99),
                             txn_type: Optional[str] = None) -> str:
    """The ``repro analyze`` terminal table: one row per design and
    percentile, with the dominant component and the full breakdown."""
    from repro.harness.report import format_table

    rows = []
    for analysis in analyses:
        for q in quantiles:
            att = analysis.attribution(q, txn_type=txn_type)
            breakdown = ", ".join(f"{name} {share:.0%}"
                                  for name, share in att.shares()[:3])
            rows.append([
                analysis.design,
                f"p{q:g}",
                _ms(att.mean_latency) if att.count else "-",
                att.count,
                f"{att.coverage:.1%}" if att.count else "-",
                att.dominant,
                breakdown or "-",
            ])
    suffix = f" — {txn_type}" if txn_type else ""
    return format_table(
        f"Tail-latency attribution (ms){suffix}",
        ["design", "tail", "latency", "txns", "coverage", "dominant",
         "breakdown"],
        rows)


def format_tenant_table(analyses: Sequence[DesignAnalysis]) -> str:
    """Per-tenant latency breakdown for multi-tenant traffic traces."""
    from repro.harness.report import format_table

    rows = []
    for analysis in analyses:
        for tenant in analysis.tenants():
            summary = analysis.tenant_summary(tenant)
            rows.append([
                analysis.design,
                tenant,
                int(summary["count"]),
                _ms(summary["mean"]),
                _ms(summary["p50"]),
                _ms(summary["p99"]),
            ])
    return format_table(
        "Per-tenant latency (ms)",
        ["design", "tenant", "txns", "mean", "p50", "p99"],
        rows)


def format_interference_table(analyses: Sequence[DesignAnalysis]) -> str:
    """Device time consumed by background machinery, per design."""
    from repro.harness.report import format_table

    origins = sorted({origin for a in analyses for origin in a.background_io})
    rows = []
    for analysis in analyses:
        row = [analysis.design]
        for origin in origins:
            stats = analysis.background_io.get(origin)
            row.append(f"{analysis.interference_share(origin):.1%}"
                       if stats else "-")
        rows.append(row)
    return format_table("Background device-time share",
                        ["design"] + origins, rows)


def format_ftl_table(analyses: Sequence[DesignAnalysis]) -> str:
    """Device-level write amplification per design (FTL model runs)."""
    from repro.harness.report import format_table

    rows = []
    for analysis in analyses:
        ftl = analysis.ftl
        if not ftl:
            rows.append([analysis.design, "-", "-", "-", "-", "-"])
            continue
        waf = ftl.get("waf", 0.0)
        rows.append([
            analysis.design,
            f"{int(ftl.get('host_writes', 0))}",
            f"{int(ftl.get('nand_writes', 0))}",
            f"{int(ftl.get('erases', 0))}",
            f"{waf:.3f}" if waf else "-",
            f"{int(ftl.get('gc_events', 0))}",
        ])
    return format_table(
        "Flash internals (write amplification)",
        ["design", "host_writes", "nand_writes", "erases", "waf",
         "gc_bursts"],
        rows)


def format_faults_table(analyses: Sequence[DesignAnalysis]) -> str:
    """Injected faults and the engine's reactions, per design."""
    from repro.harness.report import format_table

    names = sorted({name for a in analyses for name in a.faults})
    rows = []
    for analysis in analyses:
        rows.append([analysis.design]
                    + [str(analysis.faults.get(name, 0)) or "-"
                       for name in names])
    return format_table("Fault events", ["design"] + names, rows)


# ----------------------------------------------------------------------
# Machine-readable benchmark snapshot
# ----------------------------------------------------------------------

#: Version of the BENCH_<workload>.json layout.
BENCH_SCHEMA_VERSION = 1


def bench_snapshot(analyses: Sequence[DesignAnalysis],
                   workload: str,
                   quantiles: Sequence[float] = (50, 95, 99)) -> dict:
    """The ``BENCH_<workload>.json`` document for a set of analyses."""
    designs = {}
    for analysis in analyses:
        summary = analysis.latency_summary()
        attributions = {}
        for q in quantiles:
            att = analysis.attribution(q)
            attributions[f"p{q:g}"] = {
                "threshold_s": att.threshold,
                "mean_latency_s": att.mean_latency,
                "count": att.count,
                "coverage": att.coverage,
                "dominant": att.dominant,
                "components_s": att.components,
            }
        entry = {
            "benchmark": analysis.benchmark,
            "scale": analysis.scale,
            "duration_s": analysis.duration,
            "txns": int(summary["count"]),
            "throughput_tps": (summary["count"] / analysis.duration
                               if analysis.duration else None),
            "latency_s": {key: summary[key]
                          for key in ("mean", "p50", "p95", "p99")},
            "attribution": attributions,
            "background_io": {
                origin: {"busy_s": stats["busy"], "ios": int(stats["ios"])}
                for origin, stats in sorted(analysis.background_io.items())
            },
            "truncated_events": analysis.dropped,
        }
        if analysis.ftl:
            entry["ftl"] = {
                "host_writes": int(analysis.ftl.get("host_writes", 0)),
                "nand_writes": int(analysis.ftl.get("nand_writes", 0)),
                "erases": int(analysis.ftl.get("erases", 0)),
                "waf": analysis.ftl.get("waf", 0.0),
                "gc_bursts": int(analysis.ftl.get("gc_events", 0)),
            }
        designs[analysis.design] = entry
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": workload,
        "generated_by": "repro analyze",
        "designs": designs,
    }


def validate_bench(doc: object) -> List[str]:
    """Validate a BENCH document; returns error strings (empty = valid).

    Hand-rolled (the toolchain has no jsonschema), but strict about the
    fields CI and downstream comparisons rely on.
    """
    errors: List[str] = []

    def _number(value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        errors.append(f"schema_version must be {BENCH_SCHEMA_VERSION}")
    if not isinstance(doc.get("workload"), str) or not doc.get("workload"):
        errors.append("workload must be a non-empty string")
    designs = doc.get("designs")
    if not isinstance(designs, dict) or not designs:
        errors.append("designs must be a non-empty object")
        return errors
    for design, entry in designs.items():
        where = f"designs.{design}"
        if not isinstance(entry, dict):
            errors.append(f"{where} is not an object")
            continue
        if not isinstance(entry.get("txns"), int) or entry["txns"] < 0:
            errors.append(f"{where}.txns must be a non-negative integer")
        latency = entry.get("latency_s")
        if not isinstance(latency, dict):
            errors.append(f"{where}.latency_s is not an object")
        else:
            for key in ("mean", "p50", "p95", "p99"):
                if key not in latency or not _number(latency[key]):
                    errors.append(f"{where}.latency_s.{key} must be a number")
        attribution = entry.get("attribution")
        if not isinstance(attribution, dict) or not attribution:
            errors.append(f"{where}.attribution must be a non-empty object")
        else:
            for tail, att in attribution.items():
                at_where = f"{where}.attribution.{tail}"
                if not isinstance(att, dict):
                    errors.append(f"{at_where} is not an object")
                    continue
                for key in ("coverage", "mean_latency_s"):
                    if key in att and not _number(att[key]):
                        errors.append(f"{at_where}.{key} must be a number")
                components = att.get("components_s")
                if not isinstance(components, dict):
                    errors.append(f"{at_where}.components_s is not an object")
                else:
                    for name, value in components.items():
                        if not _number(value) or value < 0:
                            errors.append(
                                f"{at_where}.components_s.{name} must be a "
                                f"non-negative number")
                if not isinstance(att.get("dominant", "-"), str):
                    errors.append(f"{at_where}.dominant must be a string")
        truncated = entry.get("truncated_events", 0)
        if not isinstance(truncated, int) or truncated < 0:
            errors.append(
                f"{where}.truncated_events must be a non-negative integer")
        ftl = entry.get("ftl")
        if ftl is not None:
            if not isinstance(ftl, dict):
                errors.append(f"{where}.ftl is not an object")
            else:
                for key in ("host_writes", "nand_writes", "erases"):
                    value = ftl.get(key)
                    if not isinstance(value, int) or value < 0:
                        errors.append(
                            f"{where}.ftl.{key} must be a non-negative "
                            f"integer")
                if "waf" not in ftl or not _number(ftl["waf"]) \
                        or ftl["waf"] < 0:
                    errors.append(
                        f"{where}.ftl.waf must be a non-negative number")
    return errors
