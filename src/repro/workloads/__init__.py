"""Benchmark workload generators (TPC-C-, TPC-E-, and TPC-H-like).

These are not the official TPC kits (the same disclaimer the paper itself
carries).  Each generator reproduces the *access-pattern* properties the
paper's evaluation depends on:

* **TPC-C** (:mod:`~repro.workloads.tpcc`): update-intensive OLTP — about
  one write per two reads — with NURand skew concentrating ~75% of
  accesses on ~20% of the pages; the metric is tpmC (New-Order
  transactions per minute).
* **TPC-E** (:mod:`~repro.workloads.tpce`): read-intensive OLTP (~10:1
  read:write) over customers/trades; the metric is tpsE (Trade-Result
  transactions per second).
* **TPC-H** (:mod:`~repro.workloads.tpch`): scan-dominated decision
  support — 22 query templates mixing sequential table scans with random
  LINEITEM index lookups, run as a Power test (queries serially) and a
  Throughput test (concurrent streams with refresh functions); the metric
  is QphH.
"""

from repro.workloads.distributions import NURand, ZipfGenerator
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload
from repro.workloads.tpch import TpchWorkload
from repro.workloads.traffic import (BurstyArrivals, DiurnalArrivals,
                                     PoissonArrivals, TenantSpec,
                                     parse_arrivals, parse_tenants,
                                     single_tenant)

__all__ = [
    "BurstyArrivals",
    "DiurnalArrivals",
    "NURand",
    "PoissonArrivals",
    "TenantSpec",
    "TpccWorkload",
    "TpceWorkload",
    "TpchWorkload",
    "ZipfGenerator",
    "parse_arrivals",
    "parse_tenants",
    "single_tenant",
]
