"""Skewed access distributions used by the workload generators."""

from __future__ import annotations

import bisect
import math
import random
from typing import List


class NURand:
    """TPC-C's non-uniform random distribution NURand(A, x, y).

    ``NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x``

    The OR of a small-range and a full-range uniform value concentrates
    the mass on a hot subset — the source of TPC-C's "75% of accesses go
    to 20% of the pages" skew the paper cites (Leutenegger & Dias).
    """

    def __init__(self, a: int, x: int, y: int, c: int = 7):
        if y < x:
            raise ValueError(f"empty range [{x}, {y}]")
        if a < 1:
            raise ValueError(f"A must be >= 1, got {a}")
        self.a = a
        self.x = x
        self.y = y
        self.c = c

    @staticmethod
    def for_range(n: int, c: int = 7) -> "NURand":
        """NURand over [0, n) with A chosen like TPC-C scales it (~n/8,
        rounded to a power-of-two mask)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        a = max(1, (1 << max(0, int(math.log2(max(2, n))) - 3)) - 1)
        return NURand(a, 0, n - 1, c)

    def sample(self, rng: random.Random) -> int:
        spread = self.y - self.x + 1
        value = (rng.randint(0, self.a) | rng.randint(self.x, self.y))
        return (value + self.c) % spread + self.x


class ZipfGenerator:
    """Zipf-distributed ranks over [0, n) via inverse-CDF sampling."""

    def __init__(self, n: int, theta: float = 0.8):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if theta <= 0:
            raise ValueError(f"theta must be > 0, got {theta}")
        self.n = n
        self.theta = theta
        weights = [1.0 / (rank ** theta) for rank in range(1, n + 1)]
        total = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            total += weight
            self._cdf.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        point = rng.random() * self._total
        return bisect.bisect_left(self._cdf, point)


def scramble(value: int, n: int) -> int:
    """Deterministically scatter ``value`` across [0, n).

    Zipf ranks are hottest at 0; scrambling spreads the hot set across
    the page space so hot pages are not physically adjacent (which would
    unrealistically favour sequential I/O and extent-level policies).
    """
    if n <= 1:
        return 0
    # Multiplicative hashing with a large odd constant.
    return (value * 2_654_435_761) % n
