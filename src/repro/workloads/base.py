"""Shared transaction machinery for the workload generators."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.telemetry import NULL_TELEMETRY, TraceContext


class Transaction:
    """Collects a transaction's page operations and commits via the WAL.

    Workload code drives it with ``yield from``::

        txn = Transaction(system)
        yield from txn.read(page_id)
        yield from txn.update(page_id)
        yield from txn.commit()

    ``commit`` forces the log up to the transaction's last record (group
    commit batches concurrent forcers) and, if the workload keeps a
    committed-state oracle, publishes the written versions into it — the
    ground truth the crash-recovery tests verify against.

    When tracing is enabled, the transaction carries a
    :class:`~repro.telemetry.TraceContext` (``txn_type`` names the
    workload's transaction kind) so every wait and I/O it causes is
    attributed to it, and ``commit`` records the transaction's own span
    on the ``txn`` track — ``repro analyze`` reconstructs per-transaction
    waterfalls from these.
    """

    #: Process-global fallback for the bare stand-in objects unit tests
    #: pass as ``system``.  Real :class:`~repro.harness.system.System`
    #: instances allocate through their own ``next_txn_id`` so ids (and
    #: hence traces) restart from 1 on every run, even the second run in
    #: one process.
    _next_id = 0

    def __init__(self, system, oracle: Optional[Dict[int, int]] = None,
                 txn_type: str = "txn", tenant: Optional[str] = None):
        self.system = system
        self.oracle = oracle
        alloc = getattr(system, "next_txn_id", None)
        if alloc is None:
            Transaction._next_id += 1
            self.txn_id = Transaction._next_id
        else:
            self.txn_id = alloc()
        self.txn_type = txn_type
        self.tenant = tenant
        self.last_lsn = -1
        self.writes: List[Tuple[int, int]] = []
        telemetry = getattr(system, "telemetry", NULL_TELEMETRY)
        self._tracer = (telemetry or NULL_TELEMETRY).tracer
        self.ctx: Optional[TraceContext] = None
        if self._tracer.enabled:
            self.ctx = TraceContext.for_txn(self.txn_id, txn_type, tenant)
        # In the simulation a transaction starts executing at the virtual
        # instant it is constructed (no yields in between).
        self._started = self._tracer.now

    def read(self, page_id: int):
        """Process step: read one page (fetch + unpin)."""
        bp = self.system.bp
        frame = bp.pin_hit(page_id)
        if frame is None:
            frame = yield from bp.fetch(page_id, ctx=self.ctx)
        frame.pin_count -= 1
        return frame

    def update(self, page_id: int):
        """Process step: read-modify-write one page."""
        bp = self.system.bp
        frame = bp.pin_hit(page_id)
        if frame is None:
            frame = yield from bp.fetch(page_id, ctx=self.ctx)
        self.last_lsn = bp.mark_dirty(frame, txn_id=self.txn_id)
        self.writes.append((frame.page_id, frame.version))
        frame.pin_count -= 1
        return frame

    def index_lookup(self, tree, key: int):
        """Process step: B+-tree point lookup."""
        return (yield from tree.lookup(self.system.bp, key, ctx=self.ctx))

    def index_update(self, tree, key: int):
        """Process step: B+-tree in-place update (dirties the leaf)."""
        bp = self.system.bp
        frame, leaf = yield from tree._fetch_leaf_frame(bp, key, ctx=self.ctx)
        self.last_lsn = bp.mark_dirty(frame, txn_id=self.txn_id)
        self.writes.append((frame.page_id, frame.version))
        frame.pin_count -= 1

    def index_insert(self, tree, key: int):
        """Process step: B+-tree insert (may split pages)."""
        inserted = yield from tree.insert(self.system.bp, key,
                                          txn_id=self.txn_id, ctx=self.ctx)
        if inserted:
            self.last_lsn = max(self.last_lsn, self.system.wal.tail_lsn)
        return inserted

    def commit(self):
        """Process step: force the log through this transaction's tail."""
        if self.last_lsn >= 0:
            wal = self.system.wal
            if self.last_lsn > wal.flushed_lsn:
                yield from wal.force(self.last_lsn, ctx=self.ctx)
            if self.oracle is not None:
                for page_id, version in self.writes:
                    if version > self.oracle.get(page_id, -1):
                        self.oracle[page_id] = version
        if self.ctx is not None and self._tracer.enabled:
            self._tracer.complete(self.txn_type, self._started,
                                  self._tracer.now, "txn", "txn",
                                  {"writes": len(self.writes)},
                                  ctx=self.ctx)


class AppendRegion:
    """An append-only heap region (TPC-C's HISTORY, order lines, …).

    Each insert dirties the current tail page; every ``rows_per_page``
    inserts the tail advances, wrapping when the region fills (standing
    in for space reuse so long runs don't exhaust the region).
    """

    def __init__(self, first_page: int, npages: int, rows_per_page: int = 20):
        self.first_page = first_page
        self.npages = npages
        self.rows_per_page = rows_per_page
        self._rows = 0

    @property
    def tail_page(self) -> int:
        """The page the next insert lands on."""
        return self.first_page + (self._rows // self.rows_per_page) % self.npages

    def append(self, txn: Transaction):
        """Process step: insert one row at the tail."""
        page = self.tail_page
        self._rows += 1
        yield from txn.update(page)


def choose_mix(rng: random.Random, mix: List[Tuple[str, float]]) -> str:
    """Pick a transaction type from a (name, weight) mix."""
    point = rng.random()
    cumulative = 0.0
    for name, weight in mix:
        cumulative += weight
        if point < cumulative:
            return name
    return mix[-1][0]
