"""A TPC-E-like OLTP workload.

TPC-E differs from TPC-C in exactly the way the paper leans on (§1, §4.3):
it is **read-intensive** — roughly an order of magnitude more page reads
than writes — so the write-back advantage of LC disappears and all three
SSD designs (and TAC) perform similarly.  Its working set is broader and
less skewed than TPC-C's, which produces the paper's working-set-vs-SSD
crossover: the 20K-customer database's working set roughly fits the SSD
(peak gains), the 10K one largely fits in RAM + easily in the SSD, and
the 40K one overflows it.

The scaled database keeps the paper's sizing: 10K/20K/40K customers are
115/230/415 GB, i.e. 11.5k/23k/41.5k pages at 100 pages per GB.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.workloads.base import Transaction, choose_mix
from repro.workloads.distributions import ZipfGenerator, scramble

#: Transaction mix (simplified from TPC-E's 10 types; weights chosen to
#: keep Trade-Result — the measured transaction — near its spec share
#: and the read:write page ratio near 10:1).
MIX = [
    ("trade_result", 0.10),
    ("trade_order", 0.10),
    ("trade_lookup", 0.15),
    ("customer_position", 0.25),
    ("market_watch", 0.20),
    ("security_detail", 0.20),
]


class TpceWorkload:
    """TPC-E-like transactions over a customer-scaled database."""

    metric_name = "tpsE"
    metric_transaction = "trade_result"
    metric_window = 1.0  # transactions per *second*

    def __init__(self, customers_k: int, pages_per_customer_k: float = 1_150,
                 skew_theta: float = 0.55,
                 oracle: Optional[Dict[int, int]] = None):
        if customers_k < 1:
            raise ValueError(f"customers_k must be >= 1, got {customers_k}")
        self.customers_k = customers_k
        self.skew_theta = skew_theta
        self.oracle = oracle
        total = int(customers_k * pages_per_customer_k)
        self.trade_pages = total * 50 // 100
        self.customer_pages = total * 25 // 100
        self.security_pages = total * 15 // 100
        self.holding_pages = total * 10 // 100

    def db_pages(self) -> int:
        """Total pages the workload's tables need."""
        return (self.trade_pages + self.customer_pages + self.security_pages
                + self.holding_pages)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self, system) -> None:
        """Create tables/indexes in the system's catalog."""
        db = system.db
        self.trade = db.create_index("trade", range(self.trade_pages))
        self.customer = db.create_index("customer", range(self.customer_pages))
        self.security = db.create_table("security", self.security_pages)
        self.holding = db.create_index("holding", range(self.holding_pages))
        self._trade_zipf = ZipfGenerator(self.trade_pages, self.skew_theta)
        self._customer_zipf = ZipfGenerator(self.customer_pages,
                                            self.skew_theta)
        self._holding_zipf = ZipfGenerator(self.holding_pages,
                                           self.skew_theta)
        # Securities/market data: small hot set, mostly buffer-resident.
        self._security_zipf = ZipfGenerator(self.security_pages, 0.9)

    # ------------------------------------------------------------------
    # Page pickers
    # ------------------------------------------------------------------

    def _trade_key(self, rng: random.Random) -> int:
        return scramble(self._trade_zipf.sample(rng), self.trade_pages)

    def _customer_key(self, rng: random.Random) -> int:
        return scramble(self._customer_zipf.sample(rng), self.customer_pages)

    def _holding_key(self, rng: random.Random) -> int:
        return scramble(self._holding_zipf.sample(rng), self.holding_pages)

    def _security_page(self, rng: random.Random) -> int:
        rank = self._security_zipf.sample(rng)
        return self.security.first_page + scramble(rank, self.security_pages)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self, rng: random.Random, system):
        """Pick a transaction from the mix; returns ``(name, generator)``."""
        name = choose_mix(rng, MIX)
        return name, getattr(self, "_" + name)(rng, system)

    def _trade_result(self, rng: random.Random, system):
        """The measured transaction: settle a trade (read + update)."""
        txn = Transaction(system, self.oracle, txn_type="trade_result")
        key = self._trade_key(rng)
        yield from txn.index_lookup(self.trade, key)
        yield from txn.index_update(self.trade, key)
        ckey = self._customer_key(rng)
        yield from txn.index_lookup(self.customer, ckey)
        hkey = self._holding_key(rng)
        yield from txn.index_lookup(self.holding, hkey)
        yield from txn.index_update(self.holding, hkey)
        yield from txn.read(self._security_page(rng))
        yield from txn.commit()

    def _trade_order(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="trade_order")
        yield from txn.index_lookup(self.customer, self._customer_key(rng))
        yield from txn.read(self._security_page(rng))
        yield from txn.index_update(self.trade, self._trade_key(rng))
        yield from txn.commit()

    def _trade_lookup(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="trade_lookup")
        for _ in range(4):
            yield from txn.index_lookup(self.trade, self._trade_key(rng))
        yield from txn.commit()

    def _customer_position(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="customer_position")
        yield from txn.index_lookup(self.customer, self._customer_key(rng))
        for _ in range(4):
            yield from txn.index_lookup(self.holding, self._holding_key(rng))
        yield from txn.commit()

    def _market_watch(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="market_watch")
        for _ in range(5):
            yield from txn.read(self._security_page(rng))
        yield from txn.commit()

    def _security_detail(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="security_detail")
        yield from txn.read(self._security_page(rng))
        yield from txn.index_lookup(self.trade, self._trade_key(rng))
        yield from txn.commit()
