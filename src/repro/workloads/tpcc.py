"""A TPC-C-like OLTP workload.

Reproduces the properties the paper's TPC-C analysis rests on (§4.2):

* **update-intensive** — "every two read accesses are accompanied by a
  write access";
* **highly skewed** — "75% of the accesses are to about 20% of the pages"
  (Leutenegger & Dias), produced here by NURand/Zipf page selection;
* hot pages are **re-dirtied** — the reason the write-back LC design wins
  so decisively on this benchmark.

The five transaction types follow the TPC-C mix (New-Order 45%, Payment
43%, Order-Status 4%, Delivery 4%, Stock-Level 4%); per-transaction page
footprints are scaled down alongside the database so that simulated runs
stay laptop-sized while keeping the read/write ratio and skew.

The scaled database keeps the paper's sizing ratios: one warehouse is
``pages_per_warehouse`` pages, so the paper's 1K/2K/4K-warehouse
(100/200/400 GB) databases map to 10k/20k/40k pages at the default
100 pages-per-GB profile.
"""

from __future__ import annotations

import copy
import random
from typing import Dict, List, Optional

from repro.workloads.base import AppendRegion, Transaction, choose_mix
from repro.workloads.distributions import ZipfGenerator, scramble

#: TPC-C transaction mix.
MIX = [
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
]


class TpccWorkload:
    """TPC-C-like transactions over a warehouse-scaled database."""

    metric_name = "tpmC"
    metric_transaction = "new_order"
    metric_window = 60.0  # transactions per *minute*

    def __init__(self, warehouses: int, pages_per_warehouse: int = 10,
                 item_pages: int = 100, skew_theta: float = 0.85,
                 oracle: Optional[Dict[int, int]] = None):
        if warehouses < 1:
            raise ValueError(f"warehouses must be >= 1, got {warehouses}")
        self.warehouses = warehouses
        self.item_pages = item_pages
        self.skew_theta = skew_theta
        #: Committed page versions, for crash-recovery verification.
        self.oracle = oracle
        #: Tenant name stamped on this view's transactions (None for the
        #: base single-tenant workload); see :meth:`tenant_view`.
        self.tenant: Optional[str] = None
        w = warehouses
        self.stock_pages = 4 * w * pages_per_warehouse // 10
        self.customer_pages = 3 * w * pages_per_warehouse // 10
        self.orders_pages = 2 * w * pages_per_warehouse // 10
        self.history_pages = max(1, w * pages_per_warehouse // 10)
        self.district_pages = max(1, w // 10)

    def db_pages(self) -> int:
        """Total pages the workload's tables need (pre-slack)."""
        return (self.stock_pages + self.customer_pages + self.orders_pages
                + self.history_pages + self.district_pages + self.item_pages)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self, system) -> None:
        """Create tables/indexes in the system's catalog."""
        db = system.db
        self.item = db.create_table("item", self.item_pages)
        self.district = db.create_table("warehouse_district",
                                        self.district_pages)
        history_heap = db.create_table("history", self.history_pages)
        self.history = AppendRegion(history_heap.first_page,
                                    history_heap.npages)
        # Clustered B+-trees with page-granular keys: key k lives in the
        # k-th leaf, so leaf fetches are the data-page accesses.
        self.stock = db.create_index("stock", range(self.stock_pages))
        self.customer = db.create_index("customer", range(self.customer_pages))
        self.orders = db.create_index("orders", range(self.orders_pages))
        # One-element cell, not a plain int: tenant views are shallow
        # copies, and all of them must advance the *same* insert cursor.
        self._orders_next: List[int] = [self.orders_pages]
        self._stock_zipf = ZipfGenerator(self.stock_pages, self.skew_theta)
        self._customer_zipf = ZipfGenerator(self.customer_pages,
                                            self.skew_theta)

    def tenant_view(self, tenant: str,
                    theta: Optional[float] = None) -> "TpccWorkload":
        """A per-tenant view over this (already set-up) workload.

        The view shares every table, the history region, and the orders
        insert cursor with the base workload — tenants contend on the
        same database — but stamps ``tenant`` on its transactions and,
        when ``theta`` is given, draws its stock/customer accesses from
        its own Zipf skew (the per-tenant noisy-neighbor knob).
        """
        if not hasattr(self, "stock"):
            raise RuntimeError("tenant_view requires setup() first")
        view = copy.copy(self)
        view.tenant = tenant
        if theta is not None:
            view.skew_theta = theta
            view._stock_zipf = ZipfGenerator(self.stock_pages, theta)
            view._customer_zipf = ZipfGenerator(self.customer_pages, theta)
        return view

    @property
    def _orders_next_key(self) -> int:
        return self._orders_next[0]

    @_orders_next_key.setter
    def _orders_next_key(self, value: int) -> None:
        self._orders_next[0] = value

    # ------------------------------------------------------------------
    # Page pickers (Zipf rank -> scrambled page-granular key)
    # ------------------------------------------------------------------

    def _stock_key(self, rng: random.Random) -> int:
        return scramble(self._stock_zipf.sample(rng), self.stock_pages)

    def _customer_key(self, rng: random.Random) -> int:
        return scramble(self._customer_zipf.sample(rng), self.customer_pages)

    def _district_page(self, rng: random.Random) -> int:
        return self.district.first_page + rng.randrange(self.district_pages)

    def _item_page(self, rng: random.Random) -> int:
        return self.item.first_page + rng.randrange(self.item_pages)

    def _recent_order_key(self, rng: random.Random) -> int:
        recent = max(1, self.orders_pages // 20)
        top = min(self._orders_next_key, self.orders_pages) - 1
        return max(0, top - rng.randrange(recent))

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self, rng: random.Random, system):
        """Pick a transaction from the mix; returns ``(name, generator)``."""
        name = choose_mix(rng, MIX)
        return name, getattr(self, "_" + name)(rng, system)

    def _new_order(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="new_order",
                          tenant=self.tenant)
        yield from txn.update(self._district_page(rng))  # next order id
        yield from txn.index_lookup(self.customer, self._customer_key(rng))
        for _ in range(5):  # order lines (scaled from TPC-C's ~10)
            yield from txn.read(self._item_page(rng))
            key = self._stock_key(rng)
            yield from txn.index_lookup(self.stock, key)
            yield from txn.index_update(self.stock, key)
        # Insert the order: dirty the rightmost leaf; roughly one in
        # rows-per-page inserts adds a new leaf page (a split: the
        # on-the-fly dirty page TAC cannot cache).
        grow = rng.random() < 0.05 and system.db.free_pages > 64
        if grow:
            yield from txn.index_insert(self.orders, self._orders_next_key)
            self._orders_next_key += 1
        else:
            yield from txn.index_update(self.orders, self._orders_next_key - 1)
        yield from txn.commit()

    def _payment(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="payment",
                          tenant=self.tenant)
        yield from txn.update(self._district_page(rng))
        key = self._customer_key(rng)
        yield from txn.index_lookup(self.customer, key)
        yield from txn.index_update(self.customer, key)
        yield from self.history.append(txn)
        yield from txn.commit()

    def _order_status(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="order_status",
                          tenant=self.tenant)
        yield from txn.index_lookup(self.customer, self._customer_key(rng))
        for _ in range(3):
            yield from txn.index_lookup(self.orders,
                                        self._recent_order_key(rng))
        yield from txn.commit()

    def _delivery(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="delivery",
                          tenant=self.tenant)
        for _ in range(5):  # scaled from TPC-C's 10 districts
            yield from txn.index_update(self.orders,
                                        self._recent_order_key(rng))
            yield from txn.index_update(self.customer,
                                        self._customer_key(rng))
        yield from txn.commit()

    def _stock_level(self, rng: random.Random, system):
        txn = Transaction(system, self.oracle, txn_type="stock_level",
                          tenant=self.tenant)
        yield from txn.read(self._district_page(rng))
        for _ in range(10):
            yield from txn.index_lookup(self.stock, self._stock_key(rng))
        yield from txn.commit()
