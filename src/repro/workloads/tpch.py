"""A TPC-H-like decision-support workload.

Implements what the paper's §4.4 exercises:

* 22 query templates, each a mix of **sequential table scans** (driven
  through read-ahead, hence not SSD-cached) and **random index lookups
  into LINEITEM** ("some queries in the workload are dominated by index
  lookups in the LINEITEM table which are mostly random I/O accesses" —
  the reason the SSD helps at all on this benchmark);
* the **Power test** — RF1, the 22 queries serially, RF2 — and the
  **Throughput test** — several concurrent query streams plus a refresh
  stream (4 streams at 30 SF, 5 at 100 SF, as in the paper);
* the QppH / QthH / QphH metrics per the TPC-H composite formulas.

Scaled sizing matches the paper's databases: 30 SF ≈ 45 GB and
100 SF ≈ 160 GB, i.e. 4.5k and 16k pages at 100 pages per GB.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.workloads.base import Transaction
from repro.workloads.distributions import scramble


@dataclass(frozen=True)
class QueryProfile:
    """I/O profile of one query template.

    ``scans`` — (table name, fraction of that table scanned);
    ``li_lookup_fraction`` — random LINEITEM index lookups, as a fraction
    of LINEITEM's page count.
    """

    number: int
    scans: Tuple[Tuple[str, float], ...] = ()
    li_lookup_fraction: float = 0.0


#: The 22 query templates.  Fractions are plausible plan shapes (full
#: scans of the tables each query touches, partial scans where predicates
#: prune, index nested loops where SQL Server-style plans seek LINEITEM).
QUERIES: Tuple[QueryProfile, ...] = (
    QueryProfile(1, (("lineitem", 1.0),)),
    QueryProfile(2, (("part", 1.0), ("partsupp", 0.5)), 0.05),
    QueryProfile(3, (("customer", 1.0), ("orders", 1.0)), 0.10),
    QueryProfile(4, (("orders", 1.0),), 0.08),
    QueryProfile(5, (("customer", 1.0), ("orders", 0.5), ("lineitem", 0.3))),
    QueryProfile(6, (("lineitem", 1.0),)),
    QueryProfile(7, (("customer", 0.5), ("orders", 0.4), ("lineitem", 0.4))),
    QueryProfile(8, (("part", 1.0), ("orders", 0.6)), 0.06),
    QueryProfile(9, (("part", 1.0), ("partsupp", 1.0), ("lineitem", 0.5))),
    QueryProfile(10, (("customer", 1.0), ("orders", 0.4), ("lineitem", 0.25))),
    QueryProfile(11, (("partsupp", 1.0), ("supplier", 1.0))),
    QueryProfile(12, (("orders", 0.7), ("lineitem", 0.5))),
    QueryProfile(13, (("customer", 1.0), ("orders", 1.0))),
    QueryProfile(14, (("lineitem", 0.15), ("part", 0.6))),
    QueryProfile(15, (("lineitem", 0.25), ("supplier", 1.0))),
    QueryProfile(16, (("partsupp", 0.8), ("part", 0.7))),
    QueryProfile(17, (("part", 1.0), ("lineitem", 0.2)), 0.15),
    QueryProfile(18, (("orders", 1.0), ("lineitem", 0.8))),
    QueryProfile(19, (("part", 1.0), ("lineitem", 0.15)), 0.12),
    QueryProfile(20, (("part", 0.5), ("partsupp", 0.8)), 0.10),
    QueryProfile(21, (("supplier", 1.0), ("orders", 0.5), ("lineitem", 0.6)),
                 0.06),
    QueryProfile(22, (("customer", 0.8), ("orders", 0.3)), 0.04),
)

#: Table sizes as fractions of the database's pages.
TABLE_FRACTIONS = {
    "lineitem": 0.62,
    "orders": 0.16,
    "partsupp": 0.08,
    "part": 0.05,
    "customer": 0.04,
    "supplier": 0.01,
}


@dataclass
class TpchResult:
    """Outcome of a full TPC-H run (power + throughput tests)."""

    sf: int
    query_times: Dict[int, float] = field(default_factory=dict)
    rf_times: List[float] = field(default_factory=list)
    power_elapsed: float = 0.0
    throughput_elapsed: float = 0.0
    streams: int = 0

    @property
    def power(self) -> float:
        """QppH@SF: 3600·SF over the geometric mean of the 24 timings."""
        timings = list(self.query_times.values()) + self.rf_times
        timings = [max(t, 1e-9) for t in timings]
        geomean = math.exp(sum(math.log(t) for t in timings) / len(timings))
        return 3600.0 * self.sf / geomean

    @property
    def throughput(self) -> float:
        """QthH@SF: (streams · 22 · 3600 / elapsed) · SF."""
        if self.throughput_elapsed <= 0:
            return 0.0
        return (self.streams * len(QUERIES) * 3600.0
                / self.throughput_elapsed) * self.sf

    @property
    def qphh(self) -> float:
        """The composite metric: sqrt(power · throughput)."""
        return math.sqrt(max(0.0, self.power) * max(0.0, self.throughput))


class TpchWorkload:
    """TPC-H-like power and throughput tests."""

    metric_name = "QphH"

    def __init__(self, sf: int, db_gb: Optional[float] = None,
                 pages_per_gb: int = 100,
                 oracle: Optional[Dict[int, int]] = None):
        if sf < 1:
            raise ValueError(f"sf must be >= 1, got {sf}")
        self.sf = sf
        # The paper's databases: 30 SF = 45 GB, 100 SF = 160 GB.
        self.db_gb = db_gb if db_gb is not None else 1.5 * sf
        self.total_pages = int(self.db_gb * pages_per_gb)
        self.oracle = oracle
        self.streams = 4 if sf <= 30 else 5

    def db_pages(self) -> int:
        """Total pages the workload's tables and index need."""
        index_pages = max(8, self.total_pages // 50)
        return sum(int(self.total_pages * frac)
                   for frac in TABLE_FRACTIONS.values()) + index_pages

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def setup(self, system) -> None:
        """Create tables and the LINEITEM index in the catalog."""
        db = system.db
        self.tables = {
            name: db.create_table(name, max(4, int(self.total_pages * frac)))
            for name, frac in TABLE_FRACTIONS.items()
        }
        lineitem = self.tables["lineitem"]
        # Non-clustered index over LINEITEM: page-granular keys packed
        # densely into index leaves (classic layout); a lookup walks the
        # index then fetches the (scrambled) data page randomly.
        self.li_index = db.create_index("lineitem_idx",
                                        range(lineitem.npages),
                                        leaf_capacity=63)
        self._li_pages = lineitem.npages

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    #: Concurrent outstanding index lookups within one query — SQL Server
    #: prefetches asynchronously for index nested-loop joins, so a single
    #: stream keeps several random I/Os in flight.
    lookup_parallelism = 8

    def run_query(self, system, profile: QueryProfile, rng: random.Random):
        """Process step: execute one query template."""
        txn = Transaction(system, self.oracle,
                          txn_type=f"q{profile.number}")
        for table_name, fraction in profile.scans:
            table = self.tables[table_name]
            npages = max(1, int(table.npages * fraction))
            yield from table.scan(system.bp, npages=npages, ctx=txn.ctx)
        nlookups = int(profile.li_lookup_fraction * self._li_pages)
        keys = [rng.randrange(self._li_pages) for _ in range(nlookups)]
        for start in range(0, nlookups, self.lookup_parallelism):
            wave = [
                system.env.process(self._one_lookup(system, txn, key))
                for key in keys[start:start + self.lookup_parallelism]
            ]
            yield system.env.all_of(wave)
        yield from txn.commit()

    def _one_lookup(self, system, txn: Transaction, key: int):
        """Process step: index seek plus the random data-page fetch."""
        yield from txn.index_lookup(self.li_index, key)
        lineitem = self.tables["lineitem"]
        page = lineitem.first_page + scramble(key, self._li_pages)
        yield from txn.read(page)

    def refresh(self, system, rng: random.Random):
        """Process step: one RF1+RF2 pair (inserts then deletes ≈ 0.1%
        of ORDERS and LINEITEM pages dirtied)."""
        txn = Transaction(system, self.oracle, txn_type="refresh")
        for table_name in ("orders", "lineitem"):
            table = self.tables[table_name]
            touched = max(1, table.npages // 1000)
            for _ in range(touched):
                page = table.first_page + rng.randrange(table.npages)
                yield from txn.update(page)
        yield from txn.commit()

    # ------------------------------------------------------------------
    # The two tests
    # ------------------------------------------------------------------

    def power_test(self, system, result: TpchResult, seed: int = 1):
        """Process step: RF1, the 22 queries serially, RF2."""
        rng = random.Random(seed)
        started = system.env.now
        rf_start = system.env.now
        yield from self.refresh(system, rng)
        result.rf_times.append(system.env.now - rf_start)
        for profile in QUERIES:
            q_start = system.env.now
            yield from self.run_query(system, profile, rng)
            result.query_times[profile.number] = system.env.now - q_start
        rf_start = system.env.now
        yield from self.refresh(system, rng)
        result.rf_times.append(system.env.now - rf_start)
        result.power_elapsed = system.env.now - started

    def throughput_test(self, system, result: TpchResult, seed: int = 2):
        """Process step: ``self.streams`` concurrent query streams plus a
        refresh stream; elapsed wall (virtual) time drives QthH."""
        env = system.env
        started = env.now
        result.streams = self.streams

        def stream(stream_no: int):
            rng = random.Random(seed * 1000 + stream_no)
            order = list(QUERIES)
            rng.shuffle(order)
            for profile in order:
                yield from self.run_query(system, profile, rng)

        def refresher():
            rng = random.Random(seed * 7777)
            for _ in range(self.streams):
                yield from self.refresh(system, rng)

        procs = [env.process(stream(i)) for i in range(self.streams)]
        procs.append(env.process(refresher()))
        yield env.all_of(procs)
        result.throughput_elapsed = env.now - started

    def full_run(self, system):
        """Process step: power test then throughput test, as the spec
        (and the paper) order them.  Returns a :class:`TpchResult`."""
        result = TpchResult(sf=self.sf)
        yield from self.power_test(system, result)
        yield from self.throughput_test(system, result)
        return result
