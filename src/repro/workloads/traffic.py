"""Open-loop traffic: seeded arrival processes and multi-tenant specs.

The paper's methodology (and :class:`~repro.harness.runner.WorkloadRunner`)
is *closed-loop*: N clients issue transactions back-to-back, so offered
load is capped by N and can never exceed service capacity.  This module
is the *open-loop* alternative: an arrival process generates transaction
start times at a configured rate regardless of how the system keeps up,
so one run can represent millions of logical users — the user count is
just ``rate × think_time`` — and overload becomes measurable (queue
growth, shed arrivals) instead of impossible.

Three seeded arrival processes cover the shapes ROADMAP item 1 asks for:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate;
* :class:`BurstyArrivals` — an interrupted-Poisson (on/off) process whose
  on-rate is ``burst`` times its off-rate, normalized so the *long-run
  mean* still equals ``rate``;
* :class:`DiurnalArrivals` — a sinusoidally modulated Poisson process
  (Lewis–Shedler thinning) with a ``peak/trough`` ratio of ``peak``,
  again mean-preserving.

All three are driven by an explicit ``random.Random`` — same seed, same
arrival times, which the determinism tests assert.

A :class:`TenantSpec` pairs an arrival process with a per-tenant Zipf
skew, giving the noisy-neighbor scenario space: tenants share one buffer
pool and one SSD, and the SSD partition knob N
(:attr:`repro.core.SsdDesignConfig.partitions`, §3.3.4) is the isolation
mechanism under test.

Spec grammar (CLI ``repro traffic``)::

    arrivals := kind[:key=value]*
    kind     := poisson | bursty | diurnal
    rate     := rate=<arrivals/sec> | users=<count>:think=<seconds>
    tenants  := name=arrivals[:theta=<zipf skew>][;name=arrivals...]

e.g. ``--tenants 'gold=poisson:users=800000:think=100:theta=0.6;
noisy=bursty:rate=300:burst=10:theta=0.99'``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: Default think time (seconds) used to translate a logical-user count
#: into an arrival rate: ``rate = users / think``.  100 s between
#: transactions is a browsing-user cadence; a million such users offer
#: 10k transactions per second.
DEFAULT_THINK_SECONDS = 100.0


class PoissonArrivals:
    """Memoryless arrivals at a constant ``rate`` per second."""

    kind = "poisson"

    def __init__(self, rate: float, users: Optional[float] = None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = rate
        #: Logical users this rate represents (when spec'd via users=).
        self.users = users

    @property
    def mean_rate(self) -> float:
        """Long-run arrivals per second."""
        return self.rate

    def times(self, rng: random.Random,
              start: float = 0.0) -> Iterator[float]:
        """Infinite iterator of absolute arrival times."""
        t = start
        while True:
            t += rng.expovariate(self.rate)
            yield t

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self.rate:g})"


class BurstyArrivals:
    """On/off (interrupted Poisson) arrivals with mean ``rate``.

    The process alternates exponentially-long *on* and *off* periods
    (mean durations ``on_fraction * cycle`` and ``(1 - on_fraction) *
    cycle`` seconds).  During *on* periods arrivals are Poisson at
    ``burst`` times the off-period rate; both rates are solved so the
    long-run mean is exactly ``rate``:

        rate_off = rate / (f * burst + 1 - f),   rate_on = burst * rate_off

    so comparisons against :class:`PoissonArrivals` at the same ``rate``
    differ only in burstiness, not in offered volume.
    """

    kind = "bursty"

    def __init__(self, rate: float, burst: float = 8.0,
                 on_fraction: float = 0.2, cycle: float = 10.0,
                 users: Optional[float] = None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if not 0.0 < on_fraction < 1.0:
            raise ValueError(
                f"on_fraction must be in (0, 1), got {on_fraction}")
        if cycle <= 0:
            raise ValueError(f"cycle must be > 0, got {cycle}")
        self.rate = rate
        self.burst = burst
        self.on_fraction = on_fraction
        self.cycle = cycle
        self.users = users
        f = on_fraction
        self.rate_off = rate / (f * burst + 1.0 - f)
        self.rate_on = burst * self.rate_off

    @property
    def mean_rate(self) -> float:
        return self.rate

    def times(self, rng: random.Random,
              start: float = 0.0) -> Iterator[float]:
        t = start
        mean_on = self.on_fraction * self.cycle
        mean_off = (1.0 - self.on_fraction) * self.cycle
        while True:
            for period_rate, mean_len in ((self.rate_on, mean_on),
                                          (self.rate_off, mean_off)):
                end = t + rng.expovariate(1.0 / mean_len)
                while True:
                    nxt = t + rng.expovariate(period_rate)
                    if nxt >= end:
                        # No arrival before the phase flips; restarting
                        # the exponential in the next phase is exact
                        # (memorylessness).
                        t = end
                        break
                    t = nxt
                    yield t

    def __repr__(self) -> str:
        return (f"BurstyArrivals(rate={self.rate:g}, burst={self.burst:g}, "
                f"on_fraction={self.on_fraction:g}, cycle={self.cycle:g})")


class DiurnalArrivals:
    """Sinusoidal day/night arrival rate with mean ``rate``.

    The instantaneous rate is ``rate * (1 + a * sin(2πt / period))`` with
    ``a = (peak - 1) / (peak + 1)``, so the peak-to-trough ratio is
    exactly ``peak`` and the time-average is ``rate``.  Sampling uses
    Lewis–Shedler thinning against the peak rate, which stays exact for
    any modulation.
    """

    kind = "diurnal"

    def __init__(self, rate: float, period: float = 86_400.0,
                 peak: float = 3.0, users: Optional[float] = None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if peak < 1.0:
            raise ValueError(f"peak must be >= 1, got {peak}")
        self.rate = rate
        self.period = period
        self.peak = peak
        self.users = users
        self.amplitude = (peak - 1.0) / (peak + 1.0)
        self.max_rate = rate * (1.0 + self.amplitude)

    @property
    def mean_rate(self) -> float:
        return self.rate

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at absolute time ``t``."""
        return self.rate * (1.0 + self.amplitude
                            * math.sin(2.0 * math.pi * t / self.period))

    def times(self, rng: random.Random,
              start: float = 0.0) -> Iterator[float]:
        t = start
        max_rate = self.max_rate
        while True:
            t += rng.expovariate(max_rate)
            if rng.random() * max_rate <= self.rate_at(t):
                yield t

    def __repr__(self) -> str:
        return (f"DiurnalArrivals(rate={self.rate:g}, "
                f"period={self.period:g}, peak={self.peak:g})")


#: kind name -> (class, {extra key: attribute})
_ARRIVAL_KINDS = {
    "poisson": (PoissonArrivals, ()),
    "bursty": (BurstyArrivals, ("burst", "on_fraction", "cycle")),
    "diurnal": (DiurnalArrivals, ("period", "peak")),
}

#: Grammar aliases accepted for constructor keywords.
_KEY_ALIASES = {"on": "on_fraction"}


def _parse_fields(parts: List[str], spec: str) -> Dict[str, float]:
    fields: Dict[str, float] = {}
    for part in parts:
        if "=" not in part:
            raise ValueError(
                f"bad arrival field {part!r} in {spec!r} (want key=value)")
        key, _, value = part.partition("=")
        key = _KEY_ALIASES.get(key.strip(), key.strip())
        try:
            fields[key] = float(value)
        except ValueError:
            raise ValueError(
                f"non-numeric value for {key!r} in {spec!r}: {value!r}"
            ) from None
    return fields


def parse_arrivals(spec: str):
    """Parse an arrival spec string (see module docstring grammar).

    The offered rate comes from either ``rate=`` or the pair
    ``users=``/``think=`` (``rate = users / think``; ``think`` defaults
    to :data:`DEFAULT_THINK_SECONDS`).
    """
    parts = [p for p in spec.strip().split(":") if p]
    if not parts:
        raise ValueError("empty arrival spec")
    kind = parts[0].strip().lower()
    if kind not in _ARRIVAL_KINDS:
        raise ValueError(f"unknown arrival kind {kind!r}; "
                         f"choose from {sorted(_ARRIVAL_KINDS)}")
    fields = _parse_fields(parts[1:], spec)
    users = fields.pop("users", None)
    think = fields.pop("think", None)
    rate = fields.pop("rate", None)
    if rate is None:
        if users is None:
            raise ValueError(
                f"arrival spec {spec!r} needs rate= or users= (+think=)")
        rate = users / (think if think is not None else DEFAULT_THINK_SECONDS)
    elif users is None:
        users = rate * (think if think is not None else DEFAULT_THINK_SECONDS)
    cls, allowed = _ARRIVAL_KINDS[kind]
    unknown = set(fields) - set(allowed)
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} for {kind!r} in {spec!r}")
    return cls(rate, users=users, **fields)


@dataclass
class TenantSpec:
    """One tenant of an open-loop run: who arrives, how often, how skewed.

    ``theta`` is the tenant's Zipf skew over the shared database (None =
    the workload's default); it is what makes one tenant a "noisy
    neighbor" — a high-theta tenant hammers a few hot pages, a low-theta
    one sprays the whole working set.
    """

    name: str
    arrivals: object
    theta: Optional[float] = None

    @property
    def mean_rate(self) -> float:
        return self.arrivals.mean_rate

    @property
    def logical_users(self) -> float:
        """Logical users this tenant represents (rate × think time)."""
        users = getattr(self.arrivals, "users", None)
        if users is not None:
            return users
        return self.arrivals.mean_rate * DEFAULT_THINK_SECONDS


def parse_tenants(spec: str) -> List[TenantSpec]:
    """Parse a ``;``-separated multi-tenant spec (see module grammar)."""
    tenants: List[TenantSpec] = []
    seen = set()
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, eq, rest = chunk.partition("=")
        name = name.strip()
        if not eq or not name or "=" in name or ":" in name:
            raise ValueError(
                f"bad tenant spec {chunk!r} (want name=arrivals[:theta=...])")
        if name in seen:
            raise ValueError(f"duplicate tenant name {name!r}")
        seen.add(name)
        theta: Optional[float] = None
        parts = []
        for part in rest.split(":"):
            if part.startswith("theta="):
                theta = float(part[len("theta="):])
            else:
                parts.append(part)
        tenants.append(TenantSpec(name=name,
                                  arrivals=parse_arrivals(":".join(parts)),
                                  theta=theta))
    if not tenants:
        raise ValueError(f"no tenants in spec {spec!r}")
    return tenants


def single_tenant(arrivals_spec: str,
                  theta: Optional[float] = None) -> List[TenantSpec]:
    """Convenience: one anonymous tenant from a bare arrival spec."""
    return [TenantSpec(name="all", arrivals=parse_arrivals(arrivals_spec),
                       theta=theta)]


__all__ = [
    "DEFAULT_THINK_SECONDS",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "TenantSpec",
    "parse_arrivals",
    "parse_tenants",
    "single_tenant",
]
