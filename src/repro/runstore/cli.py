"""CLI for the run store: ``repro runs ...`` and ``repro serve``.

``repro runs`` queries the database every harness command records into:

* ``list``    — recent runs (design/benchmark/scale/commit filters);
* ``show``    — one run: spec, provenance, every metric;
* ``compare`` — newest run per design side by side (tpmC, tail
  latency, WAF — the BENCH_oltp.json numbers, served from the store);
* ``regress`` — p99 + WAF + throughput regression check against each
  grid cell's last-N baseline (CI's gate; exit 1 on findings);
* ``bench``   — the latest stored BENCH_<workload> document;
* ``record-bench`` — ingest measured microbench documents
  (``BENCH_sim.measured.json`` / ``BENCH_engine.measured.json``) as run
  rows, so ``regress`` gates kernel and engine throughput alongside the
  experiment grid.

``repro serve`` starts the HTML dashboard + JSON API
(:mod:`repro.runstore.dashboard`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional

from repro.harness.report import format_table
from repro.runstore.store import (DEFAULT_DB, RunStore, StoreError,
                                  db_path)


def add_db_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--db`` flag (recording and querying commands)."""
    parser.add_argument("--db", metavar="FILE", default=None,
                        help=f"run database (default: $REPRO_RUNSTORE "
                             f"or {DEFAULT_DB})")


def open_for_query(args: argparse.Namespace) -> RunStore:
    """Open the store for a query command; raises SystemExit(2) with a
    readable message when the database is missing or unusable."""
    path = db_path(args.db)
    if not path.exists():
        print(f"runs: no run database at {path} — record some runs "
              f"first (repro sweep / oltp / chaos)", file=sys.stderr)
        raise SystemExit(2)
    try:
        return RunStore(path)
    except StoreError as exc:
        print(f"runs: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _common_filters(args: argparse.Namespace) -> Dict[str, Any]:
    filters: Dict[str, Any] = {}
    if getattr(args, "benchmark", None):
        filters["benchmark"] = args.benchmark
    if getattr(args, "design", None):
        filters["design"] = args.design
    if getattr(args, "scale", None) is not None:
        filters["scale"] = args.scale
    if getattr(args, "commit", None):
        filters["commit"] = args.commit
    if getattr(args, "profile", None):
        filters["profile"] = args.profile
    return filters


def _fmt(value: Optional[float], fmt: str = "{:,.2f}") -> str:
    return fmt.format(value) if value is not None else "-"


def _short(commit: Optional[str], dirty: Optional[int] = 0) -> str:
    if not commit:
        return "-"
    return commit[:10] + ("*" if dirty else "")


def cmd_runs_list(args: argparse.Namespace) -> int:
    with open_for_query(args) as store:
        runs = store.list_runs(limit=args.limit, **_common_filters(args))
        rows = []
        for run in runs:
            metrics = store.metrics_for(run["id"])
            rows.append([
                f"#{run['id']}", run["kind"],
                f"{run['benchmark']}/{run['scale']}/{run['design']}",
                run["profile"],
                _short(run["git_commit"], run["git_dirty"]),
                run["status"],
                _fmt(metrics.get("value"), "{:,.1f}"),
                _fmt(metrics.get("latency_p99"), "{:.3f}"),
                _fmt(metrics.get("waf"), "{:.3f}"),
            ])
    print(format_table(
        f"runs — {len(rows)} shown (newest first)",
        ["run", "kind", "grid cell", "profile", "commit", "status",
         "value", "p99 (s)", "waf"], rows))
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    with open_for_query(args) as store:
        found = store.get_run(args.run_id)
        if found is None:
            print(f"runs: no run #{args.run_id}", file=sys.stderr)
            return 2
        run, metrics = found
        chaos = (store.chaos_for(args.run_id)
                 if run["kind"] == "chaos" else [])
    spec = json.loads(run["spec_json"])
    print(f"run #{run['id']} — {run['kind']} "
          f"{run['benchmark']}/{run['scale']}/{run['design']} "
          f"(profile {run['profile']}, status {run['status']})")
    print(f"  commit {_short(run['git_commit'], run['git_dirty'])} "
          f"branch {run['git_branch'] or '-'} "
          f"source {run['source_hash'] or '-'}")
    print(f"  host {run['host'] or '-'} python {run['python'] or '-'} "
          f"seed {run['seed']}")
    print(f"  spec {json.dumps(spec, sort_keys=True)}")
    rows = [[name, f"{value:,.6g}"] for name, value in sorted(metrics.items())]
    print(format_table("metrics", ["name", "value"], rows))
    if chaos:
        crash_rows = [[f"{o['crash_at']:.3f}", o["policy"],
                       "ok" if o["ok"] else "FAIL",
                       str(o["pages_redone"]), o["error"] or "-"]
                      for o in chaos]
        print(format_table("crash points",
                           ["t", "policy", "verdict", "redone", "error"],
                           crash_rows))
    return 0


#: The compare table's metric columns (name, header, format).
COMPARE_METRICS = (
    ("value", "value", "{:,.1f}"),
    ("latency_p50", "p50 (s)", "{:.3f}"),
    ("latency_p99", "p99 (s)", "{:.3f}"),
    ("ssd_hit_rate", "SSD hit", "{:.1%}"),
    ("waf", "waf", "{:.3f}"),
    ("wear_spread", "wear", "{:,.0f}"),
)


def cmd_runs_compare(args: argparse.Namespace) -> int:
    filters = _common_filters(args)
    with open_for_query(args) as store:
        latest = store.latest_per_design(**filters)
        if args.designs:
            wanted = [d.strip() for d in args.designs.split(",")
                      if d.strip()]
            by_design = {run["design"]: (run, metrics)
                         for run, metrics in latest}
            missing = [d for d in wanted if d not in by_design]
            if missing:
                print(f"runs compare: no recorded runs for designs: "
                      f"{', '.join(missing)}", file=sys.stderr)
                return 2
            latest = [by_design[d] for d in wanted]
    if not latest:
        print("runs compare: no runs match the filters", file=sys.stderr)
        return 2
    rows = []
    for run, metrics in latest:
        rows.append(
            [run["design"], f"#{run['id']}",
             _short(run["git_commit"], run["git_dirty"])]
            + [_fmt(metrics.get(name), fmt)
               for name, _, fmt in COMPARE_METRICS])
    label = " ".join(f"{key}={value}" for key, value in filters.items())
    print(format_table(
        f"compare — newest run per design ({label or 'all runs'})",
        ["design", "run", "commit"]
        + [header for _, header, _ in COMPARE_METRICS], rows))
    return 0


def cmd_runs_regress(args: argparse.Namespace) -> int:
    with open_for_query(args) as store:
        findings, groups = store.regress(
            baseline_n=args.baseline, tolerance=args.tolerance,
            **_common_filters(args))
    if not groups:
        print("runs regress: no recorded runs match the filters",
              file=sys.stderr)
        return 2
    if not findings:
        print(f"regress OK: {groups} grid cells within "
              f"{args.tolerance:.0%} of their last-{args.baseline} "
              f"baseline")
        return 0
    rows = [[f.group_label, f.profile, f.metric,
             f"{f.latest:,.4g}", f"{f.baseline:,.4g}", f"{f.ratio:.2f}x"]
            for f in findings]
    print(format_table(
        f"REGRESSIONS — {len(findings)} finding(s) across {groups} cells",
        ["grid cell", "profile", "metric", "latest", "baseline", "ratio"],
        rows))
    return 1


def _ingest_sim_bench(store: RunStore, doc: Dict[str, Any]) -> int:
    """Record one ``repro-sim-bench/1`` document; returns rows written.

    Each kernel rate becomes its own grid cell (``kind='bench'``,
    ``benchmark='simbench'``, ``design=<kernel>_<load>``) whose ``value``
    is events/sec, and the fig5 cell becomes a ``value`` of transactions
    per wall second — all metrics ``repro runs regress`` already gates.
    """
    profile = "fast" if doc.get("fast") else "full"
    rows = 0
    for name, rate in sorted(doc.get("kernel", {}).items()):
        load = name[:-len("_events_per_sec")]
        design = load if load.startswith("wheel_") else f"heap_{load}"
        store.record_run(
            {"kind": "bench", "benchmark": "simbench", "scale": 0,
             "design": design, "profile": profile},
            {"value": float(rate)},
            kind="bench", metric_name="events_per_sec")
        rows += 1
    cell = doc.get("fig5_cell")
    if cell:
        spec = dict(cell["spec"])
        wall = float(cell["wall_seconds"])
        txns = float(cell["metric_txns"])
        spec["kind"] = "bench"
        store.record_run(
            spec,
            {"value": txns / wall if wall > 0 else 0.0,
             "wall_seconds": wall, "metric_txns": txns},
            kind="bench", metric_name="txns_per_wall_sec")
        rows += 1
    return rows


def _ingest_engine_bench(store: RunStore, doc: Dict[str, Any]) -> int:
    """Record one ``repro-engine-bench/1`` document; returns rows written."""
    spec = dict(doc["spec"])
    spec["kind"] = "bench"
    store.record_run(
        spec,
        {"value": float(doc["txns_per_wall_sec"]),
         "wall_seconds": float(doc["wall_seconds"]),
         "metric_txns": float(doc["metric_txns"])},
        kind="bench", metric_name="txns_per_wall_sec")
    return 1


#: Dispatch on the document's ``schema`` field.
BENCH_INGESTERS = {
    "repro-sim-bench/1": _ingest_sim_bench,
    "repro-engine-bench/1": _ingest_engine_bench,
}


def cmd_runs_record_bench(args: argparse.Namespace) -> int:
    try:
        store = RunStore(db_path(args.db))
    except StoreError as exc:
        print(f"runs record-bench: {exc}", file=sys.stderr)
        return 2
    total = 0
    with store:
        for path in args.documents:
            try:
                with open(path) as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"runs record-bench: {path}: {exc}", file=sys.stderr)
                return 2
            ingest = BENCH_INGESTERS.get(doc.get("schema"))
            if ingest is None:
                print(f"runs record-bench: {path}: unknown schema "
                      f"{doc.get('schema')!r} (expected one of "
                      f"{sorted(BENCH_INGESTERS)})", file=sys.stderr)
                return 2
            rows = ingest(store, doc)
            print(f"recorded {rows} run row(s) from {path}")
            total += rows
    print(f"record-bench: {total} row(s) into {db_path(args.db)}")
    return 0


def cmd_runs_bench(args: argparse.Namespace) -> int:
    with open_for_query(args) as store:
        doc = store.latest_bench(args.workload)
    if doc is None:
        print(f"runs bench: no stored BENCH snapshot for workload "
              f"{args.workload!r} (run `repro analyze --bench` first)",
              file=sys.stderr)
        return 2
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    try:
        return int(args.runs_func(args))
    except SystemExit as exc:
        # open_for_query already printed the reason; surface its exit
        # code instead of unwinding through main().
        return int(exc.code or 0)


def add_runs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro runs`` subcommand tree."""
    add_db_argument(parser)
    sub = parser.add_subparsers(dest="runs_command", required=True)

    def _filters(p: argparse.ArgumentParser) -> None:
        p.add_argument("--benchmark", default=None)
        p.add_argument("--design", default=None)
        p.add_argument("--scale", type=int, default=None)
        p.add_argument("--profile", default=None)
        p.add_argument("--commit", default=None,
                       help="git commit (abbreviations accepted)")

    p_list = sub.add_parser("list", help="recent runs, newest first")
    _filters(p_list)
    p_list.add_argument("--limit", type=int, default=30)
    p_list.set_defaults(runs_func=cmd_runs_list)

    p_show = sub.add_parser("show", help="one run in full")
    p_show.add_argument("run_id", type=int)
    p_show.set_defaults(runs_func=cmd_runs_show)

    p_compare = sub.add_parser(
        "compare", help="newest run per design, side by side")
    _filters(p_compare)
    p_compare.add_argument("--designs", default=None,
                           help="comma-separated designs, in order "
                                "(default: all recorded)")
    p_compare.set_defaults(runs_func=cmd_runs_compare)

    p_regress = sub.add_parser(
        "regress", help="check p99/WAF/throughput against the last-N "
                        "baseline (exit 1 on regressions)")
    _filters(p_regress)
    p_regress.add_argument("--baseline", type=int, default=5,
                           help="baseline window per grid cell "
                                "(default 5)")
    p_regress.add_argument("--tolerance", type=float, default=0.25,
                           help="fractional tolerance before a change "
                                "is a regression (default 0.25)")
    p_regress.set_defaults(runs_func=cmd_runs_regress)

    p_bench = sub.add_parser(
        "bench", help="emit the latest stored BENCH_<workload> document")
    p_bench.add_argument("--workload", default="oltp")
    p_bench.set_defaults(runs_func=cmd_runs_bench)

    p_record = sub.add_parser(
        "record-bench",
        help="ingest measured BENCH_sim/BENCH_engine documents as run "
             "rows so `runs regress` gates them")
    p_record.add_argument("documents", nargs="+", metavar="FILE",
                          help="measured bench JSON (schema-dispatched)")
    p_record.set_defaults(runs_func=cmd_runs_record_bench)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.runstore.dashboard import make_server

    path = db_path(args.db)
    if not path.exists():
        print(f"serve: no run database at {path} — record some runs "
              f"first (repro sweep / oltp / chaos)", file=sys.stderr)
        return 2
    try:
        server = make_server(str(path), host=args.host, port=args.port,
                             verbose=not args.quiet)
    except StoreError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    print(f"serving {path} on http://{host}:{port}/ (Ctrl-C to stop)",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
    finally:
        server.server_close()
    return 0


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro serve`` flags."""
    add_db_argument(parser)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request log lines")
