"""Live HTML dashboard + JSON API over the run store (``repro serve``).

Stdlib-only HTTP (no framework, no assets): every GET opens a fresh
read-only view of the SQLite store, so the page always shows the latest
recorded runs — leave it open while a sweep records and refresh.

Endpoints:

``GET /``
    The dashboard: per-metric SVG trajectory charts (throughput,
    p50/p95/p99 latency decomposition, WAF, wear) with one polyline per
    design, x = run id across commits, plus the recent-runs table.
    Accepts ``benchmark`` / ``design`` / ``scale`` / ``limit`` query
    filters.
``GET /api/runs``
    Recent run rows (with metrics) as JSON; same filters.
``GET /api/trajectory?metric=NAME``
    One metric's per-design series as JSON.
``GET /healthz``
    Liveness probe: 200 and the schema version.

Charts are rendered by :func:`repro.telemetry.htmlreport.svg_chart` —
the same machinery as ``repro analyze --html``, pointed at cross-commit
series instead of within-run time series.
"""

from __future__ import annotations

import html
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.runstore.schema import SCHEMA_VERSION
from repro.runstore.store import RunStore, StoreError
from repro.telemetry.htmlreport import (REPORT_CSS, html_table, legend,
                                        svg_chart)

#: The trajectory charts: (metric name, title, y-axis value format).
TRAJECTORIES = (
    ("value", "Throughput (tpmC / tps / QphH)", "{:,.0f}"),
    ("latency_p50", "p50 latency (s)", "{:.3f}"),
    ("latency_p95", "p95 latency (s)", "{:.3f}"),
    ("latency_p99", "p99 latency (s)", "{:.3f}"),
    ("waf", "Write amplification (device WAF)", "{:.2f}"),
    ("wear_spread", "Wear spread (max-min erase counts)", "{:,.0f}"),
)

#: Columns of the recent-runs table (run column, metric, format).
RUN_METRIC_COLUMNS = (
    ("value", "{:,.1f}"),
    ("latency_p99", "{:.3f}"),
    ("waf", "{:.3f}"),
)


def _short(commit: Optional[str]) -> str:
    return commit[:10] if commit else "-"


def render_dashboard(store: RunStore,
                     benchmark: Optional[str] = None,
                     design: Optional[str] = None,
                     scale: Optional[int] = None,
                     limit: int = 200) -> str:
    """The dashboard page as one self-contained HTML document."""
    filters: Dict[str, Any] = {}
    if benchmark is not None:
        filters["benchmark"] = benchmark
    if design is not None:
        filters["design"] = design
    if scale is not None:
        filters["scale"] = scale

    commits = store.commits(**filters)
    runs = store.list_runs(limit=limit, **filters)

    body: List[str] = [
        "<h1>repro run store</h1>",
        f"<p class='meta'>{html.escape(str(store.path))} · "
        f"schema v{SCHEMA_VERSION} · {len(runs)} runs shown · "
        f"{len(commits)} commits"
        + (f" · benchmark {html.escape(benchmark)}" if benchmark else "")
        + (f" · scale {scale}" if scale is not None else "")
        + "</p>",
    ]

    body.append("<h2>Trajectories</h2>")
    if len(commits) < 2:
        body.append("<p class='note'>Single-commit history — record "
                    "runs from more commits to see trends.</p>")
    charted = False
    for metric, title, fmt in TRAJECTORIES:
        series = store.trajectory(metric, **filters)
        per_design = {
            dsgn: [(float(point["run_id"]), float(point["value"]))
                   for point in points]
            for dsgn, points in sorted(series.items())
        }
        if not any(per_design.values()):
            continue
        charted = True
        body.append("<figure>")
        body.append(f"<figcaption>{html.escape(title)} "
                    f"<span class='note'>({html.escape(metric)} by run "
                    f"id)</span></figcaption>")
        body.append(legend(list(per_design)))
        body.append(svg_chart(per_design, fmt, x_fmt="#{:.0f}"))
        body.append("</figure>")
    if not charted:
        body.append("<p class='note'>(no recorded metrics yet — run "
                    "<code>repro sweep</code> or <code>repro oltp</code>"
                    ")</p>")

    body.append("<h2>Recent runs</h2>")
    if runs:
        rows = []
        for run in runs[:50]:
            metrics = store.metrics_for(run["id"])
            row = [
                f"#{run['id']}",
                run["kind"],
                f"{run['benchmark']}/{run['scale']}/{run['design']}",
                run["profile"],
                _short(run["git_commit"])
                + ("*" if run["git_dirty"] else ""),
                run["status"],
            ]
            for name, fmt in RUN_METRIC_COLUMNS:
                value = metrics.get(name)
                row.append(fmt.format(value) if value is not None else "-")
            rows.append(row)
        body.append(html_table(
            ["run", "kind", "grid cell", "profile", "commit", "status",
             "value", "p99 (s)", "waf"],
            rows, caption="newest first; * marks a dirty working tree"))
    else:
        body.append("<p class='note'>(no runs recorded)</p>")

    return (
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>"
        "<title>repro run store</title>"
        "<meta name='viewport' content='width=device-width, "
        "initial-scale=1'>"
        f"<style>{REPORT_CSS}</style></head><body>"
        + "".join(body) + "</body></html>"
    )


class DashboardHandler(BaseHTTPRequestHandler):
    """Request handler bound to one database path (set by the server)."""

    #: Set by :func:`make_server`.
    database: str = ""
    #: Quiet by default; the CLI flips this for interactive serving.
    verbose: bool = False

    # -- plumbing ------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _send(self, status: int, content_type: str, payload: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_html(self, markup: str, status: int = 200) -> None:
        self._send(status, "text/html; charset=utf-8", markup.encode())

    def _send_json(self, doc: Any, status: int = 200) -> None:
        self._send(status, "application/json",
                   json.dumps(doc, indent=2, sort_keys=True).encode())

    def _query(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        params = {key: values[0]
                  for key, values in parse_qs(parsed.query).items()}
        return parsed.path, params

    @staticmethod
    def _int(params: Dict[str, str], key: str,
             default: Optional[int] = None) -> Optional[int]:
        raw = params.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            return default

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, params = self._query()
        try:
            if path == "/healthz":
                self._send_json({"status": "ok",
                                 "schema_version": SCHEMA_VERSION,
                                 "database": self.database})
                return
            # Each request opens its own connection: handler threads
            # must not share one sqlite3 connection, and a fresh open
            # always sees the latest recorded runs.
            with RunStore(self.database) as store:
                if path == "/":
                    self._send_html(render_dashboard(
                        store,
                        benchmark=params.get("benchmark"),
                        design=params.get("design"),
                        scale=self._int(params, "scale"),
                        limit=self._int(params, "limit", 200) or 200))
                elif path == "/api/runs":
                    runs = store.list_runs(
                        limit=self._int(params, "limit", 50) or 50,
                        benchmark=params.get("benchmark"),
                        design=params.get("design"),
                        scale=self._int(params, "scale"))
                    for run in runs:
                        run["metrics"] = store.metrics_for(run["id"])
                    self._send_json({"runs": runs})
                elif path == "/api/trajectory":
                    metric = params.get("metric", "value")
                    self._send_json({
                        "metric": metric,
                        "series": store.trajectory(
                            metric,
                            benchmark=params.get("benchmark"),
                            design=params.get("design"),
                            scale=self._int(params, "scale")),
                    })
                else:
                    self._send_json({"error": f"no such path: {path}"},
                                    status=404)
        except StoreError as exc:
            self._send_json({"error": str(exc)}, status=503)


def make_server(database: str, host: str = "127.0.0.1", port: int = 8642,
                verbose: bool = False) -> ThreadingHTTPServer:
    """A ready-to-run HTTP server over one run database.

    The store is opened once up front to fail fast on a broken file;
    after that every request reopens it (see :class:`DashboardHandler`).
    """
    RunStore(database).close()
    handler = type("BoundDashboardHandler", (DashboardHandler,),
                   {"database": database, "verbose": verbose})
    return ThreadingHTTPServer((host, port), handler)
