"""Versioned SQLite schema for the experiment run store.

The store's schema is an explicit migration chain: ``MIGRATIONS[v]`` is
the list of statements that upgrades a database from version ``v - 1``
to version ``v``, and :func:`apply_migrations` walks the chain from the
database's recorded version (``PRAGMA user_version``) to
:data:`SCHEMA_VERSION`.  A database written by an older checkout is
upgraded in place — inside one transaction per step, so a crash
mid-upgrade leaves the previous version intact — and a database written
by a *newer* checkout is refused rather than misread.

Version history:

``v1``
    ``runs`` (one row per experiment run, with full provenance:
    git commit/branch/dirty flag, source hash, seed, host) and
    ``metrics`` (one scalar per run per metric name).

``v2``
    Adds ``chaos_outcomes`` (crash-point sweep verdicts) and
    ``bench_snapshots`` (whole BENCH_* documents as store views), plus
    ``runs.duration`` / ``runs.metric_name`` so summary tables need no
    spec-JSON parsing.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List

#: The schema version this checkout reads and writes.
SCHEMA_VERSION = 2

#: target version -> statements upgrading from (target - 1).
MIGRATIONS: Dict[int, List[str]] = {
    1: [
        """
        CREATE TABLE runs (
            id          INTEGER PRIMARY KEY AUTOINCREMENT,
            created_at  REAL NOT NULL,
            kind        TEXT NOT NULL,
            benchmark   TEXT NOT NULL,
            scale       INTEGER NOT NULL,
            design      TEXT NOT NULL,
            profile     TEXT NOT NULL,
            seed        INTEGER,
            status      TEXT NOT NULL DEFAULT 'ok',
            spec_json   TEXT NOT NULL,
            git_commit  TEXT,
            git_branch  TEXT,
            git_dirty   INTEGER,
            source_hash TEXT,
            host        TEXT,
            python      TEXT
        )
        """,
        "CREATE INDEX idx_runs_grid ON runs(benchmark, scale, design)",
        "CREATE INDEX idx_runs_commit ON runs(git_commit)",
        """
        CREATE TABLE metrics (
            run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
            name   TEXT NOT NULL,
            value  REAL NOT NULL,
            PRIMARY KEY (run_id, name)
        ) WITHOUT ROWID
        """,
    ],
    2: [
        "ALTER TABLE runs ADD COLUMN duration REAL",
        "ALTER TABLE runs ADD COLUMN metric_name TEXT",
        """
        CREATE TABLE chaos_outcomes (
            id              INTEGER PRIMARY KEY AUTOINCREMENT,
            run_id          INTEGER NOT NULL
                            REFERENCES runs(id) ON DELETE CASCADE,
            design          TEXT NOT NULL,
            policy          TEXT NOT NULL,
            crash_at        REAL NOT NULL,
            ok              INTEGER NOT NULL,
            pages_redone    INTEGER NOT NULL DEFAULT 0,
            committed_pages INTEGER NOT NULL DEFAULT 0,
            error           TEXT
        )
        """,
        """
        CREATE TABLE bench_snapshots (
            id          INTEGER PRIMARY KEY AUTOINCREMENT,
            created_at  REAL NOT NULL,
            workload    TEXT NOT NULL,
            git_commit  TEXT,
            git_branch  TEXT,
            git_dirty   INTEGER,
            source_hash TEXT,
            doc_json    TEXT NOT NULL
        )
        """,
        "CREATE INDEX idx_bench_workload ON bench_snapshots(workload)",
    ],
}


class SchemaError(Exception):
    """The database schema cannot be brought to :data:`SCHEMA_VERSION`."""


def schema_version(conn: sqlite3.Connection) -> int:
    """The version recorded in the database (0 = freshly created)."""
    row = conn.execute("PRAGMA user_version").fetchone()
    return int(row[0])


def apply_migrations(conn: sqlite3.Connection,
                     target: int = SCHEMA_VERSION) -> int:
    """Upgrade ``conn`` to ``target``; returns the number of steps run.

    Each step runs inside its own transaction: either the whole step
    lands (statements + the ``user_version`` bump) or none of it does.
    """
    current = schema_version(conn)
    if current > target:
        raise SchemaError(
            f"database is schema v{current}, newer than this checkout's "
            f"v{target}; refusing to write")
    steps = 0
    for version in range(current + 1, target + 1):
        statements = MIGRATIONS.get(version)
        if statements is None:
            raise SchemaError(f"no migration to schema v{version}")
        # One explicit IMMEDIATE transaction per step: concurrent openers
        # racing to migrate a fresh database serialize here, and the
        # re-check under the write lock makes the loser's step a no-op.
        # (Explicit because callers run in autocommit mode.)
        conn.execute("BEGIN IMMEDIATE")
        try:
            if schema_version(conn) >= version:
                conn.execute("ROLLBACK")
                continue
            for statement in statements:
                conn.execute(statement)
            # PRAGMA cannot be parameterized; version is a trusted int.
            conn.execute(f"PRAGMA user_version = {int(version)}")
        except sqlite3.Error:
            conn.execute("ROLLBACK")
            raise
        else:
            conn.execute("COMMIT")
            steps += 1
    return steps
