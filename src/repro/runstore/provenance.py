"""Provenance capture: which code, on which machine, produced a run.

Every recorded run (and every ``run_meta`` trace instant) is stamped
with the git commit/branch and dirty flag of the working tree, the
sweep source hash (:func:`repro.harness.sweep.code_version` — the same
value that keys the on-disk run cache), and host identity.  Provenance
is what turns a pile of runs into *trajectories*: "all LC runs at scale
1000 across the last 50 commits" is a provenance query.

Capture is best-effort: outside a git checkout (or with git missing)
the git fields are ``None`` and everything else still records.
"""

from __future__ import annotations

import os
import platform
import subprocess
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class Provenance:
    """Identity of the code and machine behind one run."""

    git_commit: Optional[str] = None
    git_branch: Optional[str] = None
    git_dirty: Optional[bool] = None
    source_hash: Optional[str] = None
    host: Optional[str] = None
    python: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (trace args, DB columns)."""
        return asdict(self)


def _git(args: list, cwd: Optional[str] = None) -> Optional[str]:
    """One git query; None when git or the repository is unavailable."""
    try:
        out = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True,
            timeout=10.0, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


_cached: Optional[Provenance] = None


def capture(cwd: Optional[str] = None, cached: bool = True) -> Provenance:
    """Capture provenance for the current checkout and host.

    The result is cached per process (git subprocesses and the source
    hash are not free, and neither changes mid-run); pass
    ``cached=False`` to force a re-read, e.g. from a long-lived server.
    """
    global _cached
    if cached and cwd is None and _cached is not None:
        return _cached

    commit = _git(["rev-parse", "HEAD"], cwd)
    branch = _git(["rev-parse", "--abbrev-ref", "HEAD"], cwd)
    status = _git(["status", "--porcelain"], cwd)
    dirty: Optional[bool] = bool(status) if status is not None else None

    # Imported lazily: harness.sweep is a heavier import and the
    # harness itself imports this module.
    from repro.harness.sweep import code_version

    prov = Provenance(
        git_commit=commit,
        git_branch=branch,
        git_dirty=dirty,
        source_hash=code_version(),
        host=platform.node() or os.environ.get("HOSTNAME"),
        python=platform.python_version(),
    )
    if cached and cwd is None:
        _cached = prov
    return prov


def provenance_args(cwd: Optional[str] = None) -> Dict[str, Any]:
    """The provenance fields stamped onto ``run_meta`` trace instants.

    Kept to the queryable subset (commit/branch/dirty/source hash) so
    trace files answer "which code produced this?" without carrying
    host noise that would break byte-stable trace comparisons across
    machines.
    """
    prov = capture(cwd)
    return {
        "git_commit": prov.git_commit,
        "git_branch": prov.git_branch,
        "git_dirty": prov.git_dirty,
        "source_hash": prov.source_hash,
    }
