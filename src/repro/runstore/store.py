"""The experiment run store: a SQLite database of every recorded run.

One ``runs`` row per experiment (spec + provenance + status), one
``metrics`` row per scalar the harness measured (throughput, latency
percentiles, WAF, wear, fault outcomes), plus crash-sweep verdicts
(``chaos_outcomes``) and whole BENCH_* documents (``bench_snapshots``).
The committed ``BENCH_*.json`` files become *views* over this store:
``repro runs compare`` and ``repro runs bench`` reproduce them from
recorded rows alone.

Concurrency: SQLite serializes writers, and the store leans into that —
every write happens inside ``BEGIN IMMEDIATE`` (the single-writer
guard), with a busy timeout plus bounded retries so parallel sweep
workers recording into one database queue instead of failing.  Readers
(the dashboard, ``repro runs``) never block writers in WAL mode.

Failure policy: any corrupted, locked, or version-skewed database
raises :class:`StoreError`; callers in the harness catch it and fall
back to JSON-only output — a broken run database must never cost a
completed simulation its results.
"""

from __future__ import annotations

import json
import os
import sqlite3
import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.runstore.provenance import Provenance, capture
from repro.runstore.schema import SchemaError, apply_migrations

#: Default database file, overridable with ``REPRO_RUNSTORE``.
DEFAULT_DB = ".repro-runs.db"

#: Metrics where a *larger* latest value is a regression.
LOWER_IS_BETTER = ("latency_p99", "waf")

#: Metrics where a *smaller* latest value is a regression.
HIGHER_IS_BETTER = ("value",)


class StoreError(Exception):
    """The run database is unusable (corrupted, locked, or skewed)."""


def db_path(override: Optional[str] = None) -> Path:
    """Resolve the database path (flag > ``REPRO_RUNSTORE`` > default)."""
    return Path(override or os.environ.get("REPRO_RUNSTORE", DEFAULT_DB))


def open_store(path: Optional[Union[str, Path]] = None,
               timeout: float = 30.0) -> Optional["RunStore"]:
    """Open the store, or ``None`` (with a reason on stderr) if broken.

    This is the harness entry point: recording is best-effort, so an
    unusable database degrades to JSON-only output instead of failing
    the run that produced the data.
    """
    import sys
    try:
        return RunStore(db_path(str(path) if path is not None else None),
                        timeout=timeout)
    except StoreError as exc:
        print(f"runstore: {exc}; continuing without run recording",
              file=sys.stderr)
        return None


@dataclass
class RegressionFinding:
    """One metric of one run group that worsened past tolerance."""

    kind: str
    benchmark: str
    scale: int
    design: str
    profile: str
    metric: str
    latest: float
    baseline: float
    ratio: float

    @property
    def group_label(self) -> str:
        return f"{self.benchmark}/{self.scale}/{self.design}"


class RunStore:
    """Connection to one run database, upgraded to the current schema."""

    def __init__(self, path: Union[str, Path], timeout: float = 30.0):
        self.path = Path(path)
        self.timeout = timeout
        try:
            self._conn = sqlite3.connect(str(self.path), timeout=timeout)
            self._conn.row_factory = sqlite3.Row
            self._conn.isolation_level = None  # explicit transactions
            self._conn.execute(
                f"PRAGMA busy_timeout = {int(timeout * 1000)}")
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
            self._conn.execute("PRAGMA foreign_keys = ON")
            apply_migrations(self._conn)
        except (sqlite3.Error, SchemaError) as exc:
            raise StoreError(f"{self.path}: {exc}") from exc

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The single-writer guard
    # ------------------------------------------------------------------

    @contextmanager
    def _write(self, retries: int = 5,
               backoff: float = 0.05) -> Iterator[sqlite3.Connection]:
        """``BEGIN IMMEDIATE`` transaction with bounded lock retries.

        ``BEGIN IMMEDIATE`` takes the write lock *up front*, so two
        concurrent recorders serialize at transaction start instead of
        deadlocking at commit.  The busy timeout absorbs short waits;
        the retry loop absorbs a writer that held the lock longer.
        """
        last: Optional[sqlite3.OperationalError] = None
        for attempt in range(retries):
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                break
            except sqlite3.OperationalError as exc:
                last = exc
                time.sleep(backoff * (2 ** attempt))
        else:
            raise StoreError(
                f"{self.path}: could not take the write lock "
                f"after {retries} attempts: {last}") from last
        try:
            yield self._conn
        except sqlite3.Error as exc:
            self._conn.execute("ROLLBACK")
            raise StoreError(f"{self.path}: write failed: {exc}") from exc
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_run(self, spec: Dict[str, Any],
                   metrics: Dict[str, float],
                   provenance: Optional[Provenance] = None,
                   status: str = "ok",
                   kind: Optional[str] = None,
                   metric_name: Optional[str] = None,
                   created_at: Optional[float] = None) -> int:
        """Insert one run row plus its scalar metrics; returns run id."""
        prov = provenance if provenance is not None else capture()
        with self._write() as conn:
            cursor = conn.execute(
                """
                INSERT INTO runs (created_at, kind, benchmark, scale,
                                  design, profile, seed, status, spec_json,
                                  git_commit, git_branch, git_dirty,
                                  source_hash, host, python, duration,
                                  metric_name)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (created_at if created_at is not None else time.time(),
                 kind or str(spec.get("kind", "oltp")),
                 str(spec.get("benchmark", "?")),
                 int(spec.get("scale", 0)),
                 str(spec.get("design", "?")),
                 str(spec.get("profile", "default")),
                 spec.get("seed"),
                 status,
                 json.dumps(spec, sort_keys=True, separators=(",", ":")),
                 prov.git_commit, prov.git_branch,
                 None if prov.git_dirty is None else int(prov.git_dirty),
                 prov.source_hash, prov.host, prov.python,
                 spec.get("duration"), metric_name))
            run_id = int(cursor.lastrowid)
            conn.executemany(
                "INSERT INTO metrics (run_id, name, value) VALUES (?, ?, ?)",
                [(run_id, name, float(value))
                 for name, value in sorted(metrics.items())
                 if value is not None])
        return run_id

    def record_result(self, spec: Dict[str, Any], result: Any,
                      provenance: Optional[Provenance] = None,
                      status: str = "ok") -> int:
        """Record a harness result object (OLTP ``RunResult`` or
        ``TpchResult``, live or cache-restored — they duck-type alike)."""
        metric_name, metrics = metrics_from_result(result)
        return self.record_run(spec, metrics, provenance=provenance,
                               status=status, metric_name=metric_name)

    def record_chaos(self, outcomes: Iterable[Any],
                     seed: Optional[int] = None,
                     provenance: Optional[Provenance] = None) -> List[int]:
        """Record a crash-point sweep: one run row per design x policy
        group plus one ``chaos_outcomes`` row per crash point."""
        prov = provenance if provenance is not None else capture()
        groups: Dict[Tuple[str, str], List[Any]] = {}
        for outcome in outcomes:
            groups.setdefault((outcome.design, outcome.policy),
                              []).append(outcome)
        run_ids: List[int] = []
        for (design, policy), points in sorted(groups.items()):
            failed = sum(1 for o in points if not o.ok)
            spec = {"kind": "chaos", "benchmark": "crashpoints",
                    "scale": len(points), "design": design,
                    "profile": policy, "seed": seed}
            run_id = self.record_run(
                spec,
                {"points": len(points), "failed": failed,
                 "pages_redone": sum(o.pages_redone for o in points),
                 "committed_pages": sum(o.committed_pages for o in points)},
                provenance=prov, status="ok" if not failed else "failed",
                kind="chaos", metric_name="crash_points")
            with self._write() as conn:
                conn.executemany(
                    """
                    INSERT INTO chaos_outcomes
                        (run_id, design, policy, crash_at, ok,
                         pages_redone, committed_pages, error)
                    VALUES (?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    [(run_id, design, policy, o.crash_at, int(o.ok),
                      o.pages_redone, o.committed_pages, o.error)
                     for o in points])
            run_ids.append(run_id)
        return run_ids

    def record_bench(self, doc: Dict[str, Any],
                     provenance: Optional[Provenance] = None) -> int:
        """Store one BENCH_* document (``repro analyze --bench``)."""
        prov = provenance if provenance is not None else capture()
        with self._write() as conn:
            cursor = conn.execute(
                """
                INSERT INTO bench_snapshots
                    (created_at, workload, git_commit, git_branch,
                     git_dirty, source_hash, doc_json)
                VALUES (?, ?, ?, ?, ?, ?, ?)
                """,
                (time.time(), str(doc.get("workload", "?")),
                 prov.git_commit, prov.git_branch,
                 None if prov.git_dirty is None else int(prov.git_dirty),
                 prov.source_hash,
                 json.dumps(doc, sort_keys=True, separators=(",", ":"))))
            return int(cursor.lastrowid)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _rows(self, sql: str, params: Sequence[Any]) -> List[Dict[str, Any]]:
        try:
            return [dict(row)
                    for row in self._conn.execute(sql, params).fetchall()]
        except sqlite3.Error as exc:
            raise StoreError(f"{self.path}: query failed: {exc}") from exc

    @staticmethod
    def _filters(benchmark: Optional[str] = None,
                 design: Optional[str] = None,
                 scale: Optional[int] = None,
                 kind: Optional[str] = None,
                 profile: Optional[str] = None,
                 commit: Optional[str] = None,
                 status: Optional[str] = None
                 ) -> Tuple[str, List[Any]]:
        clauses, params = [], []  # type: List[str], List[Any]
        for column, value in (("benchmark", benchmark), ("design", design),
                              ("scale", scale), ("kind", kind),
                              ("profile", profile), ("status", status)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if commit is not None:
            # Accept abbreviated hashes, as git does everywhere else.
            clauses.append("git_commit LIKE ?")
            params.append(f"{commit}%")
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return where, params

    def list_runs(self, limit: int = 50, **filters: Any
                  ) -> List[Dict[str, Any]]:
        """Most-recent-first run rows matching the filters."""
        where, params = self._filters(**filters)
        return self._rows(
            f"SELECT * FROM runs{where} ORDER BY id DESC LIMIT ?",
            params + [limit])

    def metrics_for(self, run_id: int) -> Dict[str, float]:
        """All scalar metrics of one run."""
        return {row["name"]: row["value"] for row in self._rows(
            "SELECT name, value FROM metrics WHERE run_id = ? ORDER BY name",
            [run_id])}

    def get_run(self, run_id: int
                ) -> Optional[Tuple[Dict[str, Any], Dict[str, float]]]:
        """One run row plus its metrics, or None."""
        rows = self._rows("SELECT * FROM runs WHERE id = ?", [run_id])
        if not rows:
            return None
        return rows[0], self.metrics_for(run_id)

    def chaos_for(self, run_id: int) -> List[Dict[str, Any]]:
        """Crash-point outcomes attached to a chaos run."""
        return self._rows(
            "SELECT * FROM chaos_outcomes WHERE run_id = ? ORDER BY id",
            [run_id])

    def latest_per_design(self, **filters: Any
                          ) -> List[Tuple[Dict[str, Any], Dict[str, float]]]:
        """The newest run of each design matching the filters (the
        ``repro runs compare`` data: one row per design, latest code)."""
        where, params = self._filters(**filters)
        rows = self._rows(
            f"""
            SELECT * FROM runs{where}
            ORDER BY id DESC
            """, params)
        latest: Dict[str, Dict[str, Any]] = {}
        for row in rows:
            latest.setdefault(row["design"], row)
        return [(row, self.metrics_for(row["id"]))
                for row in sorted(latest.values(),
                                  key=lambda r: r["design"])]

    def trajectory(self, metric: str, **filters: Any
                   ) -> Dict[str, List[Dict[str, Any]]]:
        """Per-design time series of one metric across recorded runs.

        Returns ``{design: [{run_id, created_at, git_commit, value}]}``
        oldest-first — the dashboard's trajectory data.
        """
        where, params = self._filters(**filters)
        rows = self._rows(
            f"""
            SELECT r.id AS run_id, r.design, r.created_at,
                   r.git_commit, metrics.value
            FROM (SELECT * FROM runs{where}) AS r
            JOIN metrics ON metrics.run_id = r.id
            WHERE metrics.name = ?
            ORDER BY r.id
            """, params + [metric])
        series: Dict[str, List[Dict[str, Any]]] = {}
        for row in rows:
            series.setdefault(row["design"], []).append({
                "run_id": row["run_id"],
                "created_at": row["created_at"],
                "git_commit": row["git_commit"],
                "value": row["value"],
            })
        return series

    def commits(self, **filters: Any) -> List[str]:
        """Distinct commits with recorded runs, oldest-first."""
        where, params = self._filters(**filters)
        rows = self._rows(
            f"""
            SELECT git_commit, MIN(id) AS first FROM runs{where}
            GROUP BY git_commit ORDER BY first
            """, params)
        return [row["git_commit"] for row in rows
                if row["git_commit"] is not None]

    def latest_bench(self, workload: str) -> Optional[Dict[str, Any]]:
        """The newest stored BENCH document for a workload, or None."""
        rows = self._rows(
            """
            SELECT doc_json FROM bench_snapshots
            WHERE workload = ? ORDER BY id DESC LIMIT 1
            """, [workload])
        if not rows:
            return None
        return json.loads(rows[0]["doc_json"])

    # ------------------------------------------------------------------
    # Regression check
    # ------------------------------------------------------------------

    def regress(self, baseline_n: int = 5, tolerance: float = 0.25,
                **filters: Any
                ) -> Tuple[List[RegressionFinding], int]:
        """Compare each group's newest run against its last-N baseline.

        A *group* is one (kind, benchmark, scale, design, profile)
        cell of the experiment grid.  For every group the latest run's
        throughput (``value``), tail latency (``latency_p99``), and
        write amplification (``waf``) are checked against the median of
        the up-to-``baseline_n`` preceding runs; a metric that worsens
        by more than ``tolerance`` (fractional) is a finding.  A group
        with no history is compared against itself — trivially passing,
        so a fresh database never fails the check.

        Returns ``(findings, groups_checked)``.
        """
        filters.setdefault("status", "ok")
        where, params = self._filters(**filters)
        extra = "kind != 'chaos'"
        where = (f"{where} AND {extra}" if where else f" WHERE {extra}")
        groups = self._rows(
            f"""
            SELECT DISTINCT kind, benchmark, scale, design, profile
            FROM runs{where}
            ORDER BY benchmark, scale, design, profile
            """, params)
        findings: List[RegressionFinding] = []
        for group in groups:
            runs = self.list_runs(
                limit=baseline_n + 1, kind=group["kind"],
                benchmark=group["benchmark"], scale=group["scale"],
                design=group["design"], profile=group["profile"],
                status="ok")
            if not runs:
                continue
            latest = self.metrics_for(runs[0]["id"])
            history = runs[1:] or runs[:1]
            baselines = [self.metrics_for(run["id"]) for run in history]
            for metric in HIGHER_IS_BETTER + LOWER_IS_BETTER:
                if metric not in latest:
                    continue
                past = [b[metric] for b in baselines if metric in b]
                if not past:
                    continue
                baseline = statistics.median(past)
                current = latest[metric]
                if metric in HIGHER_IS_BETTER:
                    worse = (baseline > 0
                             and current < baseline * (1.0 - tolerance))
                else:
                    worse = (current > baseline * (1.0 + tolerance)
                             and current - baseline > 1e-9)
                if worse:
                    findings.append(RegressionFinding(
                        kind=group["kind"], benchmark=group["benchmark"],
                        scale=group["scale"], design=group["design"],
                        profile=group["profile"], metric=metric,
                        latest=current, baseline=baseline,
                        ratio=(current / baseline if baseline else
                               float("inf"))))
        return findings, len(groups)


# ----------------------------------------------------------------------
# Result -> metrics extraction
# ----------------------------------------------------------------------

def metrics_from_result(result: Any) -> Tuple[str, Dict[str, float]]:
    """Flatten a harness result into ``(metric_name, scalar metrics)``.

    Duck-typed on purpose: live ``RunResult``/``TpchResult`` objects and
    the sweep cache's restored stand-ins expose the same attributes, so
    replayed cache hits record rows identical to live runs.
    """
    if hasattr(result, "qphh"):  # TPC-H
        return "QphH", {
            "value": float(result.qphh),
            "power": float(result.power),
            "throughput": float(result.throughput),
        }

    metrics: Dict[str, float] = {
        "value": float(result.steady_state_throughput()),
        "total_txns": float(result.total_metric_txns),
    }
    latencies = getattr(result, "latencies", None)
    if latencies is not None and latencies.count():
        summary = latencies.summary()
        metrics["latency_mean"] = summary["mean"]
        metrics["latency_p50"] = summary["p50"]
        metrics["latency_p95"] = summary["p95"]
        metrics["latency_p99"] = summary["p99"]

    # Open-loop traffic extras.  Metrics are plain (name, value) rows,
    # so per-tenant breakdowns need no schema change — just a naming
    # convention: ``tenant_<name>_<stat>``.
    tenants = getattr(result, "tenants", None)
    if tenants:
        duration = float(getattr(result, "duration", 0.0))
        metrics["offered"] = float(result.offered)
        metrics["shed"] = float(result.shed)
        metrics["shed_fraction"] = float(result.shed_fraction)
        metrics["queue_wait_p99"] = float(result.queue_wait_percentile(99))
        metrics["logical_users"] = float(result.logical_users)
        for name, stats in sorted(tenants.items()):
            prefix = f"tenant_{name}_"
            metrics[prefix + "offered"] = float(stats.offered)
            metrics[prefix + "shed"] = float(stats.shed)
            metrics[prefix + "completed"] = float(stats.completed)
            metrics[prefix + "throughput"] = float(
                stats.throughput(duration))
            if stats.latencies.count():
                metrics[prefix + "p50"] = float(
                    stats.latencies.percentile(50))
                metrics[prefix + "p99"] = float(
                    stats.latencies.percentile(99))
                metrics[prefix + "queue_wait_p99"] = float(
                    stats.queue_waits.percentile(99))

    system = getattr(result, "system", None)
    if system is not None:
        bp_stats = system.bp.stats
        metrics["bp_hit_rate"] = float(bp_stats.hit_rate)
        metrics["ssd_hit_rate"] = float(bp_stats.ssd_hit_rate)
        manager = system.ssd_manager
        metrics["ssd_used_frames"] = float(manager.used_frames)
        metrics["ssd_dirty_frames"] = float(manager.dirty_frames)
        metrics["ssd_detached"] = float(getattr(manager, "detached", False))
        metrics["io_retries"] = float(manager.stats.io_retries)
        metrics["detach_redo_pages"] = float(
            manager.stats.detach_redo_pages)
        checkpointer = getattr(system, "checkpointer", None)
        if checkpointer is not None:
            metrics["checkpoints_taken"] = float(
                checkpointer.checkpoints_taken)
        ftl = getattr(getattr(system, "ssd_device", None), "ftl", None)
        if ftl is not None:
            metrics["waf"] = float(ftl.waf)
            metrics["wear_spread"] = float(ftl.wear_spread)
            metrics["host_writes"] = float(ftl.stats.host_writes)
            metrics["nand_writes"] = float(ftl.stats.nand_writes)
            metrics["erases"] = float(ftl.stats.erases)
    return getattr(result, "metric_name", "tps"), metrics
