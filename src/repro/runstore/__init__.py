"""Experiment run store: a SQLite database of recorded runs.

The paper's evaluation only means something as *trajectories* —
throughput/latency/WAF curves across designs, workloads, and commits.
This package turns every harness run into a durable, queryable row:

* :mod:`repro.runstore.schema`     — versioned schema + migrations;
* :mod:`repro.runstore.provenance` — git/source/host capture per run;
* :mod:`repro.runstore.store`      — :class:`RunStore` (recording with
  a single-writer guard, list/compare/regress/trajectory queries);
* :mod:`repro.runstore.dashboard`  — ``repro serve``: HTML dashboard +
  JSON API over the store;
* :mod:`repro.runstore.cli`        — ``repro runs`` subcommands.

Recording is wired into ``repro sweep`` / ``oltp`` / ``tpch`` /
``chaos`` / ``analyze --bench`` by default and is always best-effort: a
corrupted or locked database degrades to JSON-only output, never a
failed run.
"""

from repro.runstore.provenance import Provenance, capture, provenance_args
from repro.runstore.schema import SCHEMA_VERSION, apply_migrations
from repro.runstore.store import (DEFAULT_DB, RegressionFinding, RunStore,
                                  StoreError, db_path, metrics_from_result,
                                  open_store)

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_DB",
    "Provenance",
    "RegressionFinding",
    "RunStore",
    "StoreError",
    "apply_migrations",
    "capture",
    "db_path",
    "metrics_from_result",
    "open_store",
    "provenance_args",
]
