"""Pages and buffer frames."""

from __future__ import annotations

from typing import Optional

#: Logical page identifier: an index into the database's page space.
PageId = int

#: LSN value meaning "no log record describes this page state yet".
INVALID_LSN = -1


class Frame:
    """A main-memory buffer frame holding one database page.

    ``version`` stands in for the page's 8 KB of content: it increases by
    one on every update, so "is this copy newer than that one" — the
    relation the paper's Figure 3 is about — is an integer comparison.

    ``sequential`` records how the page entered the pool (via read-ahead or
    a random read); the SSD admission policy reads it at eviction time.
    """

    __slots__ = (
        "page_id", "version", "dirty", "pin_count", "sequential",
        "page_lsn", "rec_lsn", "last_access", "prev_access", "io_busy",
        "busy_reason", "lru_stamp", "heap_stamp",
    )

    def __init__(self, page_id: PageId, version: int = 0,
                 sequential: bool = False):
        self.page_id = page_id
        self.version = version
        self.dirty = False
        self.pin_count = 0
        self.sequential = sequential
        #: LSN of the log record describing the latest update to this page;
        #: the WAL rule forces the log up to here before the page is
        #: written to the SSD or disk.
        self.page_lsn = INVALID_LSN
        #: LSN of the *first* update since the page was last clean — the
        #: recovery LSN fuzzy checkpoints truncate the log against.
        self.rec_lsn = INVALID_LSN
        #: LRU-2 history: most recent and second-most-recent access times.
        self.last_access = 0.0
        self.prev_access = float("-inf")
        #: Global LRU-2 ordering stamp of the latest access (ties on
        #: ``prev_access`` break by recency of touch, as the eager heap
        #: did via one entry per touch).
        self.lru_stamp = 0
        #: Stamp carried by this frame's single live replacement-heap
        #: entry; 0 while the frame has never been enheaped.  An entry
        #: whose stamp differs from the frame's ``heap_stamp`` is
        #: garbage; one that matches ``heap_stamp`` but not ``lru_stamp``
        #: is re-keyed lazily at victim-selection time.
        self.heap_stamp = 0
        #: Event held while an I/O owns this frame exclusively (e.g. TAC
        #: writing a freshly read page to the SSD); fetchers must wait on
        #: it, which is exactly the latch contention §2.5 describes.
        self.io_busy: Optional[object] = None
        #: Why the frame is latched ("eviction", "admission-write", …) —
        #: lets latch-wait time be attributed per cause.
        self.busy_reason: Optional[str] = None

    @property
    def pinned(self) -> bool:
        """Whether any caller currently holds a pin."""
        return self.pin_count > 0

    def record_access(self, now: float) -> None:
        """Push the LRU-2 history: the old last access becomes penultimate."""
        self.prev_access = self.last_access
        self.last_access = now

    def lru2_key(self) -> float:
        """Replacement priority: oldest penultimate access is evicted first."""
        return self.prev_access

    def __repr__(self) -> str:
        flags = "".join((
            "D" if self.dirty else "-",
            "P" if self.pinned else "-",
            "S" if self.sequential else "R",
        ))
        return f"<Frame page={self.page_id} v{self.version} {flags}>"
