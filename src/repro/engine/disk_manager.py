"""The disk manager: asynchronous page I/O against the database volume.

Wraps the striped HDD array with a page-addressed interface and keeps the
authoritative *disk image* — the version of every page as currently stored
on disk — which is what checkpointing and recovery reason about.
"""

from __future__ import annotations

from typing import Dict, List

from repro.faults.errors import (
    RETRY_BASE_DELAY,
    RETRY_LIMIT,
    DeviceDeadError,
    IoFault,
)
from repro.sim import Environment
from repro.storage.hdd import HddArray
from repro.storage.request import IoKind, IORequest
from repro.telemetry import NULL_TELEMETRY


class DiskManager:
    """Page-level read/write interface over the database's disk volume."""

    def __init__(self, env: Environment, device: HddArray, npages: int,
                 telemetry=None):
        self.env = env
        self.device = device
        self.npages = npages
        #: Persistent content: page id -> version currently on disk.
        #: Allocated pages start at version 0 (the loaded database).
        self._image: Dict[int, int] = {}
        self.reads_issued = 0
        self.writes_issued = 0
        self.retries = 0
        self.telemetry = telemetry or NULL_TELEMETRY
        self._tracer = self.telemetry.tracer
        self._tm_retries = self.telemetry.registry.counter(
            "disk_retries_total",
            "Disk I/Os retried after transient failures")

    # ------------------------------------------------------------------
    # Persistent image (versions)
    # ------------------------------------------------------------------

    def disk_version(self, page_id: int) -> int:
        """Version of ``page_id`` as stored on disk right now."""
        return self._image.get(page_id, 0)

    def _persist(self, page_id: int, version: int) -> None:
        # Monotone: concurrent writers (evictions, the LC cleaner,
        # checkpoints) may complete out of order; a real implementation
        # orders them with frame latches, which this guard stands in for.
        if version > self._image.get(page_id, -1):
            self._image[page_id] = version

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def _submit(self, request: IORequest):
        """Process step: submit with bounded retry + exponential backoff.

        Transient faults are retried up to ``RETRY_LIMIT`` times; a dead
        device (or an exhausted budget) re-raises to the caller — the
        data volume has no fallback, so that is a hard error.
        """
        delay = RETRY_BASE_DELAY
        attempt = 0
        while True:
            try:
                yield self.device.submit(request)
                return
            except DeviceDeadError:
                raise
            except IoFault:
                self.retries += 1
                self._tm_retries.inc()
                if self._tracer.enabled:
                    self._tracer.instant(
                        "io_retry", "fault", "faults",
                        {"device": self.device.name, "attempt": attempt + 1,
                         "address": request.address})
                if attempt >= RETRY_LIMIT:
                    raise
                attempt += 1
                yield self.env.timeout(delay)
                delay *= 2

    def read(self, page_id: int, npages: int = 1, sequential: bool = False,
             ctx=None):
        """Process step: read ``npages`` contiguous pages.

        Returns the list of on-disk versions, captured at I/O completion.
        """
        self._check_range(page_id, npages)
        kind = IoKind.SEQUENTIAL_READ if sequential else IoKind.RANDOM_READ
        self.reads_issued += 1
        yield from self._submit(IORequest(kind, page_id, npages, ctx=ctx))
        return [self.disk_version(page_id + i) for i in range(npages)]

    def write(self, page_id: int, version: int, sequential: bool = False,
              ctx=None):
        """Process step: write one page; the image updates at completion."""
        self._check_range(page_id, 1)
        kind = IoKind.SEQUENTIAL_WRITE if sequential else IoKind.RANDOM_WRITE
        self.writes_issued += 1
        yield from self._submit(IORequest(kind, page_id, 1, ctx=ctx))
        self._persist(page_id, version)

    def write_run(self, page_id: int, versions: List[int], ctx=None):
        """Process step: write a contiguous run of pages as a single I/O.

        Used by LC's group cleaning (§3.3.5): up to α dirty SSD pages with
        consecutive disk addresses go to disk in one sequential write.
        """
        self._check_range(page_id, len(versions))
        self.writes_issued += 1
        kind = (IoKind.SEQUENTIAL_WRITE if len(versions) > 1
                else IoKind.RANDOM_WRITE)
        yield from self._submit(IORequest(kind, page_id, len(versions),
                                          ctx=ctx))
        for offset, version in enumerate(versions):
            self._persist(page_id + offset, version)

    def _check_range(self, page_id: int, npages: int) -> None:
        if page_id < 0 or page_id + npages > self.npages:
            raise ValueError(
                f"page range [{page_id}, {page_id + npages}) outside "
                f"database of {self.npages} pages")
