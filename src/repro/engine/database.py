"""Catalog and page allocation.

A :class:`Database` owns the page address space of the disk volume and
hands out contiguous ranges to heap files and B+-trees.  A slack region at
the end of the volume absorbs pages allocated at run time (B+-tree splits).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.engine.btree import BPlusTree
from repro.engine.heap_file import HeapFile


class Database:
    """The catalog: named tables and indexes over one disk volume."""

    def __init__(self, npages: int):
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        self.npages = npages
        self._next_page = 0
        self.tables: Dict[str, HeapFile] = {}
        self.indexes: Dict[str, BPlusTree] = {}

    @property
    def allocated_pages(self) -> int:
        """Pages handed out so far."""
        return self._next_page

    @property
    def free_pages(self) -> int:
        """Pages still available for allocation."""
        return self.npages - self._next_page

    def allocate(self, npages: int) -> int:
        """Reserve a contiguous page range; returns its first page id."""
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        if self._next_page + npages > self.npages:
            raise RuntimeError(
                f"database full: need {npages} pages, have {self.free_pages}")
        start = self._next_page
        self._next_page += npages
        return start

    def create_table(self, name: str, npages: int) -> HeapFile:
        """Create a heap file of ``npages`` contiguous pages."""
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        table = HeapFile(name, self.allocate(npages), npages)
        self.tables[name] = table
        return table

    def create_index(self, name: str, keys: Sequence[int],
                     fanout: int = 64,
                     leaf_capacity: int = 1) -> BPlusTree:
        """Create and bulk-load a B+-tree index over sorted ``keys``.

        The default ``leaf_capacity`` of 1 gives *page-granular* keys:
        key k occupies the k-th leaf page, so N keys model an N-page
        clustered table whose row-level detail is abstracted away.  Pass
        ``fanout - 1`` for a classic B+-tree.
        """
        if name in self.indexes:
            raise ValueError(f"index {name!r} already exists")
        tree = BPlusTree(name, self.allocate, fanout=fanout,
                         leaf_capacity=leaf_capacity)
        tree.bulk_load(keys)
        self.indexes[name] = tree
        return tree
