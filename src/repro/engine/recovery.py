"""Crash simulation and restart recovery.

Recovery here is redo-only over the physiological log: every durable log
record newer than the last completed checkpoint is replayed against the
disk image.  Because page content is modelled as a monotone version
number, redo is a simple idempotent max.

Two restart modes are provided:

* **cold** (the paper's behaviour): the SSD's contents are ignored at
  restart — "No design to-date leverages the data in the SSD during
  system restart" (§6) — so the SSD starts empty and must re-warm.
* **warm** (the paper's future-work proposal, §4.1.2/§6): the SSD buffer
  table was persisted with the checkpoint, so valid *clean* SSD frames
  survive restart and the ramp-up period disappears.  The ablation bench
  measures exactly that difference.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim import Environment
from repro.engine.disk_manager import DiskManager
from repro.engine.wal import WriteAheadLog
from repro.telemetry import RECOVERY_CTX

#: Concurrent page redos per wave (mirrors the checkpointer's
#: FLUSH_BATCH): serial read+write per page made a crash-point sweep
#: quadratically slow in the redo-set size.
REDO_BATCH = 32


class RecoveryError(Exception):
    """Raised when recovery detects lost committed updates."""


class RecoveryManager:
    """Redo-only restart recovery."""

    def __init__(self, env: Environment, disk: DiskManager,
                 wal: WriteAheadLog):
        self.env = env
        self.disk = disk
        self.wal = wal
        self.pages_redone = 0

    def analyze(self, last_checkpoint_lsn: int) -> Dict[int, int]:
        """The redo set: page id -> newest durable version to restore."""
        redo: Dict[int, int] = {}
        for record in self.wal.records_since(last_checkpoint_lsn):
            if record.page_id < 0:
                continue  # checkpoint marker, not a page update
            if record.version > redo.get(record.page_id, -1):
                redo[record.page_id] = record.version
        return redo

    def redo(self, last_checkpoint_lsn: int):
        """Process step: replay the log, timing the page I/O it costs.

        For each page needing redo: read it from disk (random), apply the
        newest logged version, write it back.  The per-page read+write
        pairs run in concurrent waves of ``REDO_BATCH`` (the disk array
        has eight spindles to keep busy).  Returns the number of pages
        redone.
        """
        redo_set = self.analyze(last_checkpoint_lsn)
        self.pages_redone = 0
        needed = [(page_id, version)
                  for page_id, version in sorted(redo_set.items())
                  if self.disk.disk_version(page_id) < version]
        for wave_start in range(0, len(needed), REDO_BATCH):
            wave = needed[wave_start:wave_start + REDO_BATCH]
            pending = [
                self.env.process(self._redo_one(page_id, version))
                for page_id, version in wave
            ]
            yield self.env.all_of(pending)
        return self.pages_redone

    def _redo_one(self, page_id: int, version: int):
        """Process step: restore one page to its newest logged version."""
        yield from self.disk.read(page_id, 1, sequential=False,
                                  ctx=RECOVERY_CTX)
        yield from self.disk.write(page_id, version, sequential=False,
                                   ctx=RECOVERY_CTX)
        self.pages_redone += 1


def simulate_crash_and_recover(env: Environment, system,
                               committed: Optional[Dict[int, int]] = None):
    """Process step: crash the system, restart, recover, verify.

    ``system`` is a :class:`repro.harness.system.System`.  The crash
    discards all volatile state (the buffer pool and, unless the warm
    restart extension persisted it, the SSD manager's mapping).  Recovery
    replays the durable log since the last checkpoint.  If ``committed``
    maps page ids to the versions committed before the crash, the result
    is verified and :class:`RecoveryError` raised on any loss.

    Returns the number of pages redone.
    """
    system.bp.drop_all()
    system.ssd_manager.on_crash()
    recovery = RecoveryManager(env, system.disk, system.wal)
    redone = yield from recovery.redo(system.checkpointer.last_checkpoint_lsn)
    system.ssd_manager.on_restart(system.checkpointer.last_checkpoint_lsn)
    if committed:
        lost = {
            page_id: (version, system.disk.disk_version(page_id))
            for page_id, version in committed.items()
            if system.disk.disk_version(page_id) < version
        }
        if lost:
            sample = dict(list(lost.items())[:5])
            raise RecoveryError(
                f"{len(lost)} committed page versions lost, e.g. {sample}")
    return redone
