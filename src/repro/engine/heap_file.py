"""Heap files: contiguous page ranges scanned sequentially.

A heap file models a table stored in contiguous pages.  Its scan drives
the read-ahead mechanism: after ``trigger_pages`` single-page (random)
fetches, subsequent pages arrive via multi-page prefetch and are marked
sequential — the signal the SSD admission policy uses.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.buffer_pool import BufferPool
from repro.engine.readahead import ReadAheadAccuracy


class HeapFile:
    """A table occupying pages ``[first_page, first_page + npages)``."""

    def __init__(self, name: str, first_page: int, npages: int):
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        self.name = name
        self.first_page = first_page
        self.npages = npages

    @property
    def end_page(self) -> int:
        """One past the table's last page."""
        return self.first_page + self.npages

    def page_of(self, slot: int) -> int:
        """Page holding logical record slot ``slot`` (uniform layout)."""
        return self.first_page + slot % self.npages

    def scan(self, bp: BufferPool, start: Optional[int] = None,
             npages: Optional[int] = None,
             accuracy: Optional[ReadAheadAccuracy] = None, ctx=None):
        """Process step: sequentially read a page range of the table.

        Touches every page (fetch + unpin), using read-ahead after the
        trigger.  Returns the number of pages scanned.  If ``accuracy`` is
        given, each page's sequential/random tag is scored against the
        ground truth that a scan is sequential.
        """
        first = self.first_page if start is None else start
        count = (self.end_page - first) if npages is None else npages
        if first < self.first_page or first + count > self.end_page:
            raise ValueError(
                f"scan range [{first}, {first + count}) outside {self.name}")

        ra = bp.readahead
        pin_hit = bp.pin_hit
        trigger = min(ra.trigger_pages, count)
        scanned = 0
        # Leading pages: read individually before read-ahead engages.
        for pid in range(first, first + trigger):
            frame = pin_hit(pid)
            if frame is None:
                frame = yield from bp.fetch(pid, ctx=ctx)
            if accuracy is not None:
                accuracy.score(frame.sequential, True)
            frame.pin_count -= 1
            scanned += 1
        # Remaining pages: pipelined read-ahead — keep ``ra.depth``
        # prefetch batches in flight ahead of the consume position so the
        # striped array streams from all drives at once.
        position = first + trigger
        end = first + count
        batches = []
        while position < end:
            batch = min(ra.batch_pages, end - position)
            batches.append((position, batch))
            position += batch
        env = bp.env
        inflight = {}
        launched = 0
        for index, (start_page, batch) in enumerate(batches):
            while launched < len(batches) and launched < index + ra.depth:
                b_start, b_count = batches[launched]
                inflight[launched] = env.process(
                    bp.prefetch(b_start, b_count, ctx=ctx))
                launched += 1
            yield inflight.pop(index)
            for pid in range(start_page, start_page + batch):
                frame = pin_hit(pid)
                if frame is None:
                    frame = yield from bp.fetch(pid, ctx=ctx)
                if accuracy is not None:
                    accuracy.score(frame.sequential, True)
                frame.pin_count -= 1
                scanned += 1
        return scanned
