"""A page-based mini-DBMS storage engine.

This package is the substrate the paper's SSD designs plug into: it plays
the role SQL Server 2008 R2's storage module plays in the paper (Figure 1).
It provides

* a main-memory **buffer pool** with LRU-2 replacement, pinning, dirty
  tracking, and an eviction pipeline that hands pages to an SSD manager,
* an asynchronous **disk manager** over the simulated striped HDD array,
  including multi-page I/O,
* a **read-ahead** mechanism whose "this page was prefetched" flag is the
  sequential/random classification the SSD admission policy consumes,
* a **write-ahead log** with group commit and the WAL force rule,
* **sharp checkpoints** and restart **recovery**,
* **heap files** (sequential scans) and a **B+-tree** (random lookups).

Page *contents* are modelled as a monotonically increasing version number
per page rather than 8 KB of bytes: every correctness property the paper's
designs must maintain (which copy of a page is newest, what survives a
crash) is expressible over versions, and it keeps the simulation fast.
"""

from repro.engine.page import Frame, INVALID_LSN, PageId
from repro.engine.wal import WriteAheadLog
from repro.engine.disk_manager import DiskManager
from repro.engine.readahead import ReadAhead, WindowClassifier
from repro.engine.buffer_pool import BufferPool
from repro.engine.checkpoint import Checkpointer
from repro.engine.recovery import RecoveryManager, simulate_crash_and_recover
from repro.engine.heap_file import HeapFile
from repro.engine.btree import BPlusTree
from repro.engine.database import Database

__all__ = [
    "BPlusTree",
    "BufferPool",
    "Checkpointer",
    "Database",
    "DiskManager",
    "Frame",
    "HeapFile",
    "INVALID_LSN",
    "PageId",
    "ReadAhead",
    "RecoveryManager",
    "WindowClassifier",
    "WriteAheadLog",
    "simulate_crash_and_recover",
]
