"""The main-memory buffer pool.

Implements the storage-module flow of the paper's §2.1/§2.2:

* page requests check the pool, then the SSD manager, then the disk;
* LRU-2 replacement (the policy SQL Server-class systems use, and the one
  the paper uses for the SSD as well) with pinning;
* dirty pages are written out *before* their frame is reused, and the WAL
  rule is enforced first;
* every eviction is handed to the SSD manager, which decides — per design
  (CW/DW/LC/TAC/noSSD) — what gets written where;
* dirtying a page invalidates its SSD copy;
* multi-page read-ahead with the §3.3.3 trimming optimization.

The pool is *partitioned* (DESIGN.md §13): page ids hash into
``partitions`` shards, each owning its slice of the replacement heap, a
FIFO latch domain with a modeled service time, and its occupancy
accounting.  The backing page-table dict is shared storage (a single
C-level hash map — per-shard dicts only add constant overhead in the
host language), so ``frames`` keeps its plain-``dict`` interface.
Victim selection takes the global minimum across the shard heap tops by
``(prev_access, stamp, page_id)``, which makes the eviction order — and
therefore the whole event trace when the latch service time is zero —
independent of the partition count.

Replacement bookkeeping is O(1) per access: each resident frame keeps
exactly one live heap entry (identified by ``Frame.heap_stamp``); a
touch only bumps ``Frame.lru_stamp``, and the entry is re-keyed lazily
when it surfaces during victim selection.  Per-frame keys
(``prev_access``) only ever grow, so a surfaced stale entry re-sinks
below any current minimum and selection order matches the eager
entry-per-touch heap exactly.

All methods named as process steps (``fetch``, ``prefetch``, …) are
generators meant to be driven with ``yield from`` inside a simulation
process.  :meth:`BufferPool.pin_hit` is the exception by design: the
no-I/O hit path completes without a process switch, so hot callers can
pin without paying a generator round-trip.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.sim import Environment, Event
from repro.engine.disk_manager import DiskManager
from repro.engine.page import Frame, PageId
from repro.engine.readahead import ReadAhead
from repro.engine.wal import WriteAheadLog
from repro.telemetry import EVICTION_CTX, NULL_TELEMETRY


class BufferPoolStats:
    """Cumulative buffer-pool counters."""

    __slots__ = (
        "hits", "misses", "ssd_hits", "disk_reads", "prefetched_pages",
        "evictions_clean", "evictions_dirty", "latch_wait_time",
        "latch_waits", "latch_wait_by_reason", "partition_latch_waits",
        "partition_latch_wait_time",
    )

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.ssd_hits = 0          # misses served from the SSD
        self.disk_reads = 0        # misses served from the disk
        self.prefetched_pages = 0  # pages brought in by read-ahead
        self.evictions_clean = 0
        self.evictions_dirty = 0
        self.latch_wait_time = 0.0
        self.latch_waits = 0
        #: Latch wait time attributed to the cause of the latch (e.g.
        #: "eviction" write-outs vs TAC's "admission-write", §2.5).
        self.latch_wait_by_reason = {}
        #: Fetches that queued on a partition latch (only counted when a
        #: non-zero latch service time is modeled, DESIGN.md §13).
        self.partition_latch_waits = 0
        self.partition_latch_wait_time = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def ssd_hit_rate(self) -> float:
        """Fraction of buffer-pool misses served by the SSD."""
        return self.ssd_hits / self.misses if self.misses else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Snapshot of every counter (replaces ``vars()`` under slots)."""
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data) -> "BufferPoolStats":
        """Rebuild counters from an :meth:`as_dict` snapshot."""
        stats = cls()
        for name in cls.__slots__:
            if name in data:
                setattr(stats, name, data[name])
        return stats


class PoolPartition:
    """One buffer-pool shard: replacement heap, latch domain, occupancy.

    The latch is a FIFO single-server queue in virtual time:
    ``busy_until`` is when the last queued page-table access completes,
    so an arrival at ``now`` starts at ``max(now, busy_until)`` and the
    whole queue never needs materializing (DESIGN.md §13).
    """

    __slots__ = ("index", "heap", "busy_until", "latch_waits",
                 "latch_wait_time", "resident")

    def __init__(self, index: int):
        self.index = index
        #: Replacement heap slice: ``(prev_access, stamp, page_id)``
        #: entries, one live entry per resident frame of this shard.
        self.heap: List[Tuple[float, int, PageId]] = []
        self.busy_until = 0.0
        self.latch_waits = 0
        self.latch_wait_time = 0.0
        #: Frames of this shard currently resident (its share of the
        #: global free list).
        self.resident = 0


class BufferPool:
    """A fixed-capacity page cache over the disk manager and SSD manager.

    ``ssd_manager`` is any object implementing the design protocol (see
    :class:`repro.core.ssd_manager.SsdManagerBase`); the ``noSSD``
    configuration passes a :class:`repro.core.ssd_manager.NoSsdManager`.

    ``partitions`` shards the replacement and latch structures by
    ``page_id % partitions``; ``latch_seconds`` is the modeled service
    time of one page-table access under a partition latch.  The default
    of ``0.0`` keeps the fetch path free of latch events, so traces are
    byte-identical for every partition count; a non-zero value makes
    ``--partitions`` timing-relevant (per-tenant tail latency drops as
    the latch domains multiply).
    """

    __slots__ = (
        "env", "telemetry", "_tracer", "_tm_hit", "_tm_hit_inc",
        "_tm_ssd_hit", "_tm_disk_read", "_tm_evict_clean",
        "_tm_evict_dirty", "_tm_latch_waits", "_tm_latch_wait_seconds",
        "_tm_prefetched", "_tm_partition_latch", "capacity", "disk",
        "wal", "ssd", "readahead", "expand_reads", "stats", "frames",
        "_inflight", "_reserved", "_stamp", "_dirty", "partitions",
        "_nparts", "_parts", "_latch_s", "checkpoint_active",
        "_high_water", "_low_water", "_lazywriter_wake", "_frame_freed",
        "_evicting",
    )

    def __init__(self, env: Environment, capacity: int, disk: DiskManager,
                 wal: WriteAheadLog, ssd_manager,
                 readahead: Optional[ReadAhead] = None,
                 expand_reads: bool = False, telemetry=None,
                 partitions: int = 1, latch_seconds: float = 0.0):
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        if latch_seconds < 0:
            raise ValueError(f"negative latch_seconds {latch_seconds}")
        self.env = env
        self.telemetry = telemetry or NULL_TELEMETRY
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        requests = registry.counter(
            "bp_requests_total", "Page requests by how they were served",
            labelnames=("result",))
        self._tm_hit = requests.labels(result="hit")
        self._tm_hit_inc = self._tm_hit.inc  # pre-bound: hottest counter
        self._tm_ssd_hit = requests.labels(result="ssd_hit")
        self._tm_disk_read = requests.labels(result="disk_read")
        evictions = registry.counter(
            "bp_evictions_total", "Frames evicted by the lazy writer",
            labelnames=("kind",))
        self._tm_evict_clean = evictions.labels(kind="clean")
        self._tm_evict_dirty = evictions.labels(kind="dirty")
        self._tm_latch_waits = registry.counter(
            "bp_latch_waits_total", "Fetches that waited on a frame latch",
            labelnames=("reason",))
        self._tm_latch_wait_seconds = registry.histogram(
            "bp_latch_wait_seconds", "Time spent waiting on frame latches")
        self._tm_prefetched = registry.counter(
            "bp_prefetched_pages_total", "Pages brought in by read-ahead")
        registry.gauge("bp_dirty_frames", "Dirty frames in the buffer pool"
                       ).set_function(lambda: self.dirty_count)
        registry.gauge("bp_used_frames", "Occupied + reserved frame slots"
                       ).set_function(lambda: self.used)
        self.capacity = capacity
        self.disk = disk
        self.wal = wal
        self.ssd = ssd_manager
        self.readahead = readahead or ReadAhead()
        #: SQL Server 2008 R2 expands every single-page read to an 8-page
        #: read until the pool is filled (§4.3.2, Figure 8's initial burst).
        self.expand_reads = expand_reads
        self.stats = BufferPoolStats()
        self.frames: Dict[PageId, Frame] = {}
        self._inflight: Dict[PageId, Event] = {}
        self._reserved = 0  # frame slots claimed by in-flight misses
        #: Global LRU-2 ordering stamp, shared by every partition so the
        #: victim order is identical for any partition count.
        self._stamp = 0
        self._dirty = 0  # dirty frames, maintained incrementally
        self.partitions = partitions
        self._nparts = partitions
        self._parts = [PoolPartition(i) for i in range(partitions)]
        self._latch_s = latch_seconds
        if latch_seconds > 0.0:
            family = registry.counter(
                "bp_partition_latch_waits_total",
                "Fetches that queued on a partition latch",
                labelnames=("partition",))
            self._tm_partition_latch = [
                family.labels(partition=str(i)) for i in range(partitions)]
        else:
            self._tm_partition_latch = None
        #: Set by the checkpointer while a sharp checkpoint is running.
        self.checkpoint_active = False
        # Lazy-writer machinery: evictions run in a background process
        # (as SQL Server's lazywriter does) that keeps a cushion of free
        # frames, so a fetching client almost never waits for a dirty
        # page's write-out.  The cushion is sized to absorb a read-ahead
        # burst.
        self._high_water = min(
            max(2, capacity // 4),
            max(16, capacity // 32, self.readahead.batch_pages * 2))
        self._low_water = self._high_water // 2
        self._lazywriter_wake: Optional[Event] = None
        self._frame_freed = self.env.event()
        self._evicting = 0  # eviction write-outs in flight
        self.env.process(self._lazywriter())

    @property
    def _warmed(self) -> bool:
        """True once the pool has (effectively) filled.  The lazy writer
        keeps a free cushion afterwards, so 'full' means 'within two
        cushions of capacity', not literally zero free frames."""
        return self.used >= self.capacity - 2 * self._high_water

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dirty_count(self) -> int:
        """Dirty frames currently in the pool."""
        return self._dirty

    @property
    def used(self) -> int:
        """Frames occupied plus slots reserved by in-flight misses."""
        return len(self.frames) + self._reserved

    def get_resident(self, page_id: PageId) -> Optional[Frame]:
        """The frame for ``page_id`` if currently resident, else None."""
        return self.frames.get(page_id)

    def partition_occupancy(self) -> List[int]:
        """Resident frames per partition (the sharded free-list view)."""
        return [part.resident for part in self._parts]

    # ------------------------------------------------------------------
    # Fetch path
    # ------------------------------------------------------------------

    def pin_hit(self, page_id: PageId) -> Optional[Frame]:
        """Pin and return ``page_id``'s frame iff this needs no waiting.

        The no-I/O, no-latch hit path of :meth:`fetch` as a plain call:
        hot callers try this first and fall back to the ``fetch``
        generator only on a miss, a latched frame, or when a partition
        latch service time is modeled (which must queue in virtual
        time).  Returns None when the caller must take ``fetch``.
        """
        if self._latch_s:
            return None
        frame = self.frames.get(page_id)
        if frame is None or frame.io_busy is not None:
            return None
        frame.pin_count += 1
        # Inlined _touch: resident frames always own a live heap entry,
        # so a hit only bumps the LRU-2 history and the global stamp.
        frame.prev_access = frame.last_access
        frame.last_access = self.env._now
        self._stamp = stamp = self._stamp + 1
        frame.lru_stamp = stamp
        self.stats.hits += 1
        self._tm_hit_inc()
        return frame

    def fetch(self, page_id: PageId, ctx=None):
        """Process step: pin and return the frame for ``page_id``.

        The caller must :meth:`unpin` the frame when done with it.
        ``ctx`` (a :class:`~repro.telemetry.TraceContext`) attributes
        every wait and I/O along the way to the causing transaction.
        """
        if self._latch_s:
            yield from self._latch(self._parts[page_id % self._nparts],
                                   ctx=ctx)
        env = self.env
        frames = self.frames
        stats = self.stats
        while True:
            frame = frames.get(page_id)
            if frame is not None:
                if frame.io_busy is not None:
                    # Latch conflict: an I/O owns the frame (e.g. TAC's
                    # write-to-SSD-after-read, §2.5) — wait and retry.
                    started = env._now
                    reason = frame.busy_reason or "unknown"
                    stats.latch_waits += 1
                    self._tm_latch_waits.labels(reason=reason).inc()
                    yield frame.io_busy
                    waited = env._now - started
                    stats.latch_wait_time += waited
                    by_reason = stats.latch_wait_by_reason
                    by_reason[reason] = by_reason.get(reason, 0.0) + waited
                    self._tm_latch_wait_seconds.observe(waited)
                    if self._tracer.enabled:
                        self._tracer.complete("latch_wait", started,
                                              env._now, "bp",
                                              "buffer_pool",
                                              {"reason": reason}, ctx=ctx)
                    continue
                frame.pin_count += 1
                frame.prev_access = frame.last_access
                frame.last_access = env._now
                self._stamp = stamp = self._stamp + 1
                frame.lru_stamp = stamp
                stats.hits += 1
                self._tm_hit_inc()
                return frame

            pending = self._inflight.get(page_id)
            if pending is not None:
                started = env._now
                yield pending
                if self._tracer.enabled:
                    self._tracer.complete("inflight_wait", started,
                                          env._now, "bp", "buffer_pool",
                                          ctx=ctx)
                continue

            # Miss: this process performs the read.
            done = env.event()
            self._inflight[page_id] = done
            self._reserved += 1
            stats.misses += 1
            try:
                frame = yield from self._read_in(page_id, ctx=ctx)
            finally:
                # pop/max guards: drop_all() (crash simulation) may have
                # reset this bookkeeping while the read was in flight.
                self._reserved = max(0, self._reserved - 1)
                self._inflight.pop(page_id, None)
                if done.callbacks:
                    done.succeed()
                else:
                    # No second fetcher piled up behind this miss; the
                    # event left the registry above, so nothing can
                    # reach it anymore — retire it off-queue.
                    done.settle()
            frame.pin_count = 1
            self._touch(frame)
            return frame

    def _latch(self, part: PoolPartition, ctx=None):
        """Process step: one page-table access under the partition latch.

        FIFO single-server queue in virtual time: the request starts
        when the previous one completes and holds the latch for the
        modeled service time.  Only reached when ``latch_seconds > 0``.
        """
        env = self.env
        now = env._now
        start = part.busy_until
        if start < now:
            start = now
        service = self._latch_s
        part.busy_until = start + service
        wait = start - now
        if wait > 0.0:
            part.latch_waits += 1
            part.latch_wait_time += wait
            stats = self.stats
            stats.partition_latch_waits += 1
            stats.partition_latch_wait_time += wait
            counters = self._tm_partition_latch
            if counters is not None:
                counters[part.index].inc()
            if self._tracer.enabled:
                self._tracer.complete("partition_latch", now, start, "bp",
                                      "buffer_pool",
                                      {"partition": part.index}, ctx=ctx)
        yield env.timeout(wait + service)

    def _read_in(self, page_id: PageId, ctx=None):
        """Process step: bring a missing page in (SSD first, else disk).

        Records an outer ``bp_miss`` span (for waterfall display; the
        analyzer sums only the leaf waits nested inside it).
        """
        miss_started = self.env.now
        yield from self._ensure_free_frames(ctx=ctx)
        version = yield from self.ssd.try_read(page_id, ctx=ctx)
        if version is not None:
            self.stats.ssd_hits += 1
            self._tm_ssd_hit.inc()
            if self._tracer.enabled:
                self._tracer.complete("bp_miss", miss_started, self.env.now,
                                      "bp", "buffer_pool",
                                      {"page": page_id, "src": "ssd"},
                                      ctx=ctx)
            frame = Frame(page_id, version, sequential=False)
            if (version > self.disk.disk_version(page_id)
                    and not self.ssd.contains_valid(page_id)):
                # An *exclusive* SSD design just handed us its only copy
                # of a version newer than disk: the memory frame is now
                # the authoritative copy and must be treated as dirty so
                # checkpoints and evictions keep it durable.  (The redo
                # records for this version were forced before the page
                # ever reached the SSD, so no new WAL force is needed.)
                frame.dirty = True
                self._dirty += 1
            self.frames[page_id] = frame
            return frame

        self.stats.disk_reads += 1
        self._tm_disk_read.inc()
        if self.expand_reads and not self._warmed:
            frame = yield from self._expanded_read(page_id, ctx=ctx)
        else:
            versions = yield from self.disk.read(page_id, 1, sequential=False,
                                                 ctx=ctx)
            frame = Frame(page_id, versions[0], sequential=False)
            self.frames[page_id] = frame
        self.ssd.on_read_from_disk(frame)
        if self._tracer.enabled:
            self._tracer.complete("bp_miss", miss_started, self.env.now,
                                  "bp", "buffer_pool",
                                  {"page": page_id, "src": "disk"},
                                  ctx=ctx)
        return frame

    def _expanded_read(self, page_id: PageId, ctx=None):
        """Read an aligned 8-page run to fill the pool faster (cold start)."""
        span = 8
        start = (page_id // span) * span
        npages = min(span, self.disk.npages - start)
        versions = yield from self.disk.read(start, npages, sequential=False,
                                             ctx=ctx)
        frame = None
        for offset, version in enumerate(versions):
            pid = start + offset
            if pid == page_id:
                frame = Frame(pid, version, sequential=False)
                self.frames[pid] = frame
            elif (pid not in self.frames and pid not in self._inflight
                  and self.used < self.capacity):
                extra = Frame(pid, version, sequential=True)
                self.frames[pid] = extra
                self._touch(extra)
        return frame

    # ------------------------------------------------------------------
    # Prefetch (read-ahead) path with multi-page trimming (§3.3.3)
    # ------------------------------------------------------------------

    def prefetch(self, start: PageId, npages: int, ctx=None):
        """Process step: bring ``[start, start+npages)`` in via read-ahead.

        Pages arrive unpinned and marked *sequential* (the admission
        signal).  Pages already resident or in flight are skipped.  The
        disk I/O is trimmed per §3.3.3: leading/trailing pages present in
        the SSD are dropped from the disk request; middle pages whose SSD
        copy is *newer* than disk are read from the SSD separately.
        """
        wanted = [
            pid for pid in range(start, start + npages)
            if pid not in self.frames and pid not in self._inflight
        ]
        if not wanted:
            return
        done = self.env.event()
        for pid in wanted:
            self._inflight[pid] = done
        self._reserved += len(wanted)
        try:
            yield from self._ensure_free_frames(ctx=ctx)
            plan = self.ssd.trim_plan(wanted)
            ios = []
            if plan.disk_count > 0:
                ios.append(self.env.process(self._disk_run(
                    plan.disk_start, plan.disk_count, plan.skip_in_run)))
            for pid in plan.ssd_pages:
                ios.append(self.env.process(self._ssd_single(pid)))
            if ios:
                # One outer span covers the parallel I/O fan-out; the
                # inner reads run ctx-less so overlapping device time is
                # not double-attributed to the transaction.
                started = self.env.now
                yield self.env.all_of(ios)
                if self._tracer.enabled:
                    self._tracer.complete("prefetch_wait", started,
                                          self.env.now, "bp", "buffer_pool",
                                          {"pages": len(wanted)}, ctx=ctx)
        finally:
            self._reserved = max(0, self._reserved - len(wanted))
            for pid in wanted:
                if self._inflight.get(pid) is done:
                    del self._inflight[pid]
            if done.callbacks:
                done.succeed()
            else:
                done.settle()

    def _disk_run(self, start: PageId, npages: int, skip=frozenset()):
        versions = yield from self.disk.read(start, npages, sequential=True)
        for offset, version in enumerate(versions):
            pid = start + offset
            if pid in self.frames or pid in skip:
                # Resident already, or a newer SSD copy is being read in
                # parallel: the stale disk copy is discarded (§3.3.3).
                continue
            if self.ssd.contains_newer(pid):
                # The page was dirtied and evicted into the SSD *while*
                # this disk I/O was in flight: the disk copy is stale.
                # Drop it; a later fetch will be served from the SSD.
                continue
            frame = Frame(pid, version, sequential=True)
            self.frames[pid] = frame
            self._touch(frame)
            self.stats.prefetched_pages += 1
            self._tm_prefetched.inc()
            self.ssd.on_read_from_disk(frame)

    def _ssd_single(self, page_id: PageId):
        version = yield from self.ssd.try_read(page_id)
        from_ssd = version is not None
        if not from_ssd:
            # The SSD copy vanished between planning and this read (a
            # concurrent update invalidated it, or replacement evicted
            # it) or the throttle declined an optional read.  Either
            # way the disk holds the newest durable copy: fall back.
            versions = yield from self.disk.read(page_id, 1)
            version = versions[0]
        if page_id in self.frames:
            return
        frame = Frame(page_id, version, sequential=True)
        self.frames[page_id] = frame
        self._touch(frame)
        self.stats.prefetched_pages += 1
        self._tm_prefetched.inc()
        if from_ssd:
            self.stats.ssd_hits += 1
            self._tm_ssd_hit.inc()

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------

    def mark_dirty(self, frame: Frame, txn_id: Optional[int] = None) -> int:
        """Record an update to a pinned frame; returns the redo LSN.

        Bumps the page version, appends the redo record, and invalidates
        any SSD copy (§2.2: "the copy of the page in the SSD is
        invalidated by the SSD manager").
        """
        if frame.pin_count <= 0:
            raise ValueError(f"updating unpinned frame {frame!r}")
        frame.version += 1
        frame.page_lsn = self.wal.append(frame.page_id, frame.version,
                                         txn_id=txn_id)
        if not frame.dirty:
            frame.rec_lsn = frame.page_lsn
            frame.dirty = True
            self._dirty += 1
        self.ssd.invalidate(frame.page_id)
        return frame.page_lsn

    def mark_clean(self, frame: Frame) -> None:
        """A flushed frame's memory copy now matches durable storage.

        Used by the checkpointer; keeps the incremental dirty count in
        step and resets the recovery LSN.
        """
        if frame.dirty:
            frame.dirty = False
            self._dirty -= 1
        frame.rec_lsn = -1

    def unpin(self, frame: Frame) -> None:
        """Release one pin."""
        if frame.pin_count <= 0:
            raise ValueError(f"unpinning unpinned frame {frame!r}")
        frame.pin_count -= 1

    def new_page(self, page_id: PageId, ctx=None):
        """Create a page in the pool without reading it (B+-tree splits).

        The frame starts dirty — this is the "dirty page generated
        on-the-fly" case of §4.2 that TAC never caches.
        """
        if page_id in self.frames or page_id in self._inflight:
            raise ValueError(f"page {page_id} already resident")
        self._reserved += 1
        try:
            yield from self._ensure_free_frames(ctx=ctx)
        finally:
            self._reserved -= 1
        frame = Frame(page_id, version=0, sequential=False)
        frame.pin_count = 1
        frame.dirty = True
        self._dirty += 1
        frame.page_lsn = self.wal.append(page_id, 0)
        self.frames[page_id] = frame
        self._touch(frame)
        return frame

    # ------------------------------------------------------------------
    # Replacement (LRU-2, partitioned lazy heap: one entry per frame)
    # ------------------------------------------------------------------

    def _touch(self, frame: Frame) -> None:
        frame.prev_access = frame.last_access
        frame.last_access = self.env._now
        self._stamp = stamp = self._stamp + 1
        frame.lru_stamp = stamp
        if frame.heap_stamp == 0:
            # First touch after install: enheap the frame's single live
            # entry and charge its shard's occupancy.
            frame.heap_stamp = stamp
            part = self._parts[frame.page_id % self._nparts]
            part.resident += 1
            heappush(part.heap, (frame.prev_access, stamp, frame.page_id))

    def _pick_victim(self) -> Optional[Frame]:
        """Pop the LRU-2 victim: oldest penultimate access, unpinned."""
        victims = self._pick_victims(1)
        return victims[0] if victims else None

    def _pick_victims(self, want: int) -> List[Frame]:
        """Pop up to ``want`` LRU-2 victims across all partitions.

        Each shard heap is first cleaned to a *current* top — garbage
        entries (evicted or superseded frames) are dropped, entries of
        since-touched frames are re-keyed in place — then the global
        minimum of the shard tops by ``(prev_access, stamp, page_id)``
        is taken, which reproduces the single-heap victim order for any
        partition count.  Pinned or latched minima are set aside and
        re-enheaped after the batch, exactly as the eager heap deferred
        them.
        """
        frames = self.frames
        parts = self._parts
        victims: List[Frame] = []
        deferred: List[Tuple[List[Tuple[float, int, PageId]],
                             Tuple[float, int, PageId]]] = []
        while len(victims) < want:
            best = None
            best_heap = None
            for part in parts:
                heap = part.heap
                while heap:
                    entry = heap[0]
                    frame = frames.get(entry[2])
                    if frame is None or frame.heap_stamp != entry[1]:
                        heappop(heap)  # garbage: frame gone or superseded
                        continue
                    if frame.lru_stamp != entry[1]:
                        # Touched since enheaped: re-key lazily.  The new
                        # key/stamp are strictly larger, so the entry
                        # sinks (or stays a *current* top) and the loop
                        # makes progress.
                        heappop(heap)
                        stamp = frame.lru_stamp
                        frame.heap_stamp = stamp
                        heappush(heap,
                                 (frame.prev_access, stamp, entry[2]))
                        continue
                    break
                if heap:
                    entry = heap[0]
                    if best is None or entry < best:
                        best = entry
                        best_heap = heap
            if best is None:
                break
            heappop(best_heap)
            frame = frames[best[2]]
            if frame.pin_count > 0 or frame.io_busy is not None:
                deferred.append((best_heap, best))
                continue
            victims.append(frame)
        for heap, entry in deferred:
            heappush(heap, entry)
        return victims

    # ------------------------------------------------------------------
    # Lazy writer (background eviction)
    # ------------------------------------------------------------------

    @property
    def free_frames(self) -> int:
        """Unoccupied, unreserved frame slots."""
        return self.capacity - self.used

    def _kick_lazywriter(self) -> None:
        if (self._lazywriter_wake is not None
                and not self._lazywriter_wake.triggered):
            self._lazywriter_wake.succeed()

    def _lazywriter(self):
        """Keep ``free_frames`` near the high-water mark.

        Evictions are spawned as independent processes (no barrier): one
        slow dirty write-out must not hold back the rest of the cushion.
        ``_evicting`` counts write-outs in flight so the target is not
        overshot.
        """
        while True:
            deficit = self._high_water - self.free_frames - self._evicting
            stuck = False
            if deficit > 0:
                victims = self._pick_victims(deficit)
                for victim in victims:
                    victim.io_busy = self.env.event()  # reserve first
                    victim.busy_reason = "eviction"
                    self._evicting += 1
                    self.env.process(self._evict(victim))
                if len(victims) < deficit:
                    stuck = self.free_frames + self._evicting <= 0
            if stuck:
                # Everything pinned/busy — wait for the world to change.
                yield self.env.timeout(0.0005)
                continue
            self._lazywriter_wake = self.env.event()
            # Eviction pressure has drained: batching designs (LS) flush
            # any partial admission batch now rather than holding the
            # just-spawned evictions hostage to the batch timeout.
            self.ssd.admission_flush_hint()
            yield self._lazywriter_wake

    def _signal_freed(self) -> None:
        # Rotate only when somebody waits: an un-observed free needs no
        # event (a later waiter subscribes to the same object and the
        # next signal wakes it, exactly as the eager rotation did).
        event = self._frame_freed
        if event.callbacks:
            self._frame_freed = self.env.event()
            event.succeed()

    def _ensure_free_frames(self, needed: int = 0, ctx=None):
        """Process step: wait until the caller's (already reserved) claim
        fits within capacity.

        Callers reserve their slots *before* calling this, so the claim
        is part of :attr:`used` already — counting it again would let a
        handful of concurrent prefetches reserve the whole pool and then
        deadlock waiting for the space their own reservations hold.
        ``needed`` covers only *additional* un-reserved slots.

        The lazy writer normally keeps a cushion, so this returns without
        yielding; under pressure it blocks until evictions complete — that
        blocked time is recorded as a ``free_wait`` span under ``ctx``.
        """
        if self.free_frames - needed < self._low_water:
            self._kick_lazywriter()
        if self.used + needed <= self.capacity:
            return
        started = self.env.now
        try:
            while self.used + needed > self.capacity:
                if not self.frames and self._evicting == 0:
                    # Nothing exists to evict: reservations alone overcommit
                    # the pool (a cold-start burst).  Proceed — the overshoot
                    # is bounded by the number of concurrent reads and the
                    # lazy writer reclaims it as frames materialize.
                    return
                self._kick_lazywriter()
                yield self._frame_freed
        finally:
            if self._tracer.enabled:
                self._tracer.complete("free_wait", started, self.env.now,
                                      "bp", "buffer_pool", ctx=ctx)

    def _evict(self, victim: Frame):
        """Process step: write out (per design) and drop one frame."""
        busy = victim.io_busy or self.env.event()
        victim.io_busy = busy
        victim.busy_reason = "eviction"
        tracer = self._tracer
        started = self.env.now
        try:
            if victim.dirty:
                self.stats.evictions_dirty += 1
                self._tm_evict_dirty.inc()
                # WAL rule: log records for the page must be durable before
                # the page goes to the SSD or disk (§2.4).  Skip the
                # generator when a group commit already covered the LSN
                # (force() would return without yielding anyway).
                wal = self.wal
                if victim.page_lsn > wal.flushed_lsn:
                    yield from wal.force(victim.page_lsn, ctx=EVICTION_CTX)
                yield from self.ssd.on_evict_dirty(victim)
                if tracer.enabled:
                    tracer.complete("evict_dirty", started, self.env.now,
                                    "bp", "buffer_pool",
                                    {"page": victim.page_id})
            else:
                self.stats.evictions_clean += 1
                self._tm_evict_clean.inc()
                yield from self.ssd.on_evict_clean(victim)
                if tracer.enabled:
                    tracer.complete("evict_clean", started, self.env.now,
                                    "bp", "buffer_pool",
                                    {"page": victim.page_id})
        finally:
            if self.frames.get(victim.page_id) is victim:
                del self.frames[victim.page_id]
                part = self._parts[victim.page_id % self._nparts]
                part.resident -= 1
                if victim.dirty:
                    self._dirty -= 1
            victim.io_busy = None
            victim.busy_reason = None
            if busy.callbacks:
                busy.succeed()
            else:
                # No fetcher hit the latch during the write-out; the
                # frame no longer references the event, so retire it
                # off-queue.
                busy.settle()
            self._evicting = max(0, self._evicting - 1)
            self._signal_freed()
            self._kick_lazywriter()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def dirty_frames(self) -> List[Frame]:
        """Snapshot of currently dirty frames (for sharp checkpoints)."""
        return [f for f in self.frames.values() if f.dirty]

    def drop_all(self) -> None:
        """Discard every frame without writing (crash simulation)."""
        self.frames.clear()
        self._inflight.clear()
        self._reserved = 0
        self._dirty = 0
        for part in self._parts:
            part.heap.clear()
            part.resident = 0
            part.busy_until = 0.0

    def crash_reset(self) -> None:
        """Hard-crash restart: drop volatile state and restart services.

        Used after :meth:`~repro.sim.environment.Environment.wipe` killed
        every in-flight process — including the lazy writer and any
        eviction write-outs — so the counters and wakeup events they
        owned must be rebuilt and a fresh lazy writer started.
        """
        self.drop_all()
        self.checkpoint_active = False
        self._evicting = 0
        self._lazywriter_wake = None
        self._frame_freed = self.env.event()
        self.env.process(self._lazywriter())
