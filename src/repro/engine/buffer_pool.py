"""The main-memory buffer pool.

Implements the storage-module flow of the paper's §2.1/§2.2:

* page requests check the pool, then the SSD manager, then the disk;
* LRU-2 replacement (the policy SQL Server-class systems use, and the one
  the paper uses for the SSD as well) with pinning;
* dirty pages are written out *before* their frame is reused, and the WAL
  rule is enforced first;
* every eviction is handed to the SSD manager, which decides — per design
  (CW/DW/LC/TAC/noSSD) — what gets written where;
* dirtying a page invalidates its SSD copy;
* multi-page read-ahead with the §3.3.3 trimming optimization.

All methods named as process steps (``fetch``, ``prefetch``, …) are
generators meant to be driven with ``yield from`` inside a simulation
process.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.sim import Environment, Event
from repro.engine.disk_manager import DiskManager
from repro.engine.page import Frame, PageId
from repro.engine.readahead import ReadAhead
from repro.engine.wal import WriteAheadLog
from repro.telemetry import EVICTION_CTX, NULL_TELEMETRY


class BufferPoolStats:
    """Cumulative buffer-pool counters."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.ssd_hits = 0          # misses served from the SSD
        self.disk_reads = 0        # misses served from the disk
        self.prefetched_pages = 0  # pages brought in by read-ahead
        self.evictions_clean = 0
        self.evictions_dirty = 0
        self.latch_wait_time = 0.0
        self.latch_waits = 0
        #: Latch wait time attributed to the cause of the latch (e.g.
        #: "eviction" write-outs vs TAC's "admission-write", §2.5).
        self.latch_wait_by_reason = {}

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def ssd_hit_rate(self) -> float:
        """Fraction of buffer-pool misses served by the SSD."""
        return self.ssd_hits / self.misses if self.misses else 0.0


class BufferPool:
    """A fixed-capacity page cache over the disk manager and SSD manager.

    ``ssd_manager`` is any object implementing the design protocol (see
    :class:`repro.core.ssd_manager.SsdManagerBase`); the ``noSSD``
    configuration passes a :class:`repro.core.ssd_manager.NoSsdManager`.
    """

    def __init__(self, env: Environment, capacity: int, disk: DiskManager,
                 wal: WriteAheadLog, ssd_manager,
                 readahead: Optional[ReadAhead] = None,
                 expand_reads: bool = False, telemetry=None):
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.env = env
        self.telemetry = telemetry or NULL_TELEMETRY
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        requests = registry.counter(
            "bp_requests_total", "Page requests by how they were served",
            labelnames=("result",))
        self._tm_hit = requests.labels(result="hit")
        self._tm_ssd_hit = requests.labels(result="ssd_hit")
        self._tm_disk_read = requests.labels(result="disk_read")
        evictions = registry.counter(
            "bp_evictions_total", "Frames evicted by the lazy writer",
            labelnames=("kind",))
        self._tm_evict_clean = evictions.labels(kind="clean")
        self._tm_evict_dirty = evictions.labels(kind="dirty")
        self._tm_latch_waits = registry.counter(
            "bp_latch_waits_total", "Fetches that waited on a frame latch",
            labelnames=("reason",))
        self._tm_latch_wait_seconds = registry.histogram(
            "bp_latch_wait_seconds", "Time spent waiting on frame latches")
        self._tm_prefetched = registry.counter(
            "bp_prefetched_pages_total", "Pages brought in by read-ahead")
        registry.gauge("bp_dirty_frames", "Dirty frames in the buffer pool"
                       ).set_function(lambda: self.dirty_count)
        registry.gauge("bp_used_frames", "Occupied + reserved frame slots"
                       ).set_function(lambda: self.used)
        self.capacity = capacity
        self.disk = disk
        self.wal = wal
        self.ssd = ssd_manager
        self.readahead = readahead or ReadAhead()
        #: SQL Server 2008 R2 expands every single-page read to an 8-page
        #: read until the pool is filled (§4.3.2, Figure 8's initial burst).
        self.expand_reads = expand_reads
        self.stats = BufferPoolStats()
        self.frames: Dict[PageId, Frame] = {}
        self._inflight: Dict[PageId, Event] = {}
        self._reserved = 0  # frame slots claimed by in-flight misses
        self._lru_heap: List[Tuple[float, int, PageId]] = []
        self._stamp = 0
        self._stamps: Dict[PageId, int] = {}
        #: Set by the checkpointer while a sharp checkpoint is running.
        self.checkpoint_active = False
        # Lazy-writer machinery: evictions run in a background process
        # (as SQL Server's lazywriter does) that keeps a cushion of free
        # frames, so a fetching client almost never waits for a dirty
        # page's write-out.  The cushion is sized to absorb a read-ahead
        # burst.
        self._high_water = min(
            max(2, capacity // 4),
            max(16, capacity // 32, self.readahead.batch_pages * 2))
        self._low_water = self._high_water // 2
        self._lazywriter_wake: Optional[Event] = None
        self._frame_freed = self.env.event()
        self._evicting = 0  # eviction write-outs in flight
        self.env.process(self._lazywriter())

    @property
    def _warmed(self) -> bool:
        """True once the pool has (effectively) filled.  The lazy writer
        keeps a free cushion afterwards, so 'full' means 'within two
        cushions of capacity', not literally zero free frames."""
        return self.used >= self.capacity - 2 * self._high_water

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dirty_count(self) -> int:
        """Dirty frames currently in the pool."""
        return sum(1 for f in self.frames.values() if f.dirty)

    @property
    def used(self) -> int:
        """Frames occupied plus slots reserved by in-flight misses."""
        return len(self.frames) + self._reserved

    def get_resident(self, page_id: PageId) -> Optional[Frame]:
        """The frame for ``page_id`` if currently resident, else None."""
        return self.frames.get(page_id)

    # ------------------------------------------------------------------
    # Fetch path
    # ------------------------------------------------------------------

    def fetch(self, page_id: PageId, ctx=None):
        """Process step: pin and return the frame for ``page_id``.

        The caller must :meth:`unpin` the frame when done with it.
        ``ctx`` (a :class:`~repro.telemetry.TraceContext`) attributes
        every wait and I/O along the way to the causing transaction.
        """
        while True:
            frame = self.frames.get(page_id)
            if frame is not None:
                if frame.io_busy is not None:
                    # Latch conflict: an I/O owns the frame (e.g. TAC's
                    # write-to-SSD-after-read, §2.5) — wait and retry.
                    started = self.env.now
                    reason = frame.busy_reason or "unknown"
                    self.stats.latch_waits += 1
                    self._tm_latch_waits.labels(reason=reason).inc()
                    yield frame.io_busy
                    waited = self.env.now - started
                    self.stats.latch_wait_time += waited
                    by_reason = self.stats.latch_wait_by_reason
                    by_reason[reason] = by_reason.get(reason, 0.0) + waited
                    self._tm_latch_wait_seconds.observe(waited)
                    if self._tracer.enabled:
                        self._tracer.complete("latch_wait", started,
                                              self.env.now, "bp",
                                              "buffer_pool",
                                              {"reason": reason}, ctx=ctx)
                    continue
                frame.pin_count += 1
                self._touch(frame)
                self.stats.hits += 1
                self._tm_hit.inc()
                return frame

            pending = self._inflight.get(page_id)
            if pending is not None:
                started = self.env.now
                yield pending
                if self._tracer.enabled:
                    self._tracer.complete("inflight_wait", started,
                                          self.env.now, "bp", "buffer_pool",
                                          ctx=ctx)
                continue

            # Miss: this process performs the read.
            done = self.env.event()
            self._inflight[page_id] = done
            self._reserved += 1
            self.stats.misses += 1
            try:
                frame = yield from self._read_in(page_id, ctx=ctx)
            finally:
                # pop/max guards: drop_all() (crash simulation) may have
                # reset this bookkeeping while the read was in flight.
                self._reserved = max(0, self._reserved - 1)
                self._inflight.pop(page_id, None)
                done.succeed()
            frame.pin_count = 1
            self._touch(frame)
            return frame

    def _read_in(self, page_id: PageId, ctx=None):
        """Process step: bring a missing page in (SSD first, else disk).

        Records an outer ``bp_miss`` span (for waterfall display; the
        analyzer sums only the leaf waits nested inside it).
        """
        miss_started = self.env.now
        yield from self._ensure_free_frames(ctx=ctx)
        version = yield from self.ssd.try_read(page_id, ctx=ctx)
        if version is not None:
            self.stats.ssd_hits += 1
            self._tm_ssd_hit.inc()
            if self._tracer.enabled:
                self._tracer.complete("bp_miss", miss_started, self.env.now,
                                      "bp", "buffer_pool",
                                      {"page": page_id, "src": "ssd"},
                                      ctx=ctx)
            frame = Frame(page_id, version, sequential=False)
            if (version > self.disk.disk_version(page_id)
                    and not self.ssd.contains_valid(page_id)):
                # An *exclusive* SSD design just handed us its only copy
                # of a version newer than disk: the memory frame is now
                # the authoritative copy and must be treated as dirty so
                # checkpoints and evictions keep it durable.  (The redo
                # records for this version were forced before the page
                # ever reached the SSD, so no new WAL force is needed.)
                frame.dirty = True
            self.frames[page_id] = frame
            return frame

        self.stats.disk_reads += 1
        self._tm_disk_read.inc()
        if self.expand_reads and not self._warmed:
            frame = yield from self._expanded_read(page_id, ctx=ctx)
        else:
            versions = yield from self.disk.read(page_id, 1, sequential=False,
                                                 ctx=ctx)
            frame = Frame(page_id, versions[0], sequential=False)
            self.frames[page_id] = frame
        self.ssd.on_read_from_disk(frame)
        if self._tracer.enabled:
            self._tracer.complete("bp_miss", miss_started, self.env.now,
                                  "bp", "buffer_pool",
                                  {"page": page_id, "src": "disk"},
                                  ctx=ctx)
        return frame

    def _expanded_read(self, page_id: PageId, ctx=None):
        """Read an aligned 8-page run to fill the pool faster (cold start)."""
        span = 8
        start = (page_id // span) * span
        npages = min(span, self.disk.npages - start)
        versions = yield from self.disk.read(start, npages, sequential=False,
                                             ctx=ctx)
        frame = None
        for offset, version in enumerate(versions):
            pid = start + offset
            if pid == page_id:
                frame = Frame(pid, version, sequential=False)
                self.frames[pid] = frame
            elif (pid not in self.frames and pid not in self._inflight
                  and self.used < self.capacity):
                extra = Frame(pid, version, sequential=True)
                self.frames[pid] = extra
                self._touch(extra)
        return frame

    # ------------------------------------------------------------------
    # Prefetch (read-ahead) path with multi-page trimming (§3.3.3)
    # ------------------------------------------------------------------

    def prefetch(self, start: PageId, npages: int, ctx=None):
        """Process step: bring ``[start, start+npages)`` in via read-ahead.

        Pages arrive unpinned and marked *sequential* (the admission
        signal).  Pages already resident or in flight are skipped.  The
        disk I/O is trimmed per §3.3.3: leading/trailing pages present in
        the SSD are dropped from the disk request; middle pages whose SSD
        copy is *newer* than disk are read from the SSD separately.
        """
        wanted = [
            pid for pid in range(start, start + npages)
            if pid not in self.frames and pid not in self._inflight
        ]
        if not wanted:
            return
        done = self.env.event()
        for pid in wanted:
            self._inflight[pid] = done
        self._reserved += len(wanted)
        try:
            yield from self._ensure_free_frames(ctx=ctx)
            plan = self.ssd.trim_plan(wanted)
            ios = []
            if plan.disk_count > 0:
                ios.append(self.env.process(self._disk_run(
                    plan.disk_start, plan.disk_count, plan.skip_in_run)))
            for pid in plan.ssd_pages:
                ios.append(self.env.process(self._ssd_single(pid)))
            if ios:
                # One outer span covers the parallel I/O fan-out; the
                # inner reads run ctx-less so overlapping device time is
                # not double-attributed to the transaction.
                started = self.env.now
                yield self.env.all_of(ios)
                if self._tracer.enabled:
                    self._tracer.complete("prefetch_wait", started,
                                          self.env.now, "bp", "buffer_pool",
                                          {"pages": len(wanted)}, ctx=ctx)
        finally:
            self._reserved = max(0, self._reserved - len(wanted))
            for pid in wanted:
                if self._inflight.get(pid) is done:
                    del self._inflight[pid]
            done.succeed()

    def _disk_run(self, start: PageId, npages: int, skip=frozenset()):
        versions = yield from self.disk.read(start, npages, sequential=True)
        for offset, version in enumerate(versions):
            pid = start + offset
            if pid in self.frames or pid in skip:
                # Resident already, or a newer SSD copy is being read in
                # parallel: the stale disk copy is discarded (§3.3.3).
                continue
            if self.ssd.contains_newer(pid):
                # The page was dirtied and evicted into the SSD *while*
                # this disk I/O was in flight: the disk copy is stale.
                # Drop it; a later fetch will be served from the SSD.
                continue
            frame = Frame(pid, version, sequential=True)
            self.frames[pid] = frame
            self._touch(frame)
            self.stats.prefetched_pages += 1
            self._tm_prefetched.inc()
            self.ssd.on_read_from_disk(frame)

    def _ssd_single(self, page_id: PageId):
        version = yield from self.ssd.try_read(page_id)
        from_ssd = version is not None
        if not from_ssd:
            # The SSD copy vanished between planning and this read (a
            # concurrent update invalidated it, or replacement evicted
            # it) or the throttle declined an optional read.  Either
            # way the disk holds the newest durable copy: fall back.
            versions = yield from self.disk.read(page_id, 1)
            version = versions[0]
        if page_id in self.frames:
            return
        frame = Frame(page_id, version, sequential=True)
        self.frames[page_id] = frame
        self._touch(frame)
        self.stats.prefetched_pages += 1
        self._tm_prefetched.inc()
        if from_ssd:
            self.stats.ssd_hits += 1
            self._tm_ssd_hit.inc()

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------

    def mark_dirty(self, frame: Frame, txn_id: Optional[int] = None) -> int:
        """Record an update to a pinned frame; returns the redo LSN.

        Bumps the page version, appends the redo record, and invalidates
        any SSD copy (§2.2: "the copy of the page in the SSD is
        invalidated by the SSD manager").
        """
        if not frame.pinned:
            raise ValueError(f"updating unpinned frame {frame!r}")
        frame.version += 1
        frame.page_lsn = self.wal.append(frame.page_id, frame.version,
                                         txn_id=txn_id)
        if not frame.dirty:
            frame.rec_lsn = frame.page_lsn
        frame.dirty = True
        self.ssd.invalidate(frame.page_id)
        return frame.page_lsn

    def unpin(self, frame: Frame) -> None:
        """Release one pin."""
        if frame.pin_count <= 0:
            raise ValueError(f"unpinning unpinned frame {frame!r}")
        frame.pin_count -= 1

    def new_page(self, page_id: PageId, ctx=None):
        """Create a page in the pool without reading it (B+-tree splits).

        The frame starts dirty — this is the "dirty page generated
        on-the-fly" case of §4.2 that TAC never caches.
        """
        if page_id in self.frames or page_id in self._inflight:
            raise ValueError(f"page {page_id} already resident")
        self._reserved += 1
        try:
            yield from self._ensure_free_frames(ctx=ctx)
        finally:
            self._reserved -= 1
        frame = Frame(page_id, version=0, sequential=False)
        frame.pin_count = 1
        frame.dirty = True
        frame.page_lsn = self.wal.append(page_id, 0)
        self.frames[page_id] = frame
        self._touch(frame)
        return frame

    # ------------------------------------------------------------------
    # Replacement (LRU-2, lazy-deletion heap)
    # ------------------------------------------------------------------

    def _touch(self, frame: Frame) -> None:
        frame.record_access(self.env.now)
        self._push(frame)

    def _push(self, frame: Frame) -> None:
        self._stamp += 1
        self._stamps[frame.page_id] = self._stamp
        heapq.heappush(self._lru_heap,
                       (frame.lru2_key(), self._stamp, frame.page_id))

    def _pick_victim(self) -> Optional[Frame]:
        """Pop the LRU-2 victim: oldest penultimate access, unpinned."""
        deferred = []
        victim = None
        while self._lru_heap:
            key, stamp, page_id = heapq.heappop(self._lru_heap)
            frame = self.frames.get(page_id)
            if frame is None or self._stamps.get(page_id) != stamp:
                continue  # stale entry
            if frame.pinned or frame.io_busy is not None:
                deferred.append((key, stamp, page_id))
                continue
            victim = frame
            break
        for entry in deferred:
            heapq.heappush(self._lru_heap, entry)
        return victim

    # ------------------------------------------------------------------
    # Lazy writer (background eviction)
    # ------------------------------------------------------------------

    @property
    def free_frames(self) -> int:
        """Unoccupied, unreserved frame slots."""
        return self.capacity - self.used

    def _kick_lazywriter(self) -> None:
        if (self._lazywriter_wake is not None
                and not self._lazywriter_wake.triggered):
            self._lazywriter_wake.succeed()

    def _lazywriter(self):
        """Keep ``free_frames`` near the high-water mark.

        Evictions are spawned as independent processes (no barrier): one
        slow dirty write-out must not hold back the rest of the cushion.
        ``_evicting`` counts write-outs in flight so the target is not
        overshot.
        """
        while True:
            deficit = self._high_water - self.free_frames - self._evicting
            stuck = False
            while deficit > 0:
                victim = self._pick_victim()
                if victim is None:
                    stuck = self.free_frames + self._evicting <= 0
                    break
                victim.io_busy = self.env.event()  # reserve before spawning
                victim.busy_reason = "eviction"
                self._evicting += 1
                self.env.process(self._evict(victim))
                deficit -= 1
            if stuck:
                # Everything pinned/busy — wait for the world to change.
                yield self.env.timeout(0.0005)
                continue
            self._lazywriter_wake = self.env.event()
            # Eviction pressure has drained: batching designs (LS) flush
            # any partial admission batch now rather than holding the
            # just-spawned evictions hostage to the batch timeout.
            self.ssd.admission_flush_hint()
            yield self._lazywriter_wake

    def _signal_freed(self) -> None:
        event, self._frame_freed = self._frame_freed, self.env.event()
        event.succeed()

    def _ensure_free_frames(self, needed: int = 0, ctx=None):
        """Process step: wait until the caller's (already reserved) claim
        fits within capacity.

        Callers reserve their slots *before* calling this, so the claim
        is part of :attr:`used` already — counting it again would let a
        handful of concurrent prefetches reserve the whole pool and then
        deadlock waiting for the space their own reservations hold.
        ``needed`` covers only *additional* un-reserved slots.

        The lazy writer normally keeps a cushion, so this returns without
        yielding; under pressure it blocks until evictions complete — that
        blocked time is recorded as a ``free_wait`` span under ``ctx``.
        """
        if self.free_frames - needed < self._low_water:
            self._kick_lazywriter()
        if self.used + needed <= self.capacity:
            return
        started = self.env.now
        try:
            while self.used + needed > self.capacity:
                if not self.frames and self._evicting == 0:
                    # Nothing exists to evict: reservations alone overcommit
                    # the pool (a cold-start burst).  Proceed — the overshoot
                    # is bounded by the number of concurrent reads and the
                    # lazy writer reclaims it as frames materialize.
                    return
                self._kick_lazywriter()
                yield self._frame_freed
        finally:
            if self._tracer.enabled:
                self._tracer.complete("free_wait", started, self.env.now,
                                      "bp", "buffer_pool", ctx=ctx)

    def _evict(self, victim: Frame):
        """Process step: write out (per design) and drop one frame."""
        busy = victim.io_busy or self.env.event()
        victim.io_busy = busy
        victim.busy_reason = "eviction"
        tracer = self._tracer
        started = self.env.now
        try:
            if victim.dirty:
                self.stats.evictions_dirty += 1
                self._tm_evict_dirty.inc()
                # WAL rule: log records for the page must be durable before
                # the page goes to the SSD or disk (§2.4).
                yield from self.wal.force(victim.page_lsn, ctx=EVICTION_CTX)
                yield from self.ssd.on_evict_dirty(victim)
                if tracer.enabled:
                    tracer.complete("evict_dirty", started, self.env.now,
                                    "bp", "buffer_pool",
                                    {"page": victim.page_id})
            else:
                self.stats.evictions_clean += 1
                self._tm_evict_clean.inc()
                yield from self.ssd.on_evict_clean(victim)
                if tracer.enabled:
                    tracer.complete("evict_clean", started, self.env.now,
                                    "bp", "buffer_pool",
                                    {"page": victim.page_id})
        finally:
            if self.frames.get(victim.page_id) is victim:
                del self.frames[victim.page_id]
            self._stamps.pop(victim.page_id, None)
            victim.io_busy = None
            victim.busy_reason = None
            busy.succeed()
            self._evicting = max(0, self._evicting - 1)
            self._signal_freed()
            self._kick_lazywriter()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def dirty_frames(self) -> List[Frame]:
        """Snapshot of currently dirty frames (for sharp checkpoints)."""
        return [f for f in self.frames.values() if f.dirty]

    def drop_all(self) -> None:
        """Discard every frame without writing (crash simulation)."""
        self.frames.clear()
        self._stamps.clear()
        self._lru_heap.clear()
        self._inflight.clear()
        self._reserved = 0

    def crash_reset(self) -> None:
        """Hard-crash restart: drop volatile state and restart services.

        Used after :meth:`~repro.sim.environment.Environment.wipe` killed
        every in-flight process — including the lazy writer and any
        eviction write-outs — so the counters and wakeup events they
        owned must be rebuilt and a fresh lazy writer started.
        """
        self.drop_all()
        self.checkpoint_active = False
        self._evicting = 0
        self._lazywriter_wake = None
        self._frame_freed = self.env.event()
        self.env.process(self._lazywriter())
