"""Sharp checkpointing.

SQL Server 2008 R2 takes *sharp* checkpoints: every dirty page in the
main-memory buffer pool is flushed to disk (§3.2).  The design-specific
wrinkles the paper describes are delegated to the SSD manager:

* **LC** must additionally flush every dirty page in the SSD to disk (it
  is the only design whose SSD can hold the newest copy), and stops
  caching new dirty pages while the checkpoint runs;
* **DW** writes checkpointed dirty *random* pages to the SSD as well as
  the disk, filling the SSD faster with useful data.

After all flushes complete the log is truncated up to the checkpoint's
begin LSN, which is exactly why LC's extra flush is a correctness
requirement and not an optimization (see the recovery tests).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim import Environment
from repro.engine.buffer_pool import BufferPool
from repro.engine.page import Frame
from repro.engine.wal import WriteAheadLog
from repro.telemetry import CHECKPOINT_CTX, NULL_TELEMETRY

#: Concurrent page writes per flush wave.
FLUSH_BATCH = 32


class Checkpointer:
    """Periodic sharp checkpoints over a buffer pool and SSD manager."""

    def __init__(self, env: Environment, bp: BufferPool, wal: WriteAheadLog,
                 interval: Optional[float] = None, telemetry=None):
        self.env = env
        self.bp = bp
        self.wal = wal
        #: Virtual seconds between checkpoints (None = never automatic,
        #: the paper's "effectively turned off" TPC-C setting).
        self.interval = interval
        self.last_checkpoint_lsn = -1
        self.checkpoints_started = 0
        self.checkpoints_taken = 0
        self.durations: List[float] = []
        self._running = False
        self.telemetry = telemetry or NULL_TELEMETRY
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        self._tm_checkpoints = registry.counter(
            "checkpoints_total", "Checkpoints completed")
        self._tm_duration = registry.histogram(
            "checkpoint_duration_seconds", "Wall (virtual) checkpoint time")

    def start(self) -> None:
        """Start the periodic checkpoint process (if an interval is set)."""
        if self.interval is not None and not self._running:
            self._running = True
            self.env.process(self._periodic())

    def crash_reset(self) -> None:
        """Hard-crash restart: the periodic process died with the event
        queue; allow :meth:`start` to launch a fresh one.  The durable
        ``last_checkpoint_lsn`` survives — recovery replays from it."""
        self._running = False

    def _periodic(self):
        while True:
            yield self.env.timeout(self.interval)
            yield from self.checkpoint()

    def checkpoint(self):
        """Process step: take one sharp checkpoint."""
        started = self.env.now
        self.checkpoints_started += 1
        begin_lsn = self.wal.tail_lsn
        self.bp.checkpoint_active = True
        dirty_count = 0
        try:
            dirty = self.bp.dirty_frames()
            dirty_count = len(dirty)
            if dirty:
                newest = max(frame.page_lsn for frame in dirty)
                yield from self.wal.force(newest, ctx=CHECKPOINT_CTX)
            for wave_start in range(0, len(dirty), FLUSH_BATCH):
                wave = dirty[wave_start:wave_start + FLUSH_BATCH]
                pending = [
                    self.env.process(self._flush_one(frame))
                    for frame in wave
                ]
                if pending:
                    yield self.env.all_of(pending)
            # Design-specific phase: LC flushes dirty SSD pages here.
            yield from self.bp.ssd.on_checkpoint()
        finally:
            self.bp.checkpoint_active = False
        self.last_checkpoint_lsn = begin_lsn
        self.wal.truncate(begin_lsn)
        self.checkpoints_taken += 1
        self.durations.append(self.env.now - started)
        self._tm_checkpoints.inc()
        self._tm_duration.observe(self.env.now - started)
        if self._tracer.enabled:
            self._tracer.complete("checkpoint", started, self.env.now,
                                  "checkpoint", "checkpoint",
                                  {"dirty_pages": dirty_count})

    def _flush_one(self, frame: Frame):
        """Flush one dirty frame via the design's checkpoint-write hook."""
        if not frame.dirty or self.bp.frames.get(frame.page_id) is not frame:
            return  # evicted or cleaned since the snapshot
        version_written = frame.version
        yield from self.bp.ssd.checkpoint_write(frame)
        # Only clear the dirty bit if no update raced with the write.
        if frame.version == version_written:
            self.bp.mark_clean(frame)


class FuzzyCheckpointer(Checkpointer):
    """Fuzzy checkpoints: record state, flush nothing.

    The alternative policy the paper contrasts with SQL Server's sharp
    checkpoints (§2.3.3): a fuzzy checkpoint writes only a checkpoint
    record carrying the dirty-page table, so the checkpoint itself is
    nearly free — but the log can only be truncated up to the *oldest
    recovery LSN* of any dirty page (in memory **or**, for write-back
    SSD designs, in the SSD), so restart redo has more work to do.  The
    checkpoint-policy benchmark measures exactly this trade: checkpoint
    cost vs restart time, as a function of LC's λ.
    """

    def checkpoint(self):
        """Process step: take one fuzzy checkpoint."""
        started = self.env.now
        self.checkpoints_started += 1
        rec_lsns = [frame.rec_lsn for frame in self.bp.dirty_frames()
                    if frame.rec_lsn >= 0]
        ssd_oldest = self.bp.ssd.oldest_dirty_rec_lsn()
        if ssd_oldest is not None:
            rec_lsns.append(ssd_oldest)
        redo_from = min(rec_lsns) if rec_lsns else self.wal.tail_lsn + 1
        # The checkpoint record itself: one forced log page.
        marker = self.wal.append(page_id=-1, version=0)
        yield from self.wal.force(marker, ctx=CHECKPOINT_CTX)
        self.last_checkpoint_lsn = redo_from - 1
        self.wal.truncate(redo_from - 1)
        self.checkpoints_taken += 1
        self.durations.append(self.env.now - started)
        self._tm_checkpoints.inc()
        self._tm_duration.observe(self.env.now - started)
        if self._tracer.enabled:
            self._tracer.complete("fuzzy_checkpoint", started, self.env.now,
                                  "checkpoint", "checkpoint",
                                  {"redo_from": redo_from})
