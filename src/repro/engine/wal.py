"""Write-ahead log with group commit.

The paper keeps the log on its own dedicated disk, and both the DW and LC
designs "obey the write-ahead logging (WAL) protocol, forcibly flushing the
log records for that page to log storage before writing the page to the
SSD" (§2.4).  This module provides those two operations:

* :meth:`WriteAheadLog.append` — add a redo record, returning its LSN;
* :meth:`WriteAheadLog.force` — a process step that returns once every
  record up to a given LSN is durable, batching concurrent forcers into a
  single sequential write (group commit) so the log disk is not a
  bottleneck, matching the paper's setup.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.faults.errors import (
    RETRY_BASE_DELAY,
    RETRY_LIMIT,
    DeviceDeadError,
    IoFault,
)
from repro.sim import Environment, Event
from repro.storage.hdd import HddArray
from repro.storage.request import IoKind, IORequest
from repro.telemetry import NULL_TELEMETRY

#: Redo records per 8 KB log page (88-byte records, roughly).
RECORDS_PER_LOG_PAGE = 90


class LogRecord(NamedTuple):
    """A physiological redo record: page ``page_id`` reached ``version``.

    A NamedTuple rather than a frozen dataclass: construction is a
    single C call, which matters at one record per page update (the
    frozen-dataclass ``object.__setattr__`` dance showed up in run
    profiles).
    """

    lsn: int
    page_id: int
    version: int
    txn_id: Optional[int] = None


class WriteAheadLog:
    """An append-only redo log on a dedicated log device."""

    def __init__(self, env: Environment, log_device: Optional[HddArray] = None,
                 telemetry=None):
        self.env = env
        self.device = log_device or HddArray(env, ndisks=1, name="log-disk")
        self.records: List[LogRecord] = []
        self.flushed_lsn = -1
        self._next_lsn = 0
        self._truncated = 0  # records dropped by checkpoint truncation
        self._write_head = 0  # log-device page cursor
        self._flusher_running = False
        self._waiters: List[tuple] = []  # (lsn, Event)
        self.telemetry = telemetry or NULL_TELEMETRY
        if self.telemetry.enabled:
            self.device.attach_telemetry(self.telemetry)
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        self._tm_records = registry.counter(
            "wal_records_total", "Redo records appended to the log tail")
        self._tm_records_inc = self._tm_records.inc  # pre-bound: hot path
        self._tm_flushes = registry.counter(
            "wal_flushes_total", "Group-commit flushes of the log tail")
        self._tm_pages_flushed = registry.counter(
            "wal_pages_flushed_total", "Log pages written to the log device")
        self._tm_retries = registry.counter(
            "wal_retries_total",
            "Log flushes retried after transient failures")
        self.flush_retries = 0

    @property
    def tail_lsn(self) -> int:
        """LSN of the most recently appended record (-1 if none)."""
        return self._next_lsn - 1

    def append(self, page_id: int, version: int,
               txn_id: Optional[int] = None) -> int:
        """Append a redo record to the in-memory log tail; returns its LSN."""
        lsn = self._next_lsn
        self._next_lsn = lsn + 1
        self.records.append(LogRecord(lsn, page_id, version, txn_id))
        self._tm_records_inc()
        return lsn

    def records_since(self, lsn: int) -> List[LogRecord]:
        """All durable records with LSN > ``lsn`` (for recovery redo)."""
        return [r for r in self.records if lsn < r.lsn <= self.flushed_lsn]

    def truncate(self, lsn: int) -> None:
        """Discard records with LSN <= ``lsn`` (checkpoint completed)."""
        keep = [r for r in self.records if r.lsn > lsn]
        self._truncated += len(self.records) - len(keep)
        self.records = keep

    def force(self, lsn: int, ctx=None):
        """Process step: return once records up to ``lsn`` are durable.

        Concurrent forcers are batched: whoever arrives while a flush is in
        flight simply waits for a later flush that covers their LSN.  The
        waiter's time is recorded as a ``wal_wait`` span under ``ctx`` —
        the group-commit flush I/O itself belongs to the flusher, not to
        any one waiter.
        """
        if lsn <= self.flushed_lsn:
            return
        done = Event(self.env)
        self._waiters.append((lsn, done))
        if not self._flusher_running:
            self._flusher_running = True
            self.env.process(self._flush_loop())
        started = self.env.now
        yield done
        if self._tracer.enabled:
            self._tracer.complete("wal_wait", started, self.env.now,
                                  "wal", "wal", ctx=ctx)

    def _flush_loop(self):
        while self._waiters:
            target = self.tail_lsn  # flush everything appended so far
            pending = target - self.flushed_lsn
            npages = max(1, -(-pending // RECORDS_PER_LOG_PAGE))
            request = IORequest(IoKind.SEQUENTIAL_WRITE, self._write_head,
                                npages)
            self._write_head += npages
            flush_started = self.env.now
            yield from self._flush_with_retry(request)
            self._tm_flushes.inc()
            self._tm_pages_flushed.inc(npages)
            if self._tracer.enabled:
                self._tracer.complete("flush", flush_started, self.env.now,
                                      "wal", "wal",
                                      {"pages": npages, "records": pending})
            self.flushed_lsn = target
            still_waiting = []
            for lsn, event in self._waiters:
                if lsn <= self.flushed_lsn:
                    event.succeed()
                else:
                    still_waiting.append((lsn, event))
            self._waiters = still_waiting
        self._flusher_running = False

    def _flush_with_retry(self, request: IORequest):
        """Process step: one log write with bounded retry + backoff.

        A dead log device (or an exhausted retry budget) re-raises: with
        the log gone no transaction can commit durably, so the flusher —
        and every forcer waiting on it — must fail loudly rather than
        pretend records became durable.
        """
        delay = RETRY_BASE_DELAY
        attempt = 0
        while True:
            try:
                yield self.device.submit(request)
                return
            except DeviceDeadError:
                raise
            except IoFault:
                self.flush_retries += 1
                self._tm_retries.inc()
                if self._tracer.enabled:
                    self._tracer.instant(
                        "io_retry", "fault", "faults",
                        {"device": self.device.name, "attempt": attempt + 1})
                if attempt >= RETRY_LIMIT:
                    raise
                attempt += 1
                yield self.env.timeout(delay)
                delay *= 2

    def crash_reset(self) -> None:
        """Volatile flush state is lost in a hard crash.

        Durable state — ``records``/``flushed_lsn``/the write head —
        survives; the waiter list and the flusher flag belong to wiped
        processes and must be cleared so post-recovery forces start a
        fresh flusher.
        """
        self._waiters = []
        self._flusher_running = False
