"""A paged B+-tree index.

Lookups walk root→leaf through the buffer pool, so a cold lookup costs one
random I/O per uncached level — the "non-clustered index lookup" access
pattern that the SSD admission policy is designed to capture.  Inserts can
split leaves, creating pages "on the fly" that were never read from disk —
the case (§4.2) that TAC fails to cache but DW/LC handle naturally.

Node *contents* (keys and fan-out pointers) live in a side map owned by
the tree; the buffer pool governs page residency, I/O, and dirtiness.
This mirrors how the reproduction models page payloads as versions.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

from repro.engine.buffer_pool import BufferPool


class _Node:
    """One B+-tree node, stored in page ``page_id``."""

    __slots__ = ("page_id", "keys", "children", "values", "next_leaf", "parent")

    def __init__(self, page_id: int, leaf: bool):
        self.page_id = page_id
        self.keys: List[int] = []
        self.children: Optional[List[int]] = None if leaf else []
        self.values: Optional[List[int]] = [] if leaf else None
        self.next_leaf: Optional[int] = None
        self.parent: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BPlusTree:
    """A B+-tree over integer keys with page-granular I/O accounting."""

    def __init__(self, name: str, allocator, fanout: int = 64,
                 leaf_capacity: int = None):
        if fanout < 4:
            raise ValueError(f"fanout must be >= 4, got {fanout}")
        self.name = name
        self.fanout = fanout
        #: Keys per leaf page.  Defaults to fanout-1 (a classic B+-tree).
        #: The workloads use page-granular keys (one key per data page)
        #: and set this to 1 so that N keys occupy N leaf pages.
        self.leaf_capacity = fanout - 1 if leaf_capacity is None else leaf_capacity
        if self.leaf_capacity < 1:
            raise ValueError(
                f"leaf_capacity must be >= 1, got {self.leaf_capacity}")
        self._allocate = allocator  # callable: npages -> first page id
        self.nodes: Dict[int, _Node] = {}
        self.root_page: Optional[int] = None
        self.height = 0
        self.splits = 0

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------

    def bulk_load(self, keys: Sequence[int]) -> None:
        """Build the tree bottom-up from sorted unique ``keys``.

        Leaves are allocated contiguously (so leaf ranges are sequential
        on disk, as a clustered rebuild would leave them), then each upper
        level contiguously above.
        """
        keys = list(keys)
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("bulk_load requires strictly increasing keys")
        per_leaf = self.leaf_capacity
        nleaves = max(1, -(-len(keys) // per_leaf))
        first_leaf = self._allocate(nleaves)
        level: List[_Node] = []
        for i in range(nleaves):
            node = _Node(first_leaf + i, leaf=True)
            chunk = keys[i * per_leaf:(i + 1) * per_leaf]
            node.keys = list(chunk)
            node.values = list(chunk)
            if i + 1 < nleaves:
                node.next_leaf = first_leaf + i + 1
            self.nodes[node.page_id] = node
            level.append(node)
        self.height = 1
        # Separator keys must be subtree *minima*, not a child's first
        # separator, so thread each node's minimum key up the build.
        minima = [node.keys[0] for node in level]
        while len(level) > 1:
            per_node = self.fanout
            nnodes = -(-len(level) // per_node)
            first = self._allocate(nnodes)
            upper: List[_Node] = []
            upper_minima: List[int] = []
            for i in range(nnodes):
                node = _Node(first + i, leaf=False)
                group = level[i * per_node:(i + 1) * per_node]
                group_minima = minima[i * per_node:(i + 1) * per_node]
                node.children = [child.page_id for child in group]
                node.keys = group_minima[1:]
                for child in group:
                    child.parent = node.page_id
                self.nodes[node.page_id] = node
                upper.append(node)
                upper_minima.append(group_minima[0])
            level = upper
            minima = upper_minima
            self.height += 1
        self.root_page = level[0].page_id

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def _descend(self, node: _Node, key: int) -> int:
        index = bisect.bisect_right(node.keys, key)
        return node.children[index]

    def lookup(self, bp: BufferPool, key: int, ctx=None):
        """Process step: point lookup; returns the value or None."""
        frame, leaf = yield from self._fetch_leaf_frame(bp, key, ctx=ctx)
        frame.pin_count -= 1
        keys = leaf.keys
        index = bisect.bisect_left(keys, key)
        found = index < len(keys) and keys[index] == key
        return leaf.values[index] if found else None

    def update(self, bp: BufferPool, key: int, txn_id: Optional[int] = None,
               ctx=None):
        """Process step: in-place update of the record for ``key``.

        Dirties the leaf page; returns True if the key existed.
        """
        frame, leaf = yield from self._fetch_leaf_frame(bp, key, ctx=ctx)
        index = bisect.bisect_left(leaf.keys, key)
        found = index < len(leaf.keys) and leaf.keys[index] == key
        if found:
            leaf.values[index] += 1
            bp.mark_dirty(frame, txn_id=txn_id)
        bp.unpin(frame)
        return found

    def insert(self, bp: BufferPool, key: int, txn_id: Optional[int] = None,
               ctx=None):
        """Process step: insert ``key`` (idempotent), splitting if needed."""
        frame, leaf = yield from self._fetch_leaf_frame(bp, key, ctx=ctx)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            bp.unpin(frame)
            return False
        leaf.keys.insert(index, key)
        leaf.values.insert(index, key)
        bp.mark_dirty(frame, txn_id=txn_id)
        bp.unpin(frame)
        if len(leaf.keys) > self.leaf_capacity:
            yield from self._split(bp, leaf, txn_id, ctx=ctx)
        return True

    def _fetch_leaf_frame(self, bp: BufferPool, key: int, ctx=None):
        # The descent is the single hottest loop in an OLTP run: the
        # inner-node pins are pure hits after warm-up, so the pin-hit
        # fast path (the body of ``BufferPool.pin_hit``) is inlined per
        # level and the ``fetch`` generator taken only on a miss or a
        # busy frame.  The inline unpin releases a pin this loop itself
        # took a few lines up (validation would be tautological).
        pid = self.root_page
        nodes = self.nodes
        bisect_right = bisect.bisect_right
        if bp._latch_s:
            # Latch service time is modeled: every pin must queue in
            # virtual time, so each level takes the fetch generator.
            while True:
                frame = yield from bp.fetch(pid, ctx=ctx)
                node = nodes[pid]
                if node.is_leaf:
                    return frame, node
                next_pid = node.children[bisect_right(node.keys, key)]
                frame.pin_count -= 1
                pid = next_pid
        env = bp.env
        frames = bp.frames
        stats = bp.stats
        hit_inc = bp._tm_hit_inc
        while True:
            frame = frames.get(pid)
            if frame is not None and frame.io_busy is None:
                frame.pin_count += 1
                frame.prev_access = frame.last_access
                frame.last_access = env._now
                bp._stamp = stamp = bp._stamp + 1
                frame.lru_stamp = stamp
                stats.hits += 1
                hit_inc()
            else:
                frame = yield from bp.fetch(pid, ctx=ctx)
            node = nodes[pid]
            if node.is_leaf:
                return frame, node
            next_pid = node.children[bisect_right(node.keys, key)]
            frame.pin_count -= 1
            pid = next_pid

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------

    def _split(self, bp: BufferPool, node: _Node, txn_id: Optional[int],
               ctx=None):
        """Process step: split an overfull node, recursing up the tree."""
        self.splits += 1
        new_pid = self._allocate(1)
        sibling = _Node(new_pid, leaf=node.is_leaf)
        mid = len(node.keys) // 2
        if node.is_leaf:
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next_leaf, node.next_leaf = node.next_leaf, new_pid
            separator = sibling.keys[0]
        else:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1:]
            sibling.children = node.children[mid + 1:]
            node.keys = node.keys[:mid]
            node.children = node.children[:mid + 1]
            for child_pid in sibling.children:
                self.nodes[child_pid].parent = new_pid
        sibling.parent = node.parent
        self.nodes[new_pid] = sibling

        # The new page is created in memory, dirty, never read from disk.
        new_frame = yield from bp.new_page(new_pid, ctx=ctx)
        bp.unpin(new_frame)

        if node.parent is None:
            root_pid = self._allocate(1)
            root = _Node(root_pid, leaf=False)
            root.keys = [separator]
            root.children = [node.page_id, new_pid]
            node.parent = sibling.parent = root_pid
            self.nodes[root_pid] = root
            self.root_page = root_pid
            self.height += 1
            root_frame = yield from bp.new_page(root_pid, ctx=ctx)
            bp.unpin(root_frame)
            return

        parent = self.nodes[node.parent]
        frame = yield from bp.fetch(parent.page_id, ctx=ctx)
        index = bisect.bisect_right(parent.keys, separator)
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, new_pid)
        bp.mark_dirty(frame, txn_id=txn_id)
        bp.unpin(frame)
        if len(parent.keys) > self.fanout - 1:
            yield from self._split(bp, parent, txn_id, ctx=ctx)
