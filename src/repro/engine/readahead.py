"""Read-ahead and random/sequential classification.

The paper's SSD admission policy rests on telling randomly read pages from
sequentially read ones, and does it by piggybacking on the DBMS read-ahead
mechanism (§2.2): a page is "sequential" iff it entered the pool via a
read-ahead request.  :class:`ReadAhead` implements that mechanism for heap
scans — after a trigger number of adjacent fetches it prefetches fixed-size
multi-page batches.

The alternative classifier the paper measures against (Narayanan et al.:
"a page is sequential if it is within 64 pages of the preceding read") is
:class:`WindowClassifier`; the paper found it much less accurate (51% vs
82% on a sequential-read query), and the ablation benchmark reproduces
that comparison.
"""

from __future__ import annotations

from typing import Optional


class ReadAhead:
    """Read-ahead policy parameters for sequential scans.

    ``batch_pages`` is the prefetch unit (SQL Server uses up to 512 KB = 64
    pages; scaled configurations use smaller batches to match their smaller
    tables).  ``trigger_pages`` is how many adjacent single-page reads a
    scan performs before read-ahead engages — those leading pages are
    fetched randomly and therefore *misclassified*, which is why even the
    read-ahead signal is imperfect (82% in the paper, not 100%).
    """

    def __init__(self, batch_pages: int = 8, trigger_pages: int = 2,
                 depth: int = 4):
        if batch_pages < 1 or trigger_pages < 0:
            raise ValueError("batch_pages >= 1 and trigger_pages >= 0 required")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.batch_pages = batch_pages
        self.trigger_pages = trigger_pages
        #: Prefetch batches kept outstanding ahead of the scan position —
        #: real read-ahead pipelines I/O so a striped array streams at
        #: full aggregate bandwidth instead of one drive at a time.
        self.depth = depth


class WindowClassifier:
    """The 64-page-window heuristic of Narayanan et al. (EuroSys 2009).

    Classifies each *disk read* as sequential if its address lies within
    ``window`` pages of the preceding read's address.  Interleaved random
    lookups from concurrent transactions break up real scans (and adjacent
    random reads get misread as sequential), which is why the paper found
    it far less accurate than the read-ahead signal.
    """

    def __init__(self, window: int = 64):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._last_address: Optional[int] = None
        # Confusion counts against ground truth, for the ablation bench.
        self.correct = 0
        self.total = 0

    def classify(self, address: int, truth_sequential: Optional[bool] = None) -> bool:
        """Classify a read at ``address``; optionally score vs ground truth."""
        last, self._last_address = self._last_address, address
        sequential = last is not None and abs(address - last) <= self.window
        if truth_sequential is not None:
            self.total += 1
            if sequential == truth_sequential:
                self.correct += 1
        return sequential

    @property
    def accuracy(self) -> float:
        """Fraction of classified reads matching ground truth."""
        return self.correct / self.total if self.total else 0.0


class ReadAheadAccuracy:
    """Scores the read-ahead classification itself against ground truth.

    A scan's trigger pages are fetched as random reads even though they are
    truly sequential; random lookups are always classified correctly.  The
    paper reports 82% accuracy for this signal.
    """

    def __init__(self):
        self.correct = 0
        self.total = 0

    def score(self, classified_sequential: bool, truth_sequential: bool) -> None:
        """Score one classification against ground truth."""
        self.total += 1
        if classified_sequential == truth_sequential:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0
