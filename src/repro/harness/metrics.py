"""Run-time metric sampling (time series for Figures 6–9) and
transaction-latency tracking."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Sample:
    """One periodic snapshot of system state."""

    time: float
    ssd_used: int
    ssd_dirty: int
    ssd_dirty_fraction: float
    bp_dirty: int
    disk_pending: int
    ssd_pending: int


class Sampler:
    """Samples SSD/buffer-pool occupancy every ``interval`` virtual seconds.

    Feeds the analyses behind Figure 6 (when does LC cross λ?), Figure 7
    (dirty-fraction trajectories per λ), and the ramp-up measurements
    (when does the SSD fill?).
    """

    def __init__(self, system, interval: float = 1.0):
        self.system = system
        self.interval = interval
        self.samples: List[Sample] = []
        self._started = False

    def start(self) -> None:
        """Start the periodic sampling process (idempotent)."""
        if not self._started:
            self._started = True
            self.system.env.process(self._loop())

    def _loop(self):
        while True:
            self.samples.append(Sample(
                time=self.system.env.now,
                ssd_used=self.system.ssd_manager.used_frames,
                ssd_dirty=self.system.ssd_manager.dirty_frames,
                ssd_dirty_fraction=self.system.ssd_manager.dirty_fraction,
                bp_dirty=self.system.bp.dirty_count,
                disk_pending=self.system.data_device.pending,
                ssd_pending=self.system.ssd_device.pending,
            ))
            yield self.system.env.timeout(self.interval)

    def fill_time(self, threshold_frames: int) -> float:
        """First sample time at which the SSD held >= ``threshold_frames``
        pages (inf if never) — the ramp-up measurement."""
        for sample in self.samples:
            if sample.ssd_used >= threshold_frames:
                return sample.time
        return float("inf")

    def dirty_cross_time(self, threshold_frames: int) -> float:
        """First sample time at which the SSD's dirty page count exceeded
        ``threshold_frames`` (inf if never) — LC's λ-crossing."""
        for sample in self.samples:
            if sample.ssd_dirty > threshold_frames:
                return sample.time
        return float("inf")


class LatencyTracker:
    """Per-transaction-type latency distributions (virtual seconds).

    Latencies are what closed-loop throughput is made of, and where the
    designs differ mechanically (a miss served by the SSD is ~12× faster
    than one served by the disks; TAC's post-read SSD writes show up as
    latch waits inside other transactions' latencies).
    """

    def __init__(self):
        self._samples: Dict[str, List[float]] = {}

    def record(self, txn_type: str, latency: float) -> None:
        """Record one completed transaction's latency."""
        self._samples.setdefault(txn_type, []).append(latency)

    def count(self, txn_type: str = None) -> int:
        """Number of recorded transactions (optionally one type)."""
        if txn_type is not None:
            return len(self._samples.get(txn_type, ()))
        return sum(len(v) for v in self._samples.values())

    def _all(self, txn_type: str = None) -> List[float]:
        if txn_type is not None:
            return sorted(self._samples.get(txn_type, ()))
        merged: List[float] = []
        for values in self._samples.values():
            merged.extend(values)
        return sorted(merged)

    def percentile(self, q: float, txn_type: str = None) -> float:
        """The q-th percentile (q in [0, 100]) latency."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        values = self._all(txn_type)
        if not values:
            return float("nan")
        rank = (len(values) - 1) * q / 100.0
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return values[low]
        weight = rank - low
        return values[low] * (1 - weight) + values[high] * weight

    def mean(self, txn_type: str = None) -> float:
        """Mean latency (NaN when empty)."""
        values = self._all(txn_type)
        return sum(values) / len(values) if values else float("nan")

    def summary(self, txn_type: str = None) -> Dict[str, float]:
        """mean / p50 / p95 / p99 in one dict."""
        return {
            "mean": self.mean(txn_type),
            "p50": self.percentile(50, txn_type),
            "p95": self.percentile(95, txn_type),
            "p99": self.percentile(99, txn_type),
        }
