"""Run-time metric sampling (time series for Figures 6–9) and
transaction-latency tracking.

Both are built over :mod:`repro.telemetry`: the sampled fields are
declared once in :data:`SAMPLE_FIELDS` and published through the
system's telemetry (registry gauges are registered by the components
themselves; each sampler tick additionally emits Chrome counter events
so the occupancy/queue-depth series show up in a trace viewer), and
:class:`LatencyTracker` shares the percentile math with
:class:`repro.telemetry.Histogram`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry import NULL_TELEMETRY, percentile_of


@dataclass
class Sample:
    """One periodic snapshot of system state.

    The ``bp_*`` request counters are cumulative; consumers (the
    ``repro analyze`` time series) difference adjacent samples to get
    windowed hit ratios.
    """

    time: float
    ssd_used: int
    ssd_dirty: int
    ssd_dirty_fraction: float
    bp_dirty: int
    disk_pending: int
    ssd_pending: int
    bp_hits: int = 0
    bp_misses: int = 0
    bp_ssd_hits: int = 0
    # Cumulative FTL counters (0 when the SSD runs the black-box model).
    ftl_host_writes: int = 0
    ftl_nand_writes: int = 0
    ftl_erases: int = 0


def _ftl_stat(system, field: str) -> int:
    ftl = getattr(system.ssd_device, "ftl", None)
    return getattr(ftl.stats, field) if ftl is not None else 0


#: The sampled fields, declared once: (name, getter) pairs shared by the
#: :class:`Sample` rows and the trace counter events.
SAMPLE_FIELDS = (
    ("ssd_used", lambda s: s.ssd_manager.used_frames),
    ("ssd_dirty", lambda s: s.ssd_manager.dirty_frames),
    ("ssd_dirty_fraction", lambda s: s.ssd_manager.dirty_fraction),
    ("bp_dirty", lambda s: s.bp.dirty_count),
    ("disk_pending", lambda s: s.data_device.pending),
    ("ssd_pending", lambda s: s.ssd_device.pending),
    ("bp_hits", lambda s: s.bp.stats.hits),
    ("bp_misses", lambda s: s.bp.stats.misses),
    ("bp_ssd_hits", lambda s: s.bp.stats.ssd_hits),
    ("ftl_host_writes", lambda s: _ftl_stat(s, "host_writes")),
    ("ftl_nand_writes", lambda s: _ftl_stat(s, "nand_writes")),
    ("ftl_erases", lambda s: _ftl_stat(s, "erases")),
)


class Sampler:
    """Samples SSD/buffer-pool occupancy every ``interval`` virtual seconds.

    Feeds the analyses behind Figure 6 (when does LC cross λ?), Figure 7
    (dirty-fraction trajectories per λ), and the ramp-up measurements
    (when does the SSD fill?).

    ``max_samples`` bounds memory on long simulations; :meth:`stop` ends
    the sampling process (it would otherwise run for the lifetime of the
    environment).  When the system carries an enabled telemetry sink,
    every tick also emits Chrome counter events on the ``sampler`` track.
    """

    def __init__(self, system, interval: float = 1.0,
                 max_samples: Optional[int] = None):
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.system = system
        self.interval = interval
        self.max_samples = max_samples
        self.samples: List[Sample] = []
        self._started = False
        self._stopped = False

    def start(self) -> None:
        """Start the periodic sampling process (idempotent)."""
        if not self._started:
            self._started = True
            self.system.env.process(self._loop())

    def stop(self) -> None:
        """Stop sampling; takes effect at the next tick."""
        self._stopped = True

    @property
    def running(self) -> bool:
        """Whether the sampling process is (still) collecting."""
        return self._started and not self._stopped and (
            self.max_samples is None or len(self.samples) < self.max_samples)

    def _loop(self):
        system = self.system
        tracer = getattr(system, "telemetry", NULL_TELEMETRY).tracer
        while not self._stopped:
            if (self.max_samples is not None
                    and len(self.samples) >= self.max_samples):
                break
            values = {name: getter(system) for name, getter in SAMPLE_FIELDS}
            self.samples.append(Sample(time=system.env.now, **values))
            if tracer.enabled:
                tracer.counter("ssd_frames",
                               {"used": values["ssd_used"],
                                "dirty": values["ssd_dirty"]},
                               track="sampler")
                tracer.counter("ssd_dirty_fraction",
                               {"fraction": values["ssd_dirty_fraction"]},
                               track="sampler")
                tracer.counter("pending_ios",
                               {"disk": values["disk_pending"],
                                "ssd": values["ssd_pending"]},
                               track="sampler")
                tracer.counter("bp_dirty", {"frames": values["bp_dirty"]},
                               track="sampler")
                tracer.counter("bp_requests",
                               {"hits": values["bp_hits"],
                                "misses": values["bp_misses"],
                                "ssd_hits": values["bp_ssd_hits"]},
                               track="sampler")
                # Emitted only when the FTL model is active so that
                # black-box traces stay byte-identical to before.
                if getattr(system.ssd_device, "ftl", None) is not None:
                    tracer.counter("ftl",
                                   {"host_writes": values["ftl_host_writes"],
                                    "nand_writes": values["ftl_nand_writes"],
                                    "erases": values["ftl_erases"]},
                                   track="sampler")
            yield system.env.timeout(self.interval)

    def fill_time(self, threshold_frames: int) -> float:
        """First sample time at which the SSD held >= ``threshold_frames``
        pages (inf if never) — the ramp-up measurement."""
        for sample in self.samples:
            if sample.ssd_used >= threshold_frames:
                return sample.time
        return float("inf")

    def dirty_cross_time(self, threshold_frames: int) -> float:
        """First sample time at which the SSD's dirty page count exceeded
        ``threshold_frames`` (inf if never) — LC's λ-crossing."""
        for sample in self.samples:
            if sample.ssd_dirty > threshold_frames:
                return sample.time
        return float("inf")


@dataclass
class TenantStats:
    """Per-tenant accounting for one open-loop traffic run.

    ``latencies`` records *sojourn* time (queue wait + service) per
    transaction type — the latency a logical user of that tenant sees —
    while ``queue_waits`` isolates the admission-queue component so
    overload shows up separately from slow service.
    """

    name: str
    #: Arrivals the tenant's generator produced.
    offered: int = 0
    #: Arrivals dropped because the admission queue was full.
    shed: int = 0
    #: Transactions finished within the measurement window.
    completed: int = 0
    latencies: "LatencyTracker" = field(
        default_factory=lambda: LatencyTracker())
    queue_waits: "LatencyTracker" = field(
        default_factory=lambda: LatencyTracker())

    @property
    def admitted(self) -> int:
        """Arrivals that made it into the queue."""
        return self.offered - self.shed

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered arrivals that were shed (0 when idle)."""
        return self.shed / self.offered if self.offered else 0.0

    def throughput(self, duration: float) -> float:
        """Completed transactions per second over ``duration``."""
        return self.completed / duration if duration > 0 else 0.0


class LatencyTracker:
    """Per-transaction-type latency distributions (virtual seconds).

    Latencies are what closed-loop throughput is made of, and where the
    designs differ mechanically (a miss served by the SSD is ~12× faster
    than one served by the disks; TAC's post-read SSD writes show up as
    latch waits inside other transactions' latencies).

    Sorted views are cached per type (plus the merged view) and
    invalidated by :meth:`record`, so a :meth:`summary` sorts once, not
    four times.
    """

    def __init__(self):
        self._samples: Dict[str, List[float]] = {}
        #: Sorted-sample cache, keyed by txn_type (None = merged view).
        self._sorted: Dict[Optional[str], List[float]] = {}

    def record(self, txn_type: str, latency: float) -> None:
        """Record one completed transaction's latency."""
        self._samples.setdefault(txn_type, []).append(latency)
        self._sorted.pop(txn_type, None)
        self._sorted.pop(None, None)

    def count(self, txn_type: str = None) -> int:
        """Number of recorded transactions (optionally one type)."""
        if txn_type is not None:
            return len(self._samples.get(txn_type, ()))
        return sum(len(v) for v in self._samples.values())

    def _all(self, txn_type: str = None) -> List[float]:
        cached = self._sorted.get(txn_type)
        if cached is not None:
            return cached
        if txn_type is not None:
            values = sorted(self._samples.get(txn_type, ()))
        else:
            merged: List[float] = []
            for per_type in self._samples.values():
                merged.extend(per_type)
            merged.sort()
            values = merged
        self._sorted[txn_type] = values
        return values

    def percentile(self, q: float, txn_type: str = None) -> float:
        """The q-th percentile (q in [0, 100]) latency."""
        return percentile_of(self._all(txn_type), q)

    def mean(self, txn_type: str = None) -> float:
        """Mean latency (NaN when empty)."""
        values = self._all(txn_type)
        return sum(values) / len(values) if values else float("nan")

    def summary(self, txn_type: str = None) -> Dict[str, float]:
        """mean / p50 / p95 / p99 in one dict."""
        return {
            "mean": self.mean(txn_type),
            "p50": self.percentile(50, txn_type),
            "p95": self.percentile(95, txn_type),
            "p99": self.percentile(99, txn_type),
        }
