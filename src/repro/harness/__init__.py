"""Experiment harness: system assembly, workload driving, and the
per-table/figure experiment registry that regenerates the paper's
evaluation section."""

from repro.harness.system import System, SystemConfig
from repro.harness.runner import (OpenLoopRunner, RunResult,
                                 WorkloadRunner)
from repro.harness.metrics import Sampler, TenantStats
from repro.harness.crashpoints import (
    CrashPointOutcome,
    CrashSweepConfig,
    CrashSweepResult,
    crash_point_sweep,
    format_sweep_table,
)
from repro.harness.experiments import (
    SCALE_PROFILES,
    ScaleProfile,
    run_oltp_experiment,
    run_tpch_experiment,
    run_traffic_experiment,
)
from repro.harness.report import format_series, format_table

__all__ = [
    "CrashPointOutcome",
    "CrashSweepConfig",
    "CrashSweepResult",
    "OpenLoopRunner",
    "RunResult",
    "crash_point_sweep",
    "format_sweep_table",
    "SCALE_PROFILES",
    "Sampler",
    "ScaleProfile",
    "System",
    "TenantStats",
    "SystemConfig",
    "WorkloadRunner",
    "format_series",
    "format_table",
    "run_oltp_experiment",
    "run_tpch_experiment",
    "run_traffic_experiment",
]
