"""Crash-point sweep: hard-crash the system at random instants, recover,
and machine-check the paper's durability arguments.

Each sweep point builds a fresh small :class:`System` (one design × one
checkpoint policy), drives it with closed-loop update clients that track
a *committed oracle* — for every page, the newest version whose log
record was durably forced before the crash — then cuts power at a
seeded-random virtual time (:meth:`System.crash`), runs restart recovery,
and asserts:

* no committed page version was lost
  (:func:`~repro.engine.recovery.simulate_crash_and_recover` raises
  :class:`~repro.engine.recovery.RecoveryError` otherwise);
* the Figure 3 page-copy invariants hold after recovery
  (:meth:`~repro.core.ssd_manager.SsdManagerBase.check_invariants`);
* the system still makes progress (a short post-recovery churn phase).

Because the crash time is drawn uniformly over a window that spans
periodic checkpoints, the sweep lands crashes mid-checkpoint, mid
clean-batch, mid-eviction, and mid-WAL-flush — the states where the §3.2
sharp-checkpoint argument (and its fuzzy-checkpoint counterpart) has to
carry the proof.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import SsdDesignConfig
from repro.engine.recovery import simulate_crash_and_recover
from repro.harness.system import System, SystemConfig


@dataclass
class CrashSweepConfig:
    """Shape of one crash-point sweep."""

    designs: Sequence[str] = ("CW", "DW", "LC", "TAC", "LS")
    policies: Sequence[str] = ("sharp", "fuzzy")
    #: Crash points per design × policy combination.
    points: int = 5
    seed: int = 20110612
    #: Crash times are drawn from [0.2 * duration, duration].
    duration: float = 8.0
    checkpoint_interval: float = 1.0
    db_pages: int = 400
    bp_pages: int = 80
    ssd_frames: int = 560
    nworkers: int = 8
    #: Post-recovery update operations per churn client (progress check).
    post_ops: int = 40


@dataclass
class CrashPointOutcome:
    """Result of one crash point."""

    design: str
    policy: str
    crash_at: float
    ok: bool = True
    pages_redone: int = 0
    committed_pages: int = 0
    error: Optional[str] = None


@dataclass
class CrashSweepResult:
    """All outcomes of a sweep, with summary helpers."""

    outcomes: List[CrashPointOutcome] = field(default_factory=list)

    @property
    def failures(self) -> List[CrashPointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures


def _update_client(env, system: System, rng: random.Random,
                   committed: Dict[int, int], npages: int,
                   ops: Optional[int] = None):
    """Closed-loop client: fetch, sometimes update+commit, repeat.

    A page version enters ``committed`` only after :meth:`WAL.force`
    returns for its redo record — exactly the set of versions a crash at
    any later instant must preserve.  ``ops`` bounds the loop (the
    post-recovery churn phase must terminate so the harness can quiesce
    before checking invariants); None runs until the crash cuts it off.
    """
    bp, wal = system.bp, system.wal
    done = 0
    while ops is None or done < ops:
        done += 1
        page = rng.randrange(npages)
        frame = yield from bp.fetch(page)
        if rng.random() < 0.6:
            lsn = bp.mark_dirty(frame)
            version = frame.version
            bp.unpin(frame)
            yield from wal.force(lsn)
            if committed.get(page, -1) < version:
                committed[page] = version
        else:
            bp.unpin(frame)
        yield env.timeout(rng.uniform(0.0, 0.01))


def run_crash_point(design: str, policy: str, crash_at: float,
                    cfg: CrashSweepConfig,
                    seed: str) -> CrashPointOutcome:
    """One crash point: build, run, crash, recover, verify."""
    outcome = CrashPointOutcome(design=design, policy=policy,
                                crash_at=crash_at)
    system = System(SystemConfig(
        design=design,
        db_pages=cfg.db_pages,
        bp_pages=cfg.bp_pages,
        ssd=SsdDesignConfig(ssd_frames=cfg.ssd_frames),
        checkpoint_interval=cfg.checkpoint_interval,
        checkpoint_policy=policy,
        slack_pages=64,
    ))
    env = system.env
    system.start_services()
    committed: Dict[int, int] = {}
    for worker in range(cfg.nworkers):
        # String seeds hash deterministically (SHA-512), unlike hash().
        rng = random.Random(f"{seed}:client:{worker}")
        env.process(_update_client(env, system, rng, committed,
                                   cfg.db_pages))
    try:
        env.run(until=crash_at)
        outcome.committed_pages = len(committed)
        system.crash()
        done = env.process(
            simulate_crash_and_recover(env, system, committed=committed))
        outcome.pages_redone = env.run(done)
        system.ssd_manager.check_invariants()
        # Progress check: the restarted system must still serve updates.
        churn: Dict[int, int] = {}
        clients = [
            env.process(_update_client(
                env, system, random.Random(f"{seed}:churn:{worker}"),
                churn, cfg.db_pages, ops=cfg.post_ops))
            for worker in range(4)
        ]
        env.run(env.all_of(clients))
        if not churn:
            raise RuntimeError("no post-recovery progress")
        # Quiesce before re-checking: the Figure 3 relationships are
        # stated over settled page copies — a DW dual-write or TAC
        # revalidation caught with its SSD record installed but its
        # disk write still in flight is a legal transient, not a bug.
        env.run(until=env.now + 1.0)
        system.ssd_manager.check_invariants()
    except Exception as exc:  # noqa: BLE001 - the sweep reports, not raises
        outcome.ok = False
        outcome.error = f"{type(exc).__name__}: {exc}"
    return outcome


def crash_point_sweep(cfg: Optional[CrashSweepConfig] = None
                      ) -> CrashSweepResult:
    """Run the full designs × policies × points grid."""
    cfg = cfg or CrashSweepConfig()
    result = CrashSweepResult()
    for design in cfg.designs:
        for policy in cfg.policies:
            times = random.Random(f"{cfg.seed}:{design}:{policy}:times")
            for point in range(cfg.points):
                crash_at = times.uniform(0.2 * cfg.duration, cfg.duration)
                result.outcomes.append(run_crash_point(
                    design, policy, crash_at, cfg,
                    seed=f"{cfg.seed}:{design}:{policy}:{point}"))
    return result


def format_sweep_table(result: CrashSweepResult) -> str:
    """Fixed-width summary: one row per design × policy."""
    rows: Dict[Tuple[str, str], List[CrashPointOutcome]] = {}
    for outcome in result.outcomes:
        rows.setdefault((outcome.design, outcome.policy), []).append(outcome)
    lines = [f"{'design':<8} {'policy':<7} {'points':>6} {'redone':>7} "
             f"{'failed':>6}"]
    for (design, policy), outcomes in sorted(rows.items()):
        redone = sum(o.pages_redone for o in outcomes)
        failed = sum(1 for o in outcomes if not o.ok)
        lines.append(f"{design:<8} {policy:<7} {len(outcomes):>6} "
                     f"{redone:>7} {failed:>6}")
    for outcome in result.failures:
        lines.append(f"FAIL {outcome.design}/{outcome.policy} "
                     f"@t={outcome.crash_at:.3f}: {outcome.error}")
    return "\n".join(lines)
