"""System assembly: devices + engine + one SSD design = a runnable DBMS."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim import KERNELS, Environment, make_environment
from repro.storage import HddArray, Ssd
from repro.storage.ftl import FtlConfig
from repro.core import DESIGNS, SsdDesignConfig
from repro.engine import (
    BufferPool,
    Checkpointer,
    Database,
    DiskManager,
    ReadAhead,
    WriteAheadLog,
)
from repro.engine.checkpoint import FuzzyCheckpointer
from repro.faults import FaultPlan
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class SystemConfig:
    """Everything needed to assemble one configuration of the system.

    Mirrors the paper's experimental setup: a data volume striped over
    ``data_disks`` drives, a dedicated log disk, a main-memory buffer
    pool, and an SSD buffer pool run by one of the designs.
    """

    design: str = "noSSD"
    db_pages: int = 10_000
    bp_pages: int = 2_000
    ssd: SsdDesignConfig = field(default_factory=SsdDesignConfig)
    data_disks: int = 8
    checkpoint_interval: Optional[float] = None
    #: "sharp" (SQL Server 2008 R2's policy, the paper's default) or
    #: "fuzzy" (record-only checkpoints; fast checkpoint, slow restart).
    checkpoint_policy: str = "sharp"
    readahead_pages: int = 8
    readahead_trigger: int = 2
    #: SQL Server's expand-single-reads-until-pool-full behaviour (§4.3.2).
    expand_reads: bool = False
    #: Extra page headroom for run-time allocations (B+-tree splits etc.).
    slack_pages: int = 512
    #: Event-queue implementation: "heap" (default) or "wheel" (the
    #: hierarchical timer wheel — same event order, O(1) timer inserts).
    kernel: str = "heap"
    #: Modeled buffer-pool partition-latch service time in microseconds.
    #: 0 (the default) keeps latches free — any partition count then
    #: produces byte-identical traces.  Nonzero values queue every fetch
    #: through its partition's latch in virtual time, which is what makes
    #: ``--partitions`` timing-relevant for per-tenant tail latency.
    #: The buffer pool's partition *count* rides on ``ssd.partitions``
    #: (the §3.3.4 N), so one knob shards both pools together.
    bp_latch_us: float = 0.0

    def __post_init__(self) -> None:
        if self.bp_latch_us < 0:
            raise ValueError(
                f"bp_latch_us must be >= 0, got {self.bp_latch_us}")
        if self.design not in DESIGNS:
            raise ValueError(
                f"unknown design {self.design!r}; choose from {sorted(DESIGNS)}")
        if self.checkpoint_policy not in ("sharp", "fuzzy"):
            raise ValueError(
                f"unknown checkpoint policy {self.checkpoint_policy!r}")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; choose from {KERNELS}")


class System:
    """One assembled DBMS instance on a fresh simulation environment."""

    def __init__(self, config: SystemConfig,
                 env: Optional[Environment] = None,
                 telemetry: Optional[Telemetry] = None,
                 faults=None):
        self.config = config
        self.env = env or make_environment(config.kernel)
        self.telemetry = telemetry or NULL_TELEMETRY
        #: Per-system transaction-id sequence (see :meth:`next_txn_id`).
        self._txn_seq = 0
        self.telemetry.set_clock(lambda: self.env.now)
        total_pages = config.db_pages + config.slack_pages
        self.data_device = HddArray(self.env, ndisks=config.data_disks)
        if config.ssd.ftl_enabled and config.ssd.ssd_frames > 0:
            # Model the SSD's internals: the logical space the FTL maps
            # is exactly the design's S frames.
            self.ssd_device = Ssd(
                self.env,
                ftl=FtlConfig(
                    pages_per_block=config.ssd.ftl_pages_per_block,
                    op_ratio=config.ssd.ftl_op_ratio,
                    gc_low_water_blocks=config.ssd.ftl_gc_low_water),
                logical_pages=config.ssd.ssd_frames)
        else:
            self.ssd_device = Ssd(self.env)
        if self.telemetry.enabled:
            self.data_device.attach_telemetry(self.telemetry)
            self.ssd_device.attach_telemetry(self.telemetry)
        self.disk = DiskManager(self.env, self.data_device, total_pages,
                                telemetry=self.telemetry)
        self.wal = WriteAheadLog(self.env, telemetry=self.telemetry)
        design_cls = DESIGNS[config.design]
        self.ssd_manager = design_cls(self.env, self.ssd_device, self.disk,
                                      self.wal, config.ssd,
                                      telemetry=self.telemetry)
        self.bp = BufferPool(
            self.env, config.bp_pages, self.disk, self.wal, self.ssd_manager,
            readahead=ReadAhead(config.readahead_pages,
                                config.readahead_trigger),
            expand_reads=config.expand_reads,
            telemetry=self.telemetry,
            partitions=config.ssd.partitions,
            latch_seconds=config.bp_latch_us * 1e-6)
        self.ssd_manager.bp = self.bp
        self.ssd_manager.start_cleaner()
        checkpointer_cls = (FuzzyCheckpointer
                            if config.checkpoint_policy == "fuzzy"
                            else Checkpointer)
        self.checkpointer = checkpointer_cls(
            self.env, self.bp, self.wal,
            interval=config.checkpoint_interval,
            telemetry=self.telemetry)
        self.db = Database(total_pages)
        #: The installed fault plan (None when running fault-free).
        self.faults: Optional[FaultPlan] = None
        if faults:
            plan = (FaultPlan.parse(faults)
                    if isinstance(faults, str) else faults)
            plan.install(self)
            self.faults = plan

    @property
    def design(self) -> str:
        """Name of the SSD design this system runs."""
        return self.ssd_manager.name

    def next_txn_id(self) -> int:
        """Allocate the next transaction id.

        System-scoped (not process-global) so a second run in the same
        process starts from 1 again and its trace is byte-identical to a
        fresh process — the determinism contract the trace-md5 tests
        assert.
        """
        self._txn_seq += 1
        return self._txn_seq

    def start_services(self) -> None:
        """Start background services (periodic checkpoints)."""
        self.checkpointer.start()

    def run(self, until: float) -> None:
        """Advance the simulation to virtual time ``until``."""
        self.env.run(until=until)

    def crash(self) -> None:
        """Simulated power failure at the current instant.

        Every in-flight process and scheduled event dies with the event
        queue; each component then resets its volatile state so the same
        :class:`System` can restart on the same :class:`Environment`
        (disk/SSD/log *contents* are durable and survive).  Follow with
        :func:`repro.engine.recovery.simulate_crash_and_recover` to
        replay the log.
        """
        self.env.wipe()
        self.data_device.reset()
        self.ssd_device.reset()
        self.wal.device.reset()
        self.wal.crash_reset()
        self.bp.crash_reset()
        self.ssd_manager.crash_reset()
        self.checkpointer.crash_reset()
