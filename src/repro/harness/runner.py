"""Closed-loop workload driver and run results.

Mirrors the paper's methodology: N concurrent clients issue transactions
back-to-back for a fixed (virtual) duration; throughput is reported in
time buckets (the paper uses six-minute buckets over ten hours — scaled
runs use proportionally smaller buckets), and the headline number is the
average over the final window, "similar to the method specified by the
TPC-C benchmark".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.metrics import LatencyTracker, Sampler, TenantStats
from repro.harness.system import System
from repro.sim import Store
from repro.telemetry import NULL_TELEMETRY, percentile_of


@dataclass
class RunResult:
    """Everything measured during one workload run."""

    design: str
    metric_name: str
    duration: float
    bucket_seconds: float
    metric_window: float
    start_time: float = 0.0
    #: Metric-transaction completions per bucket.
    buckets: List[int] = field(default_factory=list)
    #: All transaction completions by type.
    txn_counts: Dict[str, int] = field(default_factory=dict)
    sampler: Optional[Sampler] = None
    latencies: Optional[LatencyTracker] = None
    system: Optional[System] = None
    #: Per-tenant accounting, filled by :class:`OpenLoopRunner` (empty
    #: for closed-loop runs).
    tenants: Dict[str, TenantStats] = field(default_factory=dict)
    #: Logical users the run's arrival rates represent (0 = closed-loop).
    logical_users: float = 0.0

    @property
    def offered(self) -> int:
        """Open-loop arrivals generated across all tenants."""
        return sum(t.offered for t in self.tenants.values())

    @property
    def shed(self) -> int:
        """Open-loop arrivals dropped at admission across all tenants."""
        return sum(t.shed for t in self.tenants.values())

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered arrivals shed (0 when nothing offered)."""
        offered = self.offered
        return self.shed / offered if offered else 0.0

    def queue_wait_percentile(self, q: float) -> float:
        """q-th percentile admission-queue wait across all tenants."""
        merged: List[float] = []
        for tenant in self.tenants.values():
            for values in tenant.queue_waits._samples.values():
                merged.extend(values)
        merged.sort()
        return percentile_of(merged, q)

    @property
    def total_metric_txns(self) -> int:
        """Metric-transaction completions across all buckets."""
        return sum(self.buckets)

    def bucket_widths(self) -> List[float]:
        """True width of each bucket in seconds.

        All buckets are ``bucket_seconds`` wide except possibly the last:
        when ``duration`` is not a bucket multiple, the final bucket only
        covers the tail window, and rates must be normalized by that true
        width rather than the nominal one.
        """
        if not self.buckets:
            return []
        widths = [self.bucket_seconds] * len(self.buckets)
        tail = self.duration - (len(self.buckets) - 1) * self.bucket_seconds
        if 0.0 < tail < self.bucket_seconds:
            widths[-1] = tail
        return widths

    def throughput_series(self, smooth: int = 1) -> List[Tuple[float, float]]:
        """(bucket start time, metric rate) pairs.

        ``smooth`` applies the paper's Figure 6 moving average over that
        many adjacent buckets.
        """
        rates = [count / width * self.metric_window
                 for count, width in zip(self.buckets, self.bucket_widths())]
        if smooth > 1:
            half = smooth // 2
            rates = [
                sum(rates[max(0, i - half):i + half + 1])
                / len(rates[max(0, i - half):i + half + 1])
                for i in range(len(rates))
            ]
        return [(i * self.bucket_seconds, rate)
                for i, rate in enumerate(rates)]

    def steady_state_throughput(self, window_fraction: float = 0.2) -> float:
        """Average metric rate over the last ``window_fraction`` of the
        run (the paper averages the last hour of ten)."""
        if not self.buckets:
            return 0.0
        take = max(1, int(len(self.buckets) * window_fraction))
        tail = self.buckets[-take:]
        widths = self.bucket_widths()[-take:]
        return sum(tail) / sum(widths) * self.metric_window


class WorkloadRunner:
    """Runs an OLTP workload against a system with N closed-loop clients."""

    def __init__(self, system: System, workload, nworkers: int = 32,
                 bucket_seconds: float = 2.0, seed: int = 20110612,
                 sample_interval: float = 1.0):
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        self.system = system
        self.workload = workload
        self.nworkers = nworkers
        self.bucket_seconds = bucket_seconds
        self.seed = seed
        self.sample_interval = sample_interval
        self._stopped = False

    def stop(self) -> None:
        """Ask the clients to finish their current transaction and exit.

        Needed before crash simulation or post-run phases that advance
        virtual time: otherwise the closed-loop clients keep running.
        """
        self._stopped = True

    def run(self, duration: float, setup: bool = True) -> RunResult:
        """Drive the workload for ``duration`` virtual seconds."""
        system, workload = self.system, self.workload
        # A stop() from a previous run must not leak into this one, or the
        # fresh clients would exit on their first loop check and the run
        # silently report ~zero throughput.
        self._stopped = False
        if setup:
            workload.setup(system)
            system.start_services()
        result = RunResult(
            design=system.design,
            metric_name=workload.metric_name,
            duration=duration,
            bucket_seconds=self.bucket_seconds,
            metric_window=workload.metric_window,
            start_time=system.env.now,
            # ceil, not round: a partial tail window still gets a bucket
            # (normalized by its true width in bucket_widths()).
            buckets=[0] * max(1, ceil(duration / self.bucket_seconds - 1e-9)),
            sampler=Sampler(system, self.sample_interval),
            latencies=LatencyTracker(),
            system=system,
        )
        result.sampler.start()
        for worker in range(self.nworkers):
            rng = random.Random(self.seed + worker * 1009)
            system.env.process(self._client(rng, result))
        system.run(until=system.env.now + duration)
        # The run's measurement window is over: stop the sampler so later
        # phases (crash simulation, restarts) don't grow it unboundedly.
        result.sampler.stop()
        return result

    def _client(self, rng: random.Random, result: RunResult):
        system, workload = self.system, self.workload
        metric_txn = workload.metric_transaction
        nbuckets = len(result.buckets)
        telemetry = getattr(system, "telemetry", NULL_TELEMETRY)
        latency_family = telemetry.registry.histogram(
            "txn_latency_seconds", "Transaction latency by type",
            labelnames=("type",))
        histograms = {}
        env = system.env
        transaction = workload.transaction
        txn_counts = result.txn_counts
        record_latency = result.latencies.record
        buckets = result.buckets
        bucket_seconds = self.bucket_seconds
        start_time = result.start_time
        while not self._stopped:
            name, body = transaction(rng, system)
            started = env._now
            yield from body
            now = env._now
            txn_counts[name] = txn_counts.get(name, 0) + 1
            latency = now - started
            record_latency(name, latency)
            histogram = histograms.get(name)
            if histogram is None:
                histogram = histograms[name] = latency_family.labels(type=name)
            histogram.observe(latency)
            if name == metric_txn:
                bucket = int((now - start_time) / bucket_seconds)
                if 0 <= bucket < nbuckets:
                    buckets[bucket] += 1


class OpenLoopRunner:
    """Drives open-loop, multi-tenant traffic against one system.

    Per-tenant arrival processes (:mod:`repro.workloads.traffic`) drop
    work into a bounded admission queue; ``nworkers`` simulated workers
    drain it.  The logical-user count is carried by the arrival *rates*
    — a million users at 100 s think time is 10k arrivals/sec through a
    few dozen workers — so memory stays bounded by ``queue_limit`` and
    ``nworkers``, never by the user count.

    Overload is measurable instead of silent: arrivals finding the queue
    at ``queue_limit`` are *shed* (counted per tenant), and every
    admitted transaction records its queue wait separately from its
    sojourn time.
    """

    def __init__(self, system: System, workload, tenants: Sequence,
                 nworkers: int = 64, queue_limit: int = 10_000,
                 bucket_seconds: float = 2.0, seed: int = 20110612,
                 sample_interval: float = 1.0):
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if not tenants:
            raise ValueError("need at least one tenant")
        self.system = system
        self.workload = workload
        self.tenants = list(tenants)
        self.nworkers = nworkers
        self.queue_limit = queue_limit
        self.bucket_seconds = bucket_seconds
        self.seed = seed
        self.sample_interval = sample_interval
        self._stopped = False

    def stop(self) -> None:
        """Ask the workers to finish their current transaction and exit."""
        self._stopped = True

    def run(self, duration: float, setup: bool = True) -> RunResult:
        """Offer traffic for ``duration`` virtual seconds."""
        system, workload = self.system, self.workload
        self._stopped = False
        if setup:
            workload.setup(system)
            system.start_services()
        views = []
        stats: List[TenantStats] = []
        for spec in self.tenants:
            if hasattr(workload, "tenant_view"):
                views.append(workload.tenant_view(spec.name, spec.theta))
            else:
                views.append(workload)
            stats.append(TenantStats(name=spec.name))
        result = RunResult(
            design=system.design,
            metric_name=workload.metric_name,
            duration=duration,
            bucket_seconds=self.bucket_seconds,
            metric_window=workload.metric_window,
            start_time=system.env.now,
            buckets=[0] * max(1, ceil(duration / self.bucket_seconds - 1e-9)),
            sampler=Sampler(system, self.sample_interval),
            latencies=LatencyTracker(),
            system=system,
            tenants={spec.name: st for spec, st in zip(self.tenants, stats)},
            logical_users=sum(spec.logical_users for spec in self.tenants),
        )
        result.sampler.start()
        queue: Store = Store(system.env)
        end = system.env.now + duration
        for index, spec in enumerate(self.tenants):
            # A distinct prime stride per tenant keeps arrival streams
            # independent of the worker rngs (seed + 1009*worker).
            rng = random.Random(self.seed + 7919 * (index + 1))
            system.env.process(
                self._arrivals(spec, stats[index], index, rng, queue, end))
        for worker in range(self.nworkers):
            rng = random.Random(self.seed + worker * 1009)
            system.env.process(self._worker(rng, views, stats, queue, result))
        system.run(until=end)
        result.sampler.stop()
        return result

    def _arrivals(self, spec, stats: TenantStats, index: int,
                  rng: random.Random, queue: Store, end: float):
        env = self.system.env
        limit = self.queue_limit
        for when in spec.arrivals.times(rng, start=env.now):
            if when >= end:
                break
            yield env.timeout(when - env.now)
            if self._stopped:
                break
            stats.offered += 1
            if len(queue) >= limit:
                stats.shed += 1
            else:
                queue.put((index, env.now))

    def _worker(self, rng: random.Random, views, stats, queue: Store,
                result: RunResult):
        system = self.system
        metric_txn = self.workload.metric_transaction
        nbuckets = len(result.buckets)
        telemetry = getattr(system, "telemetry", NULL_TELEMETRY)
        latency_family = telemetry.registry.histogram(
            "txn_latency_seconds", "Transaction latency by type",
            labelnames=("type",))
        histograms = {}
        while not self._stopped:
            index, enqueued = yield queue.get()
            tenant = stats[index]
            wait = system.env.now - enqueued
            name, body = views[index].transaction(rng, system)
            yield from body
            sojourn = system.env.now - enqueued
            tenant.completed += 1
            tenant.queue_waits.record(name, wait)
            tenant.latencies.record(name, sojourn)
            result.txn_counts[name] = result.txn_counts.get(name, 0) + 1
            result.latencies.record(name, sojourn)
            histogram = histograms.get(name)
            if histogram is None:
                histogram = histograms[name] = latency_family.labels(type=name)
            histogram.observe(sojourn)
            if name == metric_txn:
                bucket = int((system.env.now - result.start_time)
                             / self.bucket_seconds)
                if 0 <= bucket < nbuckets:
                    result.buckets[bucket] += 1
