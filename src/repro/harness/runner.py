"""Closed-loop workload driver and run results.

Mirrors the paper's methodology: N concurrent clients issue transactions
back-to-back for a fixed (virtual) duration; throughput is reported in
time buckets (the paper uses six-minute buckets over ten hours — scaled
runs use proportionally smaller buckets), and the headline number is the
average over the final window, "similar to the method specified by the
TPC-C benchmark".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.harness.metrics import LatencyTracker, Sampler
from repro.harness.system import System
from repro.telemetry import NULL_TELEMETRY


@dataclass
class RunResult:
    """Everything measured during one workload run."""

    design: str
    metric_name: str
    duration: float
    bucket_seconds: float
    metric_window: float
    start_time: float = 0.0
    #: Metric-transaction completions per bucket.
    buckets: List[int] = field(default_factory=list)
    #: All transaction completions by type.
    txn_counts: Dict[str, int] = field(default_factory=dict)
    sampler: Optional[Sampler] = None
    latencies: Optional[LatencyTracker] = None
    system: Optional[System] = None

    @property
    def total_metric_txns(self) -> int:
        """Metric-transaction completions across all buckets."""
        return sum(self.buckets)

    def throughput_series(self, smooth: int = 1) -> List[Tuple[float, float]]:
        """(bucket start time, metric rate) pairs.

        ``smooth`` applies the paper's Figure 6 moving average over that
        many adjacent buckets.
        """
        rates = [count / self.bucket_seconds * self.metric_window
                 for count in self.buckets]
        if smooth > 1:
            half = smooth // 2
            rates = [
                sum(rates[max(0, i - half):i + half + 1])
                / len(rates[max(0, i - half):i + half + 1])
                for i in range(len(rates))
            ]
        return [(i * self.bucket_seconds, rate)
                for i, rate in enumerate(rates)]

    def steady_state_throughput(self, window_fraction: float = 0.2) -> float:
        """Average metric rate over the last ``window_fraction`` of the
        run (the paper averages the last hour of ten)."""
        if not self.buckets:
            return 0.0
        take = max(1, int(len(self.buckets) * window_fraction))
        tail = self.buckets[-take:]
        return sum(tail) / (len(tail) * self.bucket_seconds) * self.metric_window


class WorkloadRunner:
    """Runs an OLTP workload against a system with N closed-loop clients."""

    def __init__(self, system: System, workload, nworkers: int = 32,
                 bucket_seconds: float = 2.0, seed: int = 20110612,
                 sample_interval: float = 1.0):
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        self.system = system
        self.workload = workload
        self.nworkers = nworkers
        self.bucket_seconds = bucket_seconds
        self.seed = seed
        self.sample_interval = sample_interval
        self._stopped = False

    def stop(self) -> None:
        """Ask the clients to finish their current transaction and exit.

        Needed before crash simulation or post-run phases that advance
        virtual time: otherwise the closed-loop clients keep running.
        """
        self._stopped = True

    def run(self, duration: float, setup: bool = True) -> RunResult:
        """Drive the workload for ``duration`` virtual seconds."""
        system, workload = self.system, self.workload
        if setup:
            workload.setup(system)
            system.start_services()
        result = RunResult(
            design=system.design,
            metric_name=workload.metric_name,
            duration=duration,
            bucket_seconds=self.bucket_seconds,
            metric_window=workload.metric_window,
            start_time=system.env.now,
            buckets=[0] * int(round(duration / self.bucket_seconds)),
            sampler=Sampler(system, self.sample_interval),
            latencies=LatencyTracker(),
            system=system,
        )
        result.sampler.start()
        for worker in range(self.nworkers):
            rng = random.Random(self.seed + worker * 1009)
            system.env.process(self._client(rng, result))
        system.run(until=system.env.now + duration)
        # The run's measurement window is over: stop the sampler so later
        # phases (crash simulation, restarts) don't grow it unboundedly.
        result.sampler.stop()
        return result

    def _client(self, rng: random.Random, result: RunResult):
        system, workload = self.system, self.workload
        metric_txn = workload.metric_transaction
        nbuckets = len(result.buckets)
        telemetry = getattr(system, "telemetry", NULL_TELEMETRY)
        latency_family = telemetry.registry.histogram(
            "txn_latency_seconds", "Transaction latency by type",
            labelnames=("type",))
        histograms = {}
        while not self._stopped:
            name, body = workload.transaction(rng, system)
            started = system.env.now
            yield from body
            result.txn_counts[name] = result.txn_counts.get(name, 0) + 1
            latency = system.env.now - started
            result.latencies.record(name, latency)
            histogram = histograms.get(name)
            if histogram is None:
                histogram = histograms[name] = latency_family.labels(type=name)
            histogram.observe(latency)
            if name == metric_txn:
                bucket = int((system.env.now - result.start_time)
                             / self.bucket_seconds)
                if 0 <= bucket < nbuckets:
                    result.buckets[bucket] += 1
