"""The experiment registry: one entry point per paper table/figure.

Every experiment below corresponds to a row of the experiment index in
DESIGN.md.  The scaled sizing preserves the paper's ratios:

=====================  ===============  ====================
Paper                  Scaled (default)  Ratio preserved
=====================  ===============  ====================
20 GB buffer pool      2,000 pages       BP : SSD = 1 : 7
140 GB SSD             14,000 frames     SSD : DB per config
100–415 GB databases   10k–41.5k pages
10-hour runs           60 virtual s      ramp-up visible
6-minute buckets       2-s buckets       ~30 points/series
=====================  ===============  ====================
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core import SsdDesignConfig
from repro.harness.runner import OpenLoopRunner, RunResult, WorkloadRunner
from repro.harness.system import System, SystemConfig
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload
from repro.workloads.tpch import TpchResult, TpchWorkload
from repro.workloads.traffic import parse_tenants


@dataclass(frozen=True)
class ScaleProfile:
    """Maps the paper's gigabytes to simulated page counts."""

    pages_per_gb: int = 100
    bp_gb: float = 20.0
    ssd_gb: float = 140.0

    @property
    def bp_pages(self) -> int:
        """Main-memory buffer pool size in pages."""
        return int(self.bp_gb * self.pages_per_gb)

    @property
    def ssd_frames(self) -> int:
        """SSD buffer pool size in frames."""
        return int(self.ssd_gb * self.pages_per_gb)

    def pages(self, gb: float) -> int:
        """Convert paper gigabytes to simulated pages."""
        return int(gb * self.pages_per_gb)


#: "default" is used by the benchmark harness; "small" keeps unit and
#: integration tests fast while preserving every ratio.
SCALE_PROFILES: Dict[str, ScaleProfile] = {
    "default": ScaleProfile(pages_per_gb=100),
    "small": ScaleProfile(pages_per_gb=20),
    "tiny": ScaleProfile(pages_per_gb=5),
}

#: The paper's per-benchmark λ settings (Table 2).
PAPER_LAMBDA = {"tpcc": 0.50, "tpce": 0.01, "tpch": 0.01}


def profile_name(profile: ScaleProfile) -> str:
    """The registry name of a profile (``"custom"`` if unregistered)."""
    for name, known in SCALE_PROFILES.items():
        if known == profile:
            return name
    return "custom"


def _run_meta_args(design: str, benchmark: str, scale: int,
                   duration: Optional[float],
                   seed: Optional[int] = None) -> Dict[str, Any]:
    """The ``run_meta`` instant payload: run identity + provenance.

    Provenance (git commit/branch/dirty, sweep source hash) rides on
    the trace so a JSONL file answers "which code produced this?"
    exactly like a run-store row does.
    """
    from repro.runstore.provenance import provenance_args

    meta: Dict[str, Any] = {"design": design, "benchmark": benchmark,
                            "scale": scale, "duration": duration}
    if seed is not None:
        meta["seed"] = seed
    meta.update(provenance_args())
    return meta


def _record(store: Any, spec: Dict[str, Any], result: Any) -> None:
    """Best-effort run-store recording for one experiment."""
    from repro.runstore.store import StoreError

    try:
        store.record_result(spec, result)
    except StoreError as exc:
        print(f"runstore: {exc}; run not recorded", file=sys.stderr)


def make_workload(benchmark: str, scale: int, profile: ScaleProfile,
                  oracle: Optional[Dict[int, int]] = None):
    """Build a workload: ``scale`` is warehouses (TPC-C, e.g. 1000),
    thousands of customers (TPC-E, e.g. 20), or SF (TPC-H, 30/100)."""
    if benchmark == "tpcc":
        # One warehouse is 0.1 GB in the paper's sizing.
        return TpccWorkload(
            scale, pages_per_warehouse=max(1, profile.pages_per_gb // 10),
            item_pages=max(4, profile.pages(1.0)), oracle=oracle)
    if benchmark == "tpce":
        # 10K customers = 115 GB  =>  11.5 GB per 1K customers.
        return TpceWorkload(
            scale, pages_per_customer_k=11.5 * profile.pages_per_gb,
            oracle=oracle)
    if benchmark == "tpch":
        gb = {30: 45.0, 100: 160.0}.get(scale, 1.5 * scale)
        return TpchWorkload(scale, db_gb=gb,
                            pages_per_gb=profile.pages_per_gb, oracle=oracle)
    raise ValueError(f"unknown benchmark {benchmark!r}")


def make_system(benchmark: str, workload, design: str,
                profile: ScaleProfile,
                dirty_threshold: Optional[float] = None,
                checkpoint_interval: Optional[float] = None,
                warm_restart: bool = False,
                expand_reads: bool = False,
                ftl: bool = False,
                partitions: Optional[int] = None,
                latch_us: float = 0.0,
                kernel: str = "heap",
                telemetry=None, faults=None) -> System:
    """Assemble a system sized for ``workload`` running ``design``.

    ``ftl=True`` models the SSD's internals (erase blocks, GC, WAF
    accounting; DESIGN.md §10) instead of the flat Table 1 timing.
    ``partitions`` overrides the partition count N (§3.3.4) shared by
    the SSD buffer table and the main-memory buffer pool — the
    isolation knob the multi-tenant experiments sweep.  ``latch_us``
    models the buffer-pool partition-latch service time (0 keeps the
    latch free and traces partition-count-independent).
    ``kernel`` picks the event-queue implementation ("heap"/"wheel").
    """
    ssd_frames = 0 if design == "noSSD" else profile.ssd_frames
    ssd_kwargs: Dict[str, Any] = {}
    if partitions is not None:
        ssd_kwargs["partitions"] = partitions
    ssd = SsdDesignConfig(
        ssd_frames=ssd_frames,
        dirty_threshold=(dirty_threshold if dirty_threshold is not None
                         else PAPER_LAMBDA.get(benchmark, 0.5)),
        warm_restart=warm_restart,
        ftl_enabled=ftl,
        **ssd_kwargs,
    )
    config = SystemConfig(
        design=design,
        db_pages=workload.db_pages(),
        bp_pages=profile.bp_pages,
        ssd=ssd,
        checkpoint_interval=checkpoint_interval,
        expand_reads=expand_reads,
        slack_pages=max(256, workload.db_pages() // 20),
        kernel=kernel,
        bp_latch_us=latch_us,
    )
    return System(config, telemetry=telemetry, faults=faults)


def run_oltp_experiment(benchmark: str, scale: int, design: str,
                        duration: float = 60.0,
                        profile: Optional[ScaleProfile] = None,
                        dirty_threshold: Optional[float] = None,
                        checkpoint_interval: Optional[float] = None,
                        nworkers: int = 32,
                        bucket_seconds: float = 2.0,
                        expand_reads: bool = False,
                        ftl: bool = False,
                        partitions: Optional[int] = None,
                        latch_us: float = 0.0,
                        kernel: str = "heap",
                        seed: int = 20110612,
                        telemetry=None, faults=None,
                        store=None) -> RunResult:
    """One OLTP run: the building block of Figures 5–9.

    The paper runs TPC-C with checkpointing effectively off and λ=50%,
    TPC-E with 40-minute checkpoints and λ=1% — callers pass the analog
    (a ``checkpoint_interval`` scaled to the run duration).

    ``store`` (a :class:`repro.runstore.RunStore`) records the finished
    run with full provenance; recording failures warn and never fail
    the experiment.
    """
    profile = profile or SCALE_PROFILES["default"]
    workload = make_workload(benchmark, scale, profile)
    system = make_system(benchmark, workload, design, profile,
                         dirty_threshold=dirty_threshold,
                         checkpoint_interval=checkpoint_interval,
                         expand_reads=expand_reads, ftl=ftl,
                         partitions=partitions, latch_us=latch_us,
                         kernel=kernel,
                         telemetry=telemetry, faults=faults)
    tracer = system.telemetry.tracer
    if tracer.enabled:
        tracer.instant("run_meta", "meta", "meta",
                       _run_meta_args(design, benchmark, scale, duration,
                                      seed=seed))
    runner = WorkloadRunner(system, workload, nworkers=nworkers,
                            bucket_seconds=bucket_seconds, seed=seed)
    result = runner.run(duration)
    if store is not None:
        _record(store, {
            "kind": "oltp", "benchmark": benchmark, "scale": scale,
            "design": design, "profile": profile_name(profile),
            "duration": duration, "nworkers": nworkers,
            "bucket_seconds": bucket_seconds, "seed": seed,
            "dirty_threshold": dirty_threshold,
            "checkpoint_interval": checkpoint_interval,
            "expand_reads": expand_reads, "ftl": ftl,
            "partitions": partitions, "latch_us": latch_us,
            "kernel": kernel,
            "faulted": faults is not None,
        }, result)
    return result


def run_traffic_experiment(benchmark: str, scale: int, design: str,
                           tenants, duration: float = 60.0,
                           profile: Optional[ScaleProfile] = None,
                           nworkers: int = 64,
                           queue_limit: int = 10_000,
                           bucket_seconds: float = 2.0,
                           dirty_threshold: Optional[float] = None,
                           checkpoint_interval: Optional[float] = None,
                           partitions: Optional[int] = None,
                           latch_us: float = 0.0,
                           ftl: bool = False,
                           kernel: str = "heap",
                           seed: int = 20110612,
                           telemetry=None, faults=None,
                           store=None) -> RunResult:
    """One open-loop multi-tenant run (ROADMAP item 1).

    ``tenants`` is either a parsed list of
    :class:`~repro.workloads.traffic.TenantSpec` or the CLI grammar
    string (``name=poisson:rate=...:theta=...;...``).  Offered load is
    set by the tenants' arrival rates — a run representing a million
    logical users still uses ``nworkers`` simulated workers and at most
    ``queue_limit`` queued arrivals.  ``partitions`` sweeps the
    partition knob N (SSD buffer table and main-memory buffer pool
    together) the isolation experiments measure against; ``latch_us``
    models the buffer-pool partition-latch service time, which is what
    makes the sweep move per-tenant tail latency.
    """
    profile = profile or SCALE_PROFILES["default"]
    if isinstance(tenants, str):
        tenants = parse_tenants(tenants)
    workload = make_workload(benchmark, scale, profile)
    system = make_system(benchmark, workload, design, profile,
                         dirty_threshold=dirty_threshold,
                         checkpoint_interval=checkpoint_interval,
                         ftl=ftl, partitions=partitions,
                         latch_us=latch_us, kernel=kernel,
                         telemetry=telemetry, faults=faults)
    tracer = system.telemetry.tracer
    if tracer.enabled:
        meta = _run_meta_args(design, benchmark, scale, duration, seed=seed)
        meta["tenants"] = [spec.name for spec in tenants]
        tracer.instant("run_meta", "meta", "meta", meta)
    runner = OpenLoopRunner(system, workload, tenants,
                            nworkers=nworkers, queue_limit=queue_limit,
                            bucket_seconds=bucket_seconds, seed=seed)
    result = runner.run(duration)
    if store is not None:
        _record(store, {
            "kind": "traffic", "benchmark": benchmark, "scale": scale,
            "design": design, "profile": profile_name(profile),
            "duration": duration, "nworkers": nworkers,
            "queue_limit": queue_limit,
            "bucket_seconds": bucket_seconds, "seed": seed,
            "dirty_threshold": dirty_threshold,
            "checkpoint_interval": checkpoint_interval,
            "partitions": partitions, "latch_us": latch_us,
            "ftl": ftl, "kernel": kernel,
            "tenants": ";".join(spec.name for spec in tenants),
            "logical_users": result.logical_users,
            "faulted": faults is not None,
        }, result)
    return result


def run_tpch_experiment(sf: int, design: str,
                        profile: Optional[ScaleProfile] = None,
                        checkpoint_interval: Optional[float] = None,
                        telemetry=None, store=None) -> TpchResult:
    """One full TPC-H run (power + throughput): Figure 5(g–h), Table 3."""
    profile = profile or SCALE_PROFILES["default"]
    workload = make_workload("tpch", sf, profile)
    system = make_system("tpch", workload, design, profile,
                         checkpoint_interval=checkpoint_interval,
                         telemetry=telemetry)
    tracer = system.telemetry.tracer
    if tracer.enabled:
        tracer.instant("run_meta", "meta", "meta",
                       _run_meta_args(design, "tpch", sf, None))
    workload.setup(system)
    system.start_services()
    done = system.env.process(workload.full_run(system))
    result = system.env.run(done)
    if store is not None:
        _record(store, {
            "kind": "tpch", "benchmark": "tpch", "scale": sf,
            "design": design, "profile": profile_name(profile),
            "checkpoint_interval": checkpoint_interval,
        }, result)
    return result


def speedup_over_nossd(results: Dict[str, float]) -> Dict[str, float]:
    """Normalize a {design: metric} map to the noSSD baseline."""
    baseline = results.get("noSSD")
    if not baseline:
        return {design: 0.0 for design in results}
    return {design: value / baseline for design, value in results.items()}
