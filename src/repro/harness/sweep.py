"""Parallel sweep runner with an on-disk run cache.

The paper's figures are grids of independent deterministic runs (design ×
scale × λ × checkpoint interval).  Each run is CPU-bound single-threaded
simulation, so a sweep parallelises perfectly across worker processes —
and because every run is a pure function of its configuration and the
code, its results can be cached on disk and reused across bench sessions.

Three layers:

``RunSpec``
    A frozen, JSON-serialisable description of one run.  Its canonical
    JSON form, salted with a hash of the simulator sources, is the cache
    key: change any config field *or any source file* and the key moves.

``snapshot`` / ``restore``
    A ``RunResult`` holds live simulator objects (the ``System``, the
    ``Sampler``); a snapshot extracts exactly the measurements consumers
    read (bucket series, transaction counts, buffer-pool/SSD/checkpoint
    counters, sampler time series, latency samples) into plain JSON.
    ``restore`` rebuilds a ``RunResult`` whose ``system`` is a lightweight
    stand-in exposing those same attributes.

``run_sweep``
    Fans specs across a ``multiprocessing`` pool (spawn context — workers
    re-import the package, so specs travel as plain dicts), consults the
    cache first, and reports progress/ETA as runs complete.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Set, TextIO, Tuple)

if TYPE_CHECKING:  # recording is optional; avoid a module-load cycle
    from repro.runstore.provenance import Provenance
    from repro.runstore.store import RunStore

from repro.core.ssd_manager import SsdStats
from repro.storage.ftl import FtlStats
from repro.engine.buffer_pool import BufferPoolStats
from repro.harness.experiments import (
    SCALE_PROFILES,
    run_oltp_experiment,
    run_tpch_experiment,
)
from repro.harness.metrics import LatencyTracker, Sample, Sampler
from repro.harness.runner import RunResult
from repro.workloads.tpch import TpchResult

#: Default cache directory, overridable with ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every cached run without touching the sources.
#: v2: snapshots carry fault/chaos outcome fields (``ssd.detached``) so
#: replayed cache hits record complete run-store rows.
SNAPSHOT_VERSION = 2


# ----------------------------------------------------------------------
# Run specification and cache keys
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One deterministic run, fully described by plain values.

    ``kind`` is ``"oltp"`` (Figures 5–9 building block) or ``"tpch"``
    (power + throughput).  ``scale`` is warehouses / customer-thousands /
    SF depending on the benchmark.  ``profile`` is a named entry of
    :data:`SCALE_PROFILES`.
    """

    kind: str
    benchmark: str
    scale: int
    design: str
    profile: str = "default"
    duration: float = 60.0
    nworkers: int = 32
    bucket_seconds: float = 2.0
    seed: int = 20110612
    dirty_threshold: Optional[float] = None
    checkpoint_interval: Optional[float] = None
    expand_reads: bool = False
    ftl: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("oltp", "tpch"):
            raise ValueError(f"unknown run kind {self.kind!r}")
        if self.profile not in SCALE_PROFILES:
            raise ValueError(f"unknown scale profile {self.profile!r}")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (the hashed representation)."""
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "design": self.design,
            "profile": self.profile,
            "duration": self.duration,
            "nworkers": self.nworkers,
            "bucket_seconds": self.bucket_seconds,
            "seed": self.seed,
            "dirty_threshold": self.dirty_threshold,
            "checkpoint_interval": self.checkpoint_interval,
            "expand_reads": self.expand_reads,
            "ftl": self.ftl,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict` (used to ship specs to workers)."""
        return RunSpec(**data)

    @property
    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        return f"{self.benchmark}/{self.scale}/{self.design}"


_code_version_cache: Optional[str] = None


def code_version(root: Optional[Path] = None) -> str:
    """Hash of every simulator source file, for cache invalidation.

    A cached run is only valid for the code that produced it; salting
    the cache key with the source tree means a checkout change silently
    becomes a cache miss instead of a stale result.
    """
    global _code_version_cache
    if root is None:
        if _code_version_cache is not None:
            return _code_version_cache
        root = Path(__file__).resolve().parent.parent  # src/repro
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    version = digest.hexdigest()[:16]
    if root == Path(__file__).resolve().parent.parent:
        _code_version_cache = version
    return version


def spec_key(spec: RunSpec) -> str:
    """The cache key: hash of (canonical spec JSON, code version)."""
    payload = json.dumps(
        {"spec": spec.to_dict(), "code": code_version(),
         "snapshot_version": SNAPSHOT_VERSION},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def cache_dir() -> Path:
    """Resolve the cache directory (``REPRO_CACHE_DIR`` or CWD-relative)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


# ----------------------------------------------------------------------
# Snapshots: RunResult / TpchResult -> JSON and back
# ----------------------------------------------------------------------

def snapshot(result: Any) -> Dict[str, Any]:
    """Extract a run's measurements into a JSON-serialisable dict."""
    if isinstance(result, TpchResult):
        return {
            "kind": "tpch",
            "sf": result.sf,
            "query_times": {str(k): v for k, v in result.query_times.items()},
            "rf_times": list(result.rf_times),
            "power_elapsed": result.power_elapsed,
            "throughput_elapsed": result.throughput_elapsed,
            "streams": result.streams,
        }
    return _snapshot_oltp(result)


def _snapshot_oltp(result: RunResult) -> Dict[str, Any]:
    system = result.system
    bp_stats = system.bp.stats.as_dict()
    manager = system.ssd_manager
    checkpointer = system.checkpointer
    ftl = getattr(system.ssd_device, "ftl", None)
    ftl_snap: Optional[Dict[str, Any]] = None
    if ftl is not None:
        ftl_snap = {"stats": vars(ftl.stats).copy(),
                    "waf": ftl.waf,
                    "wear_spread": ftl.wear_spread,
                    "free_blocks": ftl.free_block_count}
    data: Dict[str, Any] = {
        "kind": "oltp",
        "design": result.design,
        "metric_name": result.metric_name,
        "duration": result.duration,
        "bucket_seconds": result.bucket_seconds,
        "metric_window": result.metric_window,
        "start_time": result.start_time,
        "buckets": list(result.buckets),
        "txn_counts": dict(result.txn_counts),
        "samples": [vars(sample).copy()
                    for sample in result.sampler.samples],
        "latency_samples": {txn: list(values) for txn, values
                            in result.latencies._samples.items()},
        "bp_stats": bp_stats,
        "ssd": {
            "dirty_frames": manager.dirty_frames,
            "used_frames": manager.used_frames,
            "dirty_fraction": manager.dirty_fraction,
            # Fault outcomes must survive restore too: a replayed cache
            # hit records the same run-store row as the live run did.
            "detached": manager.detached,
            "stats": manager.stats.as_dict(),
            "invalid_count": manager.table.invalid_count,
            "config": {
                "ssd_frames": manager.config.ssd_frames,
                "dirty_threshold": manager.config.dirty_threshold,
                "dirty_limit_frames": manager.config.dirty_limit_frames,
                "fill_threshold": manager.config.fill_threshold,
                "fill_target_frames": manager.config.fill_target_frames,
            },
            "ftl": ftl_snap,
        },
        "checkpointer": {
            "checkpoints_started": checkpointer.checkpoints_started,
            "checkpoints_taken": checkpointer.checkpoints_taken,
            "durations": list(checkpointer.durations),
        },
    }
    return data


class _Attrs:
    """A dot-access bag of plain values (restored stand-in objects)."""

    def __init__(self, **values: Any) -> None:
        self.__dict__.update(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Attrs({self.__dict__!r})"


def restore(data: Dict[str, Any]) -> Any:
    """Rebuild a result object from :func:`snapshot` output.

    TPC-H snapshots restore to a real :class:`TpchResult`.  OLTP
    snapshots restore to a real :class:`RunResult` whose ``sampler`` and
    ``latencies`` are fully functional and whose ``system`` is a
    lightweight stand-in exposing the counters consumers read
    (``bp.stats``, ``ssd_manager``, ``checkpointer``).
    """
    if data["kind"] == "tpch":
        return TpchResult(
            sf=data["sf"],
            query_times={int(k): v for k, v in data["query_times"].items()},
            rf_times=list(data["rf_times"]),
            power_elapsed=data["power_elapsed"],
            throughput_elapsed=data["throughput_elapsed"],
            streams=data["streams"],
        )

    sampler = Sampler.__new__(Sampler)
    sampler.system = None
    sampler.interval = 0.0
    sampler.max_samples = None
    sampler.samples = [Sample(**row) for row in data["samples"]]
    sampler._started = True
    sampler._stopped = True

    latencies = LatencyTracker()
    for txn, values in data["latency_samples"].items():
        latencies._samples[txn] = list(values)

    bp_stats = BufferPoolStats.from_dict(data["bp_stats"])

    ssd = data["ssd"]
    manager = _Attrs(
        dirty_frames=ssd["dirty_frames"],
        used_frames=ssd["used_frames"],
        dirty_fraction=ssd["dirty_fraction"],
        detached=ssd.get("detached", False),
        stats=SsdStats(**ssd["stats"]),
        table=_Attrs(invalid_count=ssd["invalid_count"]),
        config=_Attrs(**ssd["config"]),
    )
    ftl_snap = ssd.get("ftl")
    ftl_attrs = None
    if ftl_snap is not None:
        ftl_attrs = _Attrs(
            stats=FtlStats(**ftl_snap["stats"]),
            waf=ftl_snap["waf"],
            wear_spread=ftl_snap["wear_spread"],
            free_block_count=ftl_snap["free_blocks"],
        )
    system = _Attrs(
        design=data["design"],
        bp=_Attrs(stats=bp_stats),
        ssd_manager=manager,
        ssd_device=_Attrs(ftl=ftl_attrs),
        checkpointer=_Attrs(**data["checkpointer"]),
    )
    return RunResult(
        design=data["design"],
        metric_name=data["metric_name"],
        duration=data["duration"],
        bucket_seconds=data["bucket_seconds"],
        metric_window=data["metric_window"],
        start_time=data["start_time"],
        buckets=list(data["buckets"]),
        txn_counts=dict(data["txn_counts"]),
        sampler=sampler,
        latencies=latencies,
        system=system,
    )


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------

def cache_load(spec: RunSpec,
               directory: Optional[Path] = None) -> Optional[Dict[str, Any]]:
    """Load a cached snapshot for ``spec``, or None.

    Any unreadable, truncated, or structurally wrong cache file is
    treated as a miss (the run is recomputed), never as an error.
    """
    directory = directory or cache_dir()
    path = directory / f"{spec_key(spec)}.json"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        snap = payload["snapshot"]
        if snap["kind"] not in ("oltp", "tpch"):
            raise ValueError(f"bad snapshot kind {snap['kind']!r}")
        return snap
    except (OSError, ValueError, KeyError, TypeError):
        return None


def cache_store(spec: RunSpec, snap: Dict[str, Any],
                directory: Optional[Path] = None) -> Path:
    """Atomically write a snapshot for ``spec``; returns the file path.

    Write-to-temp + rename means a concurrent reader (or a killed
    writer) can never observe a half-written file.
    """
    directory = directory or cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{spec_key(spec)}.json"
    payload = {"spec": spec.to_dict(), "snapshot": snap}
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# Executing specs
# ----------------------------------------------------------------------

def execute(spec: RunSpec) -> Any:
    """Run one spec live (no cache) and return the live result object."""
    profile = SCALE_PROFILES[spec.profile]
    if spec.kind == "tpch":
        return run_tpch_experiment(
            spec.scale, spec.design, profile=profile,
            checkpoint_interval=spec.checkpoint_interval)
    return run_oltp_experiment(
        spec.benchmark, spec.scale, spec.design,
        duration=spec.duration, profile=profile,
        dirty_threshold=spec.dirty_threshold,
        checkpoint_interval=spec.checkpoint_interval,
        nworkers=spec.nworkers, bucket_seconds=spec.bucket_seconds,
        expand_reads=spec.expand_reads, ftl=spec.ftl, seed=spec.seed)


def run_cached(spec: RunSpec, directory: Optional[Path] = None,
               use_cache: bool = True) -> Any:
    """Cache-aware single run.

    On a hit, returns the restored snapshot; on a miss, runs live,
    stores the snapshot, and returns the *live* result (callers keep
    access to the full simulator state on first computation).
    """
    if use_cache:
        snap = cache_load(spec, directory)
        if snap is not None:
            return restore(snap)
    result = execute(spec)
    if use_cache:
        cache_store(spec, snapshot(result), directory)
    return result


def _worker(payload: Tuple[Dict[str, Any], Optional[str]]) -> Tuple[
        Dict[str, Any], Dict[str, Any], bool]:
    """Pool worker: run one spec (cache-aware) in a child process.

    Module-level by necessity — the spawn context pickles the function
    by reference.  Returns (spec dict, snapshot dict, was_cached).
    """
    spec_dict, directory = payload
    spec = RunSpec.from_dict(spec_dict)
    path = Path(directory) if directory else None
    snap = cache_load(spec, path) if directory is not None else None
    if snap is not None:
        return spec_dict, snap, True
    result = execute(spec)
    snap = snapshot(result)
    if directory is not None:
        cache_store(spec, snap, path)
    return spec_dict, snap, False


@dataclass
class SweepReport:
    """Outcome of one :func:`run_sweep` call."""

    results: Dict[RunSpec, Any] = field(default_factory=dict)
    cached: int = 0
    computed: int = 0
    recorded: int = 0
    elapsed: float = 0.0


class _Recorder:
    """Best-effort run-store recording for a sweep.

    All recording happens in the parent process (workers ship plain
    snapshots back), so one sweep is one writer; the store's own
    ``BEGIN IMMEDIATE`` guard covers *concurrent sweeps* sharing a
    database.  The first failed write disables recording for the rest
    of the sweep — a broken database never costs completed runs.
    """

    def __init__(self, store: Optional["RunStore"],
                 say: Callable[[str], None]) -> None:
        self.store = store
        self.recorded = 0
        self._say = say
        self._provenance: Optional["Provenance"] = None

    def record(self, spec: RunSpec, result: Any) -> None:
        if self.store is None:
            return
        if self._provenance is None:
            from repro.runstore.provenance import capture
            self._provenance = capture()
        from repro.runstore.store import StoreError
        try:
            self.store.record_result(spec.to_dict(), result,
                                     provenance=self._provenance)
            self.recorded += 1
        except StoreError as exc:
            self._say(f"runstore: {exc}; remaining runs will not be "
                      f"recorded (JSON output is unaffected)")
            self.store = None


def run_sweep(specs: List[RunSpec], workers: int = 1,
              directory: Optional[Path] = None, use_cache: bool = True,
              progress: Optional[Callable[[str], None]] = None,
              store: Optional["RunStore"] = None,
              ) -> SweepReport:
    """Run a grid of independent specs, in parallel, through the cache.

    ``workers=1`` runs in-process (no pool overhead, easiest to debug);
    ``workers>1`` fans out over a spawn-context pool.  Each run is
    deterministic in isolation, so the schedule does not affect results.
    Duplicate specs are collapsed before dispatch.

    ``store`` (a :class:`repro.runstore.RunStore`) records every run —
    cache hits included, so replayed sweeps still build history — with
    provenance captured once per sweep.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    say = progress if progress is not None else (lambda message: None)
    directory = (directory or cache_dir()) if use_cache else None
    recorder = _Recorder(store, say)

    unique: List[RunSpec] = []
    seen: Set[RunSpec] = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            unique.append(spec)

    report = SweepReport()
    started = time.monotonic()
    total = len(unique)
    done = 0

    def note(spec: RunSpec, was_cached: bool) -> None:
        nonlocal done
        done += 1
        if was_cached:
            report.cached += 1
        else:
            report.computed += 1
        elapsed = time.monotonic() - started
        eta = elapsed / done * (total - done) if done else 0.0
        say(f"[{done}/{total}] {spec.label} "
            f"{'cached' if was_cached else f'{elapsed:6.1f}s'} "
            f"(eta {eta:5.1f}s)")

    if workers == 1 or total <= 1:
        for spec in unique:
            if directory is not None:
                snap = cache_load(spec, directory)
                if snap is not None:
                    report.results[spec] = restore(snap)
                    recorder.record(spec, report.results[spec])
                    note(spec, True)
                    continue
            result = execute(spec)
            if directory is not None:
                cache_store(spec, snapshot(result), directory)
            report.results[spec] = result
            recorder.record(spec, result)
            note(spec, False)
    else:
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        payloads = [(spec.to_dict(), str(directory) if directory else None)
                    for spec in unique]
        with context.Pool(min(workers, total)) as pool:
            for spec_dict, snap, was_cached in pool.imap_unordered(
                    _worker, payloads):
                spec = RunSpec.from_dict(spec_dict)
                report.results[spec] = restore(snap)
                recorder.record(spec, report.results[spec])
                note(spec, was_cached)

    report.recorded = recorder.recorded
    report.elapsed = time.monotonic() - started
    return report


def summarize(report: SweepReport) -> List[Dict[str, Any]]:
    """One plain-dict row per run: the sweep's merged metric table."""
    rows: List[Dict[str, Any]] = []
    for spec, result in sorted(report.results.items(),
                               key=lambda item: (item[0].benchmark,
                                                 item[0].scale,
                                                 item[0].design)):
        row: Dict[str, Any] = {"spec": spec.to_dict()}
        if isinstance(result, TpchResult):
            row.update(metric="QphH", value=result.qphh,
                       power=result.power, throughput=result.throughput)
        else:
            row.update(metric=result.metric_name,
                       value=result.steady_state_throughput(),
                       total_txns=result.total_metric_txns)
            ftl = getattr(getattr(result.system, "ssd_device", None),
                          "ftl", None)
            if ftl is not None:
                row["waf"] = ftl.waf
        rows.append(row)
    return rows


def progress_printer(stream: Optional[TextIO] = None
                     ) -> Callable[[str], None]:
    """A progress callback that writes one line per completed run."""
    stream = stream or sys.stderr

    def say(message: str) -> None:
        print(message, file=stream, flush=True)

    return say
