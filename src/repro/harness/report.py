"""Plain-text rendering of experiment tables and time series."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table with a title rule.

    Ragged rows (fewer cells than headers) are padded with empty cells.
    """
    ncols = len(headers)
    cells = [
        [str(value) for value in row] + [""] * (ncols - len(row))
        for row in rows
    ]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells))
        if cells else len(headers[col])
        for col in range(ncols)
    ]

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.rjust(width)
                         for value, width in zip(values, widths))

    parts = [title, "=" * len(title), line(list(headers)),
             line(["-" * width for width in widths])]
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)


def downsample_series(series: List[Tuple[float, float]],
                      max_rows: int = 40) -> List[Tuple[float, float]]:
    """Reduce a time series to at most ``max_rows`` points.

    Consecutive samples are grouped into equal-count buckets; each bucket
    is rendered as (first sample time, mean value) so long runs stay
    readable without hiding sustained shifts.
    """
    if max_rows < 1:
        raise ValueError(f"max_rows must be >= 1, got {max_rows}")
    if len(series) <= max_rows:
        return list(series)
    per_bucket = -(-len(series) // max_rows)
    out = []
    for start in range(0, len(series), per_bucket):
        bucket = series[start:start + per_bucket]
        mean = sum(value for _, value in bucket) / len(bucket)
        out.append((bucket[0][0], mean))
    return out


def format_series(title: str, series: List[Tuple[float, float]],
                  time_label: str = "t", value_label: str = "value",
                  width: int = 50, max_rows: int = 40) -> str:
    """Render a time series as an ASCII bar sparkline table.

    Long series are downsampled to ~``max_rows`` bucket-averaged rows
    (pass ``max_rows=len(series)`` or larger to disable).
    """
    if not series:
        return f"{title}\n(empty)"
    shown = downsample_series(series, max_rows=max_rows)
    peak = max(value for _, value in shown) or 1.0
    lines = [title, "=" * len(title),
             f"{time_label:>8}  {value_label:>12}"]
    for when, value in shown:
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{when:8.1f}  {value:12.1f}  {bar}")
    if len(shown) < len(series):
        lines.append(f"({len(series)} samples in {len(shown)} buckets)")
    return "\n".join(lines)


def format_metrics(registry, title: str = "Metrics") -> str:
    """Render a :class:`~repro.telemetry.MetricRegistry` snapshot.

    Counters and gauges become ``name{label="v"} value`` rows; histograms
    render their count/mean/percentile summary inline.
    """
    rows = []
    for row in registry.snapshot():
        labels = ",".join(f'{k}="{v}"'
                          for k, v in sorted(row["labels"].items()))
        name = row["name"] + (f"{{{labels}}}" if labels else "")
        if row["kind"] == "histogram":
            summary = row["value"]
            value = (f"n={summary['count']:.0f} mean={summary['mean']:.6g} "
                     f"p50={summary['p50']:.6g} p95={summary['p95']:.6g} "
                     f"p99={summary['p99']:.6g}")
        else:
            value = f"{row['value']:,.6g}"
        rows.append([name, value])
    if not rows:
        return f"{title}\n(no metrics registered)"
    return format_table(title, ["metric", "value"], rows)


def format_speedups(title: str, speedups: Dict[str, Dict[str, float]],
                    designs: Sequence[str] = ("DW", "LC", "TAC")) -> str:
    """Render a Figure 5-style speedup table: configs × designs."""
    headers = ["config"] + [f"{d} speedup" for d in designs]
    rows = [
        [config] + [f"{per_design.get(d, 0.0):.2f}x" for d in designs]
        for config, per_design in speedups.items()
    ]
    return format_table(title, headers, rows)
