"""Plain-text rendering of experiment tables and time series."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table with a title rule."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells))
        if cells else len(headers[col])
        for col in range(len(headers))
    ]

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.rjust(width)
                         for value, width in zip(values, widths))

    parts = [title, "=" * len(title), line(list(headers)),
             line(["-" * width for width in widths])]
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)


def format_series(title: str, series: List[Tuple[float, float]],
                  time_label: str = "t", value_label: str = "value",
                  width: int = 50) -> str:
    """Render a time series as an ASCII bar sparkline table."""
    if not series:
        return f"{title}\n(empty)"
    peak = max(value for _, value in series) or 1.0
    lines = [title, "=" * len(title),
             f"{time_label:>8}  {value_label:>12}"]
    for when, value in series:
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{when:8.1f}  {value:12.1f}  {bar}")
    return "\n".join(lines)


def format_metrics(registry, title: str = "Metrics") -> str:
    """Render a :class:`~repro.telemetry.MetricRegistry` snapshot.

    Counters and gauges become ``name{label="v"} value`` rows; histograms
    render their count/mean/percentile summary inline.
    """
    rows = []
    for row in registry.snapshot():
        labels = ",".join(f'{k}="{v}"'
                          for k, v in sorted(row["labels"].items()))
        name = row["name"] + (f"{{{labels}}}" if labels else "")
        if row["kind"] == "histogram":
            summary = row["value"]
            value = (f"n={summary['count']:.0f} mean={summary['mean']:.6g} "
                     f"p50={summary['p50']:.6g} p95={summary['p95']:.6g} "
                     f"p99={summary['p99']:.6g}")
        else:
            value = f"{row['value']:,.6g}"
        rows.append([name, value])
    if not rows:
        return f"{title}\n(no metrics registered)"
    return format_table(title, ["metric", "value"], rows)


def format_speedups(title: str, speedups: Dict[str, Dict[str, float]],
                    designs: Sequence[str] = ("DW", "LC", "TAC")) -> str:
    """Render a Figure 5-style speedup table: configs × designs."""
    headers = ["config"] + [f"{d} speedup" for d in designs]
    rows = [
        [config] + [f"{per_design.get(d, 0.0):.2f}x" for d in designs]
        for config, per_design in speedups.items()
    ]
    return format_table(title, headers, rows)
