"""repro — reproduction of "Turbocharging DBMS Buffer Pool Using SSDs"
(Do, DeWitt, Zhang, Naughton, Patel, Halverson; SIGMOD 2011).

Subpackages:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel.
* :mod:`repro.storage` — HDD-array and SSD device models calibrated to
  the paper's Table 1.
* :mod:`repro.engine` — the mini-DBMS storage module the designs plug
  into (buffer pool, WAL, checkpoints, recovery, heap files, B+-trees).
* :mod:`repro.core` — the paper's contribution: the SSD manager and the
  CW / DW / LC / TAC designs.
* :mod:`repro.workloads` — TPC-C-, TPC-E- and TPC-H-like generators.
* :mod:`repro.harness` — system assembly, workload runner, and the
  per-table/figure experiment registry.

The most convenient entry points::

    from repro.harness.system import System, SystemConfig
    from repro.harness.experiments import (
        run_oltp_experiment, run_tpch_experiment)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
