"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``iometer`` — regenerate the paper's Table 1 device measurements.
* ``oltp``    — run a TPC-C/E-like experiment for one or more designs
  and print throughputs, speedups, and SSD statistics.
* ``tpch``    — run the TPC-H power + throughput tests.
* ``designs`` — list the available SSD designs with one-line summaries.
* ``sweep``   — fan a grid of runs (designs x scales) across worker
  processes through the on-disk run cache.
* ``analyze`` — reconstruct per-transaction latency attribution from
  ``--trace`` output and emit terminal/HTML/JSON reports.
* ``runs``    — query the run database every experiment records into
  (list/show/compare/regress/bench; see ``repro.runstore``).
* ``serve``   — HTML dashboard + JSON API over the run database.
* ``lint``    — run the repo-specific AST invariant checker
  (``repro.statics``) over the sources.

``oltp``/``tpch``/``sweep``/``chaos``/``analyze --bench`` record into
the run store by default (``--db`` to point elsewhere, ``--no-db`` to
skip); recording is best-effort and never fails the run.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core import DESIGNS
from repro.faults import FaultPlan
from repro.harness.experiments import (
    SCALE_PROFILES,
    run_oltp_experiment,
    run_tpch_experiment,
    run_traffic_experiment,
    speedup_over_nossd,
)
from repro.harness.report import format_metrics, format_table
from repro.sim import KERNELS
from repro.telemetry import Telemetry

DESIGN_SUMMARIES = {
    "noSSD": "unmodified engine (baseline)",
    "CW": "clean-write: dirty evictions never cached (§2.3.1)",
    "DW": "dual-write: write-through dirty evictions (§2.3.2)",
    "LC": "lazy-cleaning: write-back with a cleaner thread (§2.3.3)",
    "LS": "log-structured: append-only SSD log, group-commit admission, "
          "GC-aware reclaim (DESIGN.md §10)",
    "TAC": "temperature-aware caching (Canim et al., the paper's baseline)",
    "ROT": "rotating circular SSD queue (Holloway, related work §5)",
    "EXCL": "exclusive two-level cache (Koltsidas & Viglas, related work §5)",
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", choices=sorted(SCALE_PROFILES),
                        default="small",
                        help="scale profile (default: small)")
    parser.add_argument("--designs", default="noSSD,DW,LC,TAC",
                        help="comma-separated designs (see `designs`)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a trace file (Chrome trace_event JSON, "
                             "or JSONL when FILE ends in .jsonl); with "
                             "several designs, one file per design; feed "
                             "the files to `repro analyze`")
    parser.add_argument("--metrics", action="store_true",
                        help="print the full metrics registry after each run")


def _make_telemetry(args) -> Optional[Telemetry]:
    """A fresh telemetry sink when --trace/--metrics asked for one."""
    return Telemetry() if (args.trace or args.metrics) else None


def _add_db_flags(parser: argparse.ArgumentParser) -> None:
    """Recording flags shared by every experiment-running command."""
    from repro.runstore.cli import add_db_argument
    add_db_argument(parser)
    parser.add_argument("--no-db", action="store_true",
                        help="do not record runs into the run database")


def _open_recording_store(args):
    """The run store for a recording command, or None (``--no-db``, or
    the database is unusable — recording is best-effort)."""
    if getattr(args, "no_db", False):
        return None
    from repro.runstore.store import open_store
    return open_store(getattr(args, "db", None))


def _validate_trace(args) -> Optional[str]:
    """An error message when the --trace target can't be written —
    checked before the run so a typo fails in milliseconds, not after
    the whole simulation."""
    if args.trace:
        directory = os.path.dirname(args.trace) or "."
        if not os.path.isdir(directory):
            return f"--trace: directory does not exist: {directory}"
    return None


def _trace_path(template: str, design: str, multiple: bool) -> str:
    """The per-design trace path (suffix the design when several run)."""
    if not multiple:
        return template
    stem, ext = os.path.splitext(template)
    return f"{stem}-{design}{ext or '.json'}"


def _emit_telemetry(args, design: str, telemetry: Optional[Telemetry],
                    multiple: bool) -> None:
    """Write the trace file and/or print the metrics table for one run."""
    if telemetry is None:
        return
    if args.trace:
        path = _trace_path(args.trace, design, multiple)
        if path.endswith(".jsonl"):
            telemetry.tracer.write_jsonl(path)
        else:
            telemetry.tracer.write_chrome(path)
        dropped = telemetry.tracer.dropped
        note = f" ({dropped} events dropped past cap)" if dropped else ""
        print(f"wrote {len(telemetry.tracer.events)} trace events "
              f"to {path}{note}", file=sys.stderr)
    if args.metrics:
        print(format_metrics(telemetry.registry, title=f"Metrics — {design}"))


def cmd_iometer(args) -> int:
    """Regenerate the paper's Table 1 with the device models."""
    from repro.storage.iometer import run_table1
    table = run_table1(duration=args.duration)
    rows = [[name, f"{measured:,.0f}", f"{paper:,}",
             f"{measured / paper:.3f}"]
            for name, measured, paper in table.rows()]
    print(format_table("Table 1 — sustained IOPS (8 KB I/Os)",
                       ["device/pattern", "measured", "paper", "ratio"],
                       rows))
    return 0


def cmd_designs(args) -> int:
    """List the available SSD designs."""
    rows = [[name, DESIGN_SUMMARIES.get(name, "")] for name in DESIGNS]
    print(format_table("SSD buffer-pool extension designs",
                       ["name", "summary"], rows))
    return 0


def cmd_oltp(args) -> int:
    """Run an OLTP experiment across designs and print the table."""
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    unknown = [d for d in designs if d not in DESIGNS]
    if unknown:
        print(f"unknown designs: {unknown}; try `python -m repro designs`",
              file=sys.stderr)
        return 2
    error = _validate_trace(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.faults:
        # Validate the plan grammar before burning a whole run on a typo.
        try:
            FaultPlan.parse(args.faults)
        except ValueError as exc:
            print(f"--faults: {exc}", file=sys.stderr)
            return 2
    profile = SCALE_PROFILES[args.profile]
    store = _open_recording_store(args)
    results = {}
    for design in designs:
        telemetry = _make_telemetry(args)
        # Each design gets its own plan instance: injectors bind to one
        # system's devices.
        faults = FaultPlan.parse(args.faults) if args.faults else None
        results[design] = run_oltp_experiment(
            args.benchmark, args.scale, design, duration=args.duration,
            profile=profile, nworkers=args.workers,
            dirty_threshold=args.dirty_threshold,
            checkpoint_interval=args.checkpoint_interval,
            ftl=args.ftl, partitions=args.partitions,
            latch_us=args.latch_us, kernel=args.kernel,
            telemetry=telemetry, faults=faults,
            store=store)
        print(f"ran {design}", file=sys.stderr)
        system = results[design].system
        ftl = getattr(system.ssd_device, "ftl", None)
        if ftl is not None:
            stats = ftl.stats
            print(f"ftl[{design}]: host_writes={stats.host_writes} "
                  f"nand_writes={stats.nand_writes} erases={stats.erases} "
                  f"waf={ftl.waf:.3f} wear_spread={ftl.wear_spread}",
                  file=sys.stderr)
        if faults:
            injected = {
                role: dict(inj.stats)
                for role, inj in sorted(faults.injectors.items()) if inj.stats}
            detached = system.ssd_manager.detached
            print(f"faults[{design}]: injected={injected} "
                  f"ssd_detached={detached} "
                  f"retries={system.ssd_manager.stats.io_retries} "
                  f"degrade_redo={system.ssd_manager.stats.detach_redo_pages}",
                  file=sys.stderr)
        _emit_telemetry(args, design, telemetry, len(designs) > 1)
    throughputs = {d: r.steady_state_throughput()
                   for d, r in results.items()}
    speedups = speedup_over_nossd(throughputs)
    metric = next(iter(results.values())).metric_name
    rows = []
    for design in designs:
        result = results[design]
        manager = result.system.ssd_manager
        rows.append([
            design,
            f"{throughputs[design]:,.1f}",
            (f"{speedups[design]:.2f}x" if "noSSD" in throughputs else "-"),
            f"{result.system.bp.stats.ssd_hit_rate:.1%}",
            f"{manager.used_frames:,}",
            f"{manager.dirty_frames:,}",
        ])
    print(format_table(
        f"{args.benchmark.upper()} scale={args.scale} "
        f"({args.duration:.0f} virtual s, profile={args.profile})",
        ["design", metric, "speedup", "SSD hit", "SSD used", "SSD dirty"],
        rows))
    if store is not None:
        store.close()
    return 0


def cmd_traffic(args) -> int:
    """Run an open-loop multi-tenant experiment across designs."""
    from repro.workloads.traffic import parse_tenants

    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    unknown = [d for d in designs if d not in DESIGNS]
    if unknown:
        print(f"unknown designs: {unknown}; try `python -m repro designs`",
              file=sys.stderr)
        return 2
    error = _validate_trace(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    try:
        tenants = parse_tenants(args.tenants)
    except ValueError as exc:
        print(f"--tenants: {exc}", file=sys.stderr)
        return 2
    profile = SCALE_PROFILES[args.profile]
    store = _open_recording_store(args)
    results = {}
    for design in designs:
        telemetry = _make_telemetry(args)
        results[design] = run_traffic_experiment(
            args.benchmark, args.scale, design, tenants,
            duration=args.duration, profile=profile,
            nworkers=args.workers, queue_limit=args.queue_limit,
            dirty_threshold=args.dirty_threshold,
            checkpoint_interval=args.checkpoint_interval,
            partitions=args.partitions, latch_us=args.latch_us,
            ftl=args.ftl,
            kernel=args.kernel, seed=args.seed,
            telemetry=telemetry, store=store)
        print(f"ran {design}", file=sys.stderr)
        _emit_telemetry(args, design, telemetry, len(designs) > 1)
    first = next(iter(results.values()))
    users = first.logical_users
    rows = []
    for design in designs:
        result = results[design]
        rows.append([
            design,
            f"{result.steady_state_throughput():,.1f}",
            f"{result.offered:,}",
            f"{result.shed_fraction:.1%}",
            f"{result.queue_wait_percentile(99) * 1e3:,.2f}",
            f"{result.latencies.percentile(99) * 1e3:,.2f}",
        ])
    print(format_table(
        f"open-loop {args.benchmark.upper()} scale={args.scale} "
        f"({users:,.0f} logical users, {args.duration:.0f} virtual s, "
        f"workers={args.workers}, kernel={args.kernel})",
        ["design", first.metric_name, "offered", "shed",
         "qwait p99 (ms)", "p99 (ms)"], rows))
    tenant_rows = []
    for design in designs:
        result = results[design]
        for name, stats in result.tenants.items():
            tenant_rows.append([
                design, name,
                f"{stats.offered:,}",
                f"{stats.shed_fraction:.1%}",
                f"{stats.throughput(result.duration):,.1f}",
                f"{stats.queue_waits.percentile(99) * 1e3:,.2f}",
                f"{stats.latencies.percentile(99) * 1e3:,.2f}",
            ])
    print()
    print(format_table(
        "per-tenant isolation",
        ["design", "tenant", "offered", "shed", "txn/s",
         "qwait p99 (ms)", "p99 (ms)"], tenant_rows))
    if store is not None:
        store.close()
    return 0


def cmd_chaos(args) -> int:
    """Run the crash-point sweep and report per-design/policy outcomes."""
    from repro.harness.crashpoints import (
        CrashSweepConfig,
        crash_point_sweep,
        format_sweep_table,
    )

    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    unknown = [d for d in designs if d not in DESIGNS]
    if unknown:
        print(f"unknown designs: {unknown}; try `python -m repro designs`",
              file=sys.stderr)
        return 2
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    bad = [p for p in policies if p not in ("sharp", "fuzzy")]
    if bad:
        print(f"unknown checkpoint policies: {bad} (sharp|fuzzy)",
              file=sys.stderr)
        return 2
    cfg = CrashSweepConfig(
        designs=designs, policies=policies, points=args.points,
        seed=args.seed, duration=args.duration,
        checkpoint_interval=args.checkpoint_interval)
    result = crash_point_sweep(cfg)
    print(format_sweep_table(result))
    total = len(result.outcomes)
    failed = len(result.failures)
    print(f"{total} crash points, {failed} failed", file=sys.stderr)
    store = _open_recording_store(args)
    if store is not None:
        from repro.runstore.store import StoreError
        try:
            run_ids = store.record_chaos(result.outcomes, seed=args.seed)
            print(f"recorded {len(run_ids)} chaos run(s) into {store.path}",
                  file=sys.stderr)
        except StoreError as exc:
            print(f"runstore: {exc}; chaos sweep not recorded",
                  file=sys.stderr)
        finally:
            store.close()
    return 1 if failed else 0


def cmd_sweep(args) -> int:
    """Run a design x scale grid in parallel through the run cache."""
    import json
    from pathlib import Path

    from repro.harness.sweep import (
        RunSpec,
        progress_printer,
        run_sweep,
        summarize,
    )

    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    unknown = [d for d in designs if d not in DESIGNS]
    if unknown:
        print(f"unknown designs: {unknown}; try `python -m repro designs`",
              file=sys.stderr)
        return 2
    try:
        scales = [int(s) for s in args.scales.split(",") if s.strip()]
    except ValueError:
        print(f"--scales must be comma-separated integers, "
              f"got {args.scales!r}", file=sys.stderr)
        return 2
    if not scales or not designs:
        print("sweep: need at least one scale and one design",
              file=sys.stderr)
        return 2

    kind = "tpch" if args.benchmark == "tpch" else "oltp"
    specs = [
        RunSpec(kind=kind, benchmark=args.benchmark, scale=scale,
                design=design, profile=args.profile,
                duration=args.duration, nworkers=args.workers_per_run,
                dirty_threshold=args.dirty_threshold,
                checkpoint_interval=args.checkpoint_interval,
                ftl=args.ftl, seed=args.seed)
        for scale in scales for design in designs
    ]
    directory = Path(args.cache_dir) if args.cache_dir else None
    store = _open_recording_store(args)
    report = run_sweep(specs, workers=args.workers, directory=directory,
                       use_cache=not args.no_cache,
                       progress=progress_printer(), store=store)
    if store is not None:
        print(f"recorded {report.recorded}/{len(specs)} runs "
              f"into {store.path}", file=sys.stderr)
        store.close()
    rows = summarize(report)
    has_waf = any("waf" in row for row in rows)
    table = [[row["spec"]["benchmark"], str(row["spec"]["scale"]),
              row["spec"]["design"], row["metric"], f"{row['value']:,.1f}"]
             + ([f"{row['waf']:.3f}" if "waf" in row else "-"]
                if has_waf else [])
             for row in rows]
    print(format_table(
        f"sweep — {len(rows)} runs, {report.cached} cached, "
        f"{report.computed} computed in {report.elapsed:.1f}s "
        f"(workers={args.workers})",
        ["benchmark", "scale", "design", "metric", "value"]
        + (["waf"] if has_waf else []), table))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump({"runs": rows}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote sweep summary to {args.output}", file=sys.stderr)
    return 0


def cmd_tpch(args) -> int:
    """Run the TPC-H power + throughput tests across designs."""
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    error = _validate_trace(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    profile = SCALE_PROFILES[args.profile]
    store = _open_recording_store(args)
    rows = []
    for design in designs:
        telemetry = _make_telemetry(args)
        result = run_tpch_experiment(args.sf, design, profile=profile,
                                     telemetry=telemetry, store=store)
        rows.append([design, f"{result.power:,.0f}",
                     f"{result.throughput:,.0f}", f"{result.qphh:,.0f}"])
        print(f"ran {design}", file=sys.stderr)
        _emit_telemetry(args, design, telemetry, len(designs) > 1)
    print(format_table(f"TPC-H @{args.sf} SF (profile={args.profile})",
                       ["design", "QppH", "QthH", "QphH"], rows))
    if store is not None:
        store.close()
    return 0


def cmd_analyze(args) -> int:
    """Attribute tail latency from one or more trace files."""
    import json

    from repro.telemetry.analysis import (
        analyze_traces,
        bench_snapshot,
        format_attribution_table,
        format_faults_table,
        format_ftl_table,
        format_interference_table,
        format_tenant_table,
        validate_bench,
    )

    missing = [path for path in args.traces if not os.path.exists(path)]
    if missing:
        print(f"analyze: no such trace file: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        quantiles = [float(q) for q in args.tail.split(",") if q.strip()]
    except ValueError:
        print(f"analyze: --tail must be comma-separated percentiles, "
              f"got {args.tail!r}", file=sys.stderr)
        return 2
    try:
        analyses = analyze_traces(args.traces)
    except ValueError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    for analysis in analyses:
        if not analysis.txns:
            print(f"analyze: {analysis.path}: no transaction spans — was "
                  f"the run traced with this version?", file=sys.stderr)
            return 2
        if analysis.truncated:
            print(f"warning: {analysis.path}: trace truncated, "
                  f"{analysis.dropped} events dropped past the cap — "
                  f"attribution undercounts late waits", file=sys.stderr)
        if analysis.orphan_events:
            print(f"note: {analysis.path}: {analysis.orphan_events} waits "
                  f"belong to transactions cut off before commit",
                  file=sys.stderr)

    print(format_attribution_table(analyses, quantiles=quantiles,
                                   txn_type=args.txn_type))
    if any(a.tenants() for a in analyses):
        print()
        print(format_tenant_table(analyses))
    if any(a.background_io for a in analyses):
        print()
        print(format_interference_table(analyses))
    if any(a.faults for a in analyses):
        print()
        print(format_faults_table(analyses))
    if any(a.ftl for a in analyses):
        print()
        print(format_ftl_table(analyses))

    if args.html:
        from repro.telemetry.htmlreport import write_report
        write_report(args.html, analyses, args.workload,
                     quantiles=quantiles)
        print(f"wrote HTML report to {args.html}", file=sys.stderr)
    if args.bench:
        snapshot = bench_snapshot(analyses, args.workload,
                                  quantiles=quantiles)
        errors = validate_bench(snapshot)
        if errors:
            print("analyze: generated BENCH document failed validation:",
                  file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            return 1
        with open(args.bench, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote benchmark snapshot to {args.bench}", file=sys.stderr)
        store = _open_recording_store(args)
        if store is not None:
            from repro.runstore.store import StoreError
            try:
                store.record_bench(snapshot)
                print(f"recorded benchmark snapshot into {store.path}",
                      file=sys.stderr)
            except StoreError as exc:
                print(f"runstore: {exc}; snapshot not recorded",
                      file=sys.stderr)
            finally:
                store.close()
    return 0


def cmd_lint(args) -> int:
    """Run the static invariant checker (see repro.statics)."""
    from repro.statics.cli import run_lint
    return run_lint(args)


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSD buffer-pool extension reproduction (SIGMOD 2011)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_iometer = sub.add_parser("iometer", help="regenerate Table 1")
    p_iometer.add_argument("--duration", type=float, default=5.0)
    p_iometer.set_defaults(func=cmd_iometer)

    p_designs = sub.add_parser("designs", help="list available designs")
    p_designs.set_defaults(func=cmd_designs)

    p_oltp = sub.add_parser("oltp", help="run a TPC-C/E-like experiment")
    p_oltp.add_argument("--benchmark", choices=("tpcc", "tpce"),
                        default="tpcc")
    p_oltp.add_argument("--scale", type=int, default=1_000,
                        help="warehouses (tpcc) or customers/1000 (tpce)")
    p_oltp.add_argument("--duration", type=float, default=30.0,
                        help="virtual seconds")
    p_oltp.add_argument("--workers", type=int, default=16)
    p_oltp.add_argument("--dirty-threshold", type=float, default=None,
                        help="LC lambda (default: the paper's per-benchmark value)")
    p_oltp.add_argument("--checkpoint-interval", type=float, default=None,
                        help="virtual seconds between checkpoints")
    p_oltp.add_argument("--faults", default=None, metavar="PLAN",
                        help="fault plan, e.g. "
                             "'ssd_die@t=30,transient:p=0.001' "
                             "(see repro.faults.plan for the grammar)")
    p_oltp.add_argument("--ftl", action="store_true",
                        help="model the SSD's internals (erase blocks, GC, "
                             "write amplification; DESIGN.md §10)")
    p_oltp.add_argument("--kernel", choices=KERNELS, default="heap",
                        help="event-queue implementation (default: heap)")
    p_oltp.add_argument("--partitions", type=int, default=None,
                        help="partition count N for the SSD buffer table "
                             "and the main-memory buffer pool (§3.3.4)")
    p_oltp.add_argument("--latch-us", type=float, default=0.0,
                        help="modeled buffer-pool partition-latch service "
                             "time in microseconds (default 0: free "
                             "latches, partition-count-independent runs)")
    _add_common(p_oltp)
    _add_db_flags(p_oltp)
    p_oltp.set_defaults(func=cmd_oltp)

    p_traffic = sub.add_parser(
        "traffic", help="open-loop multi-tenant run (arrival-rate driven)")
    p_traffic.add_argument("--benchmark", choices=("tpcc", "tpce"),
                           default="tpcc")
    p_traffic.add_argument("--scale", type=int, default=1_000,
                           help="warehouses (tpcc) or customers/1000 (tpce)")
    p_traffic.add_argument("--duration", type=float, default=30.0,
                           help="virtual seconds")
    p_traffic.add_argument(
        "--tenants",
        default="all=poisson:users=1000000:think=100",
        help="';'-separated tenant specs: name=kind:rate=R|users=U:think=T"
             "[:theta=Z] with kind in poisson|bursty|diurnal "
             "(default: one tenant of 1M logical users)")
    p_traffic.add_argument("--workers", type=int, default=64,
                           help="simulated worker pool draining the queue")
    p_traffic.add_argument("--queue-limit", type=int, default=10_000,
                           help="admission queue bound; arrivals beyond it "
                                "are shed (default 10000)")
    p_traffic.add_argument("--partitions", type=int, default=None,
                           help="partition count N (§3.3.4) for the SSD "
                                "buffer table and the main-memory buffer "
                                "pool — the tenant-isolation knob")
    p_traffic.add_argument("--latch-us", type=float, default=20.0,
                           help="modeled buffer-pool partition-latch "
                                "service time in microseconds (default "
                                "20: contention visible, so --partitions "
                                "moves per-tenant p99; 0 disables)")
    p_traffic.add_argument("--dirty-threshold", type=float, default=None,
                           help="LC lambda (default: per-benchmark value)")
    p_traffic.add_argument("--checkpoint-interval", type=float, default=None,
                           help="virtual seconds between checkpoints")
    p_traffic.add_argument("--ftl", action="store_true",
                           help="model the SSD's internals")
    p_traffic.add_argument("--kernel", choices=KERNELS, default="wheel",
                           help="event-queue implementation (default: wheel "
                                "— built for open-loop timer volume)")
    p_traffic.add_argument("--seed", type=int, default=20110612)
    _add_common(p_traffic)
    _add_db_flags(p_traffic)
    p_traffic.set_defaults(func=cmd_traffic)

    p_chaos = sub.add_parser(
        "chaos", help="crash-point sweep: crash, recover, verify")
    p_chaos.add_argument("--points", type=int, default=5,
                         help="crash points per design x policy (default 5)")
    p_chaos.add_argument("--designs", default="CW,DW,LC,TAC,LS")
    p_chaos.add_argument("--policies", default="sharp,fuzzy",
                         help="comma-separated checkpoint policies")
    p_chaos.add_argument("--seed", type=int, default=20110612)
    p_chaos.add_argument("--duration", type=float, default=8.0,
                         help="crash-window length in virtual seconds")
    p_chaos.add_argument("--checkpoint-interval", type=float, default=1.0)
    _add_db_flags(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_sweep = sub.add_parser(
        "sweep", help="run a design x scale grid in parallel, cached")
    p_sweep.add_argument("--benchmark", choices=("tpcc", "tpce", "tpch"),
                         default="tpcc")
    p_sweep.add_argument("--scales", default="1000",
                         help="comma-separated scales (warehouses, "
                              "customers/1000, or SF)")
    p_sweep.add_argument("--designs", default="noSSD,DW,LC,TAC",
                         help="comma-separated designs (see `designs`)")
    p_sweep.add_argument("--profile", choices=sorted(SCALE_PROFILES),
                         default="small")
    p_sweep.add_argument("--duration", type=float, default=30.0,
                         help="virtual seconds per OLTP run")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (runs in-process when 1)")
    p_sweep.add_argument("--workers-per-run", type=int, default=16,
                         help="closed-loop clients inside each run")
    p_sweep.add_argument("--dirty-threshold", type=float, default=None)
    p_sweep.add_argument("--checkpoint-interval", type=float, default=None)
    p_sweep.add_argument("--ftl", action="store_true",
                         help="model the SSD's internals in every run "
                              "(erase blocks, GC, write amplification)")
    p_sweep.add_argument("--seed", type=int, default=20110612)
    p_sweep.add_argument("--cache-dir", default=None,
                         help="run-cache directory (default .repro-cache, "
                              "or $REPRO_CACHE_DIR)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="always recompute; do not read or write the "
                              "cache")
    p_sweep.add_argument("--output", metavar="FILE", default=None,
                         help="write the merged metric table as JSON")
    _add_db_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_tpch = sub.add_parser("tpch", help="run TPC-H power+throughput tests")
    p_tpch.add_argument("--sf", type=int, choices=(30, 100), default=30)
    _add_common(p_tpch)
    _add_db_flags(p_tpch)
    p_tpch.set_defaults(func=cmd_tpch)

    p_analyze = sub.add_parser(
        "analyze", help="attribute tail latency from --trace output")
    p_analyze.add_argument("traces", nargs="+", metavar="TRACE",
                           help="trace files from --trace (JSONL or Chrome "
                                "JSON; one per design)")
    p_analyze.add_argument("--tail", default="50,95,99",
                           help="comma-separated percentiles to decompose "
                                "(default: 50,95,99)")
    p_analyze.add_argument("--txn-type", default=None,
                           help="restrict attribution to one transaction "
                                "type (e.g. new_order)")
    p_analyze.add_argument("--html", metavar="FILE", default=None,
                           help="write a self-contained HTML report")
    p_analyze.add_argument("--bench", metavar="FILE", default=None,
                           help="write a machine-readable BENCH_*.json "
                                "snapshot")
    p_analyze.add_argument("--workload", default="oltp",
                           help="workload label for the reports "
                                "(default: oltp)")
    _add_db_flags(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    from repro.runstore.cli import (add_runs_arguments, add_serve_arguments,
                                    cmd_runs, cmd_serve)
    p_runs = sub.add_parser(
        "runs", help="query the run database (list/show/compare/regress)")
    add_runs_arguments(p_runs)
    p_runs.set_defaults(func=cmd_runs)

    p_serve = sub.add_parser(
        "serve", help="HTML dashboard + JSON API over the run database")
    add_serve_arguments(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_lint = sub.add_parser(
        "lint", help="run the repo-specific AST invariant checker")
    from repro.statics.cli import add_lint_arguments
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
