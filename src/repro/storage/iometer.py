"""Iometer-style device measurement, regenerating the paper's Table 1.

The paper measured maximum sustainable IOPS for 8 KB I/Os with Iometer
(one outstanding I/O per disk).  :func:`measure_iops` does the equivalent
against our device models: one closed-loop worker per channel, each
issuing back-to-back 1-page I/Os of a single :class:`IoKind` for a fixed
virtual duration, reporting completed I/Os per second.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict

from repro.sim import Environment
from repro.storage.device import Device
from repro.storage.hdd import HddArray
from repro.storage.request import IoKind, IORequest
from repro.storage.ssd import Ssd


def _worker(env: Environment, device: Device, kind: IoKind, addresses,
            counter: Dict[str, int]):
    while True:
        request = IORequest(kind, next(addresses))
        yield device.submit(request)
        counter["completed"] += 1


def _address_stream(device: Device, kind: IoKind, span_pages: int,
                    worker: int, nworkers: int):
    """Page addresses matching the access pattern being measured.

    Random I/Os stride so consecutive ops land on different stripe units;
    sequential I/Os give each worker its own contiguous region (as Iometer
    does with one outstanding I/O per disk), phase-shifted by one stripe so
    concurrent workers start on different drives of an array.
    """
    stripe = getattr(device, "stripe_pages", 1)
    ndisks = getattr(device, "ndisks", None)
    if kind.random:
        # Large co-prime stride scatters accesses across all disks.
        stride = stripe * 7 + 1
        return ((worker + i * nworkers) * stride % span_pages
                for i in itertools.count())
    if ndisks is None:
        region = span_pages // max(nworkers, 1)
        base = worker * region
        return (base + (i % region) for i in itertools.count())
    # Striped array: the paper measured one sequential stream per drive
    # ("#outstanding I/Os = 1 for each disk"), so worker i walks exactly
    # the addresses that land on drive (i % ndisks).
    drive = worker % ndisks

    def per_drive():
        for i in itertools.count():
            block, offset = divmod(i, stripe)
            yield (block * stripe * ndisks + drive * stripe + offset) % span_pages

    return per_drive()


def measure_iops(make_device, kind: IoKind, duration: float = 20.0,
                 workers_per_channel: int = 1,
                 span_pages: int = 1 << 20) -> float:
    """Measure sustained IOPS of one I/O class on a fresh device.

    ``make_device`` is a callable ``Environment -> Device`` so each
    measurement starts from an idle device and a clean virtual clock.
    """
    env = Environment()
    device = make_device(env)
    nchannels = getattr(device, "ndisks", None) or device.channels.capacity
    counter = {"completed": 0}
    nworkers = nchannels * workers_per_channel
    for worker in range(nworkers):
        addresses = _address_stream(device, kind, span_pages, worker, nworkers)
        env.process(_worker(env, device, kind, addresses, counter))
    env.run(until=duration)
    return counter["completed"] / duration


@dataclass
class Table1:
    """The eight cells of the paper's Table 1."""

    hdd_random_read: float
    hdd_sequential_read: float
    hdd_random_write: float
    hdd_sequential_write: float
    ssd_random_read: float
    ssd_sequential_read: float
    ssd_random_write: float
    ssd_sequential_write: float

    #: Values reported by the paper, for side-by-side comparison.
    PAPER = {
        "hdd_random_read": 1_015,
        "hdd_sequential_read": 26_370,
        "hdd_random_write": 895,
        "hdd_sequential_write": 9_463,
        "ssd_random_read": 12_182,
        "ssd_sequential_read": 15_980,
        "ssd_random_write": 12_374,
        "ssd_sequential_write": 14_965,
    }

    def rows(self):
        """Yield ``(cell_name, measured, paper)`` triples."""
        for name, paper_value in self.PAPER.items():
            yield name, getattr(self, name), paper_value


def run_table1(duration: float = 20.0) -> Table1:
    """Regenerate Table 1 by measuring both devices in all four classes."""
    cells = {}
    for prefix, factory in (("hdd", HddArray), ("ssd", Ssd)):
        for kind in IoKind:
            name = f"{prefix}_{'random' if kind.random else 'sequential'}_{kind.direction}"
            cells[name] = measure_iops(lambda env: factory(env), kind, duration)
    return Table1(**cells)
