"""Base class for simulated storage devices.

A device is a set of independent *channels* (servers) fed from a FIFO
queue.  Submitting an :class:`~repro.storage.request.IORequest` returns an
event that triggers when the transfer finishes; the elapsed virtual time is
``queueing + service``, with the service time given by each device's
:meth:`Device.service_time` model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim import Environment, Event, Resource
from repro.storage.request import IoKind, IORequest, PAGE_SIZE_BYTES
from repro.telemetry import NULL_TELEMETRY

#: Label values used for ``io_*_total{kind=...}`` metrics and trace names.
KIND_LABELS = {kind: kind.name.lower() for kind in IoKind}


@dataclass
class DeviceStats:
    """Cumulative per-device counters."""

    completed: int = 0
    pages_read: int = 0
    pages_written: int = 0
    busy_time: float = 0.0
    by_kind: Dict[IoKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in IoKind})

    def record(self, request: IORequest, service: float) -> None:
        """Account one completed request."""
        self.completed += 1
        self.by_kind[request.kind] += 1
        if request.kind.is_read:
            self.pages_read += request.npages
        else:
            self.pages_written += request.npages
        self.busy_time += service

    @property
    def bytes_read(self) -> int:
        """Total bytes read from the device."""
        return self.pages_read * PAGE_SIZE_BYTES

    @property
    def bytes_written(self) -> int:
        """Total bytes written to the device."""
        return self.pages_written * PAGE_SIZE_BYTES


class TrafficRecorder:
    """Time-bucketed read/write traffic, for the paper's Figure 8.

    Buckets are ``bucket_seconds`` wide; each completed request adds its
    page count to the read or write series of the bucket it completed in.
    """

    def __init__(self, bucket_seconds: float):
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        self._reads: Dict[int, int] = {}
        self._writes: Dict[int, int] = {}

    def record(self, when: float, request: IORequest) -> None:
        """Add a completed request to its time bucket."""
        bucket = int(when / self.bucket_seconds)
        series = self._reads if request.kind.is_read else self._writes
        series[bucket] = series.get(bucket, 0) + request.npages

    def series(self, until: Optional[float] = None) -> List[Tuple[float, float, float]]:
        """Return ``(bucket_start_time, read_MBps, write_MBps)`` triples."""
        if not self._reads and not self._writes:
            return []
        last = max(list(self._reads) + list(self._writes))
        if until is not None:
            # ceil, not floor: a run ending mid-bucket still owns that
            # (partial) bucket — flooring dropped the final one and
            # truncated the Figure 8 series.
            last = max(last, math.ceil(until / self.bucket_seconds) - 1)
        scale = PAGE_SIZE_BYTES / (1 << 20) / self.bucket_seconds
        return [
            (
                bucket * self.bucket_seconds,
                self._reads.get(bucket, 0) * scale,
                self._writes.get(bucket, 0) * scale,
            )
            for bucket in range(last + 1)
        ]


class Device:
    """A queueing-server model of a storage device.

    Subclasses define the channel count and override
    :meth:`service_time`.  The in-flight I/O count (queued + in service)
    is exposed because the SSD throttle-control optimization (paper §3.3.2)
    monitors the SSD queue length.
    """

    def __init__(self, env: Environment, name: str, channels: int):
        self.env = env
        self.name = name
        self.channels = Resource(env, capacity=channels)
        self.stats = DeviceStats()
        self.traffic: Optional[TrafficRecorder] = None
        self._outstanding = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector`.
        self.faults = None
        self.attach_telemetry(NULL_TELEMETRY)

    def attach_faults(self, injector) -> None:
        """Bind a fault injector; subsequent I/Os may fail or straggle."""
        self.faults = injector

    def reset(self) -> None:
        """Forget in-flight work (simulated power failure).

        The event queue holding the serving processes is wiped separately
        by :meth:`~repro.sim.environment.Environment.wipe`; this clears
        the device-side bookkeeping those processes would have unwound.
        """
        self.channels = Resource(self.env, capacity=self.channels.capacity)
        self._outstanding = 0

    def attach_telemetry(self, telemetry) -> None:
        """Bind a telemetry sink and resolve this device's instruments."""
        self.telemetry = telemetry
        self._tracer = telemetry.tracer
        self._trace_track = f"device:{self.name}"
        registry = telemetry.registry
        pages = registry.counter(
            "io_pages_total", "Pages transferred per device and I/O kind",
            labelnames=("device", "kind"))
        requests = registry.counter(
            "io_requests_total", "Completed I/Os per device and I/O kind",
            labelnames=("device", "kind"))
        self._tm_pages = {
            kind: pages.labels(device=self.name, kind=label)
            for kind, label in KIND_LABELS.items()}
        self._tm_requests = {
            kind: requests.labels(device=self.name, kind=label)
            for kind, label in KIND_LABELS.items()}
        registry.gauge(
            "device_pending_ios", "I/Os submitted but not yet completed",
            labelnames=("device",)).labels(device=self.name).set_function(
                lambda: self._outstanding)

    @property
    def pending(self) -> int:
        """I/Os submitted but not yet completed (the queue length the
        SSD throttle-control optimization monitors, §3.3.2)."""
        return self._outstanding

    def attach_traffic_recorder(self, bucket_seconds: float) -> TrafficRecorder:
        """Start recording time-bucketed traffic; returns the recorder."""
        self.traffic = TrafficRecorder(bucket_seconds)
        return self.traffic

    def service_time(self, request: IORequest) -> float:
        """Virtual seconds one channel needs to serve ``request``."""
        raise NotImplementedError

    def submit(self, request: IORequest) -> Event:
        """Submit a request; the returned event triggers on completion
        (or *fails* with an :class:`~repro.faults.errors.IoFault` when a
        fault injector rejects or aborts the I/O)."""
        request.submitted_at = self.env.now
        done = self.env.event()
        if self.faults is not None:
            error = self.faults.on_submit(request)
            if error is not None:
                done.fail(error)
                return done
        self._outstanding += 1
        self.env.process(self._serve(request, done))
        return done

    def _serve(self, request: IORequest, done: Event):
        failure = None
        env = self.env
        channels = self.channels
        slot = channels.request()
        try:
            yield slot
            service = self.service_time(request)
            faults = self.faults
            if faults is not None:
                extra = faults.pre_service_delay(request, service)
                if extra > 0:
                    yield env.timeout(extra)
            yield env.timeout(service)
            if faults is not None:
                failure = faults.on_complete(request)
            if failure is None:
                request.completed_at = env._now
                self.stats.record(request, service)
                self._tm_requests[request.kind].inc()
                self._tm_pages[request.kind].inc(request.npages)
                if self._tracer.enabled:
                    self._tracer.complete(KIND_LABELS[request.kind],
                                          request.submitted_at,
                                          env._now, "io",
                                          self._trace_track,
                                          ctx=request.ctx)
                if self.traffic is not None:
                    self.traffic.record(env._now, request)
        finally:
            # Release + decrement must survive any exit path: a leaked
            # channel would starve the queue, and a leaked outstanding
            # count would permanently inflate ``pending`` and wedge the
            # §3.3.2 throttle shut.
            channels.release(slot)
            self._outstanding -= 1
        if failure is not None:
            done.fail(failure)
        else:
            done.succeed(request)

    def read(self, address: int, npages: int = 1, random: bool = True,
             tag=None, ctx=None) -> Event:
        """Convenience wrapper building and submitting a read request."""
        kind = IoKind.of("read", random)
        return self.submit(IORequest(kind, address, npages, tag=tag, ctx=ctx))

    def write(self, address: int, npages: int = 1, random: bool = True,
              tag=None, ctx=None) -> Event:
        """Convenience wrapper building and submitting a write request."""
        kind = IoKind.of("write", random)
        return self.submit(IORequest(kind, address, npages, tag=tag, ctx=ctx))
