"""Flash SSD model.

Models the paper's 160 GB SLC Fusion-io card as a multi-channel flash
device: several independent channels, nearly seek-free access, and only a
modest gap between random and sequential throughput (the property that
makes caching *randomly* accessed pages on it profitable while leaving
sequential scans to the striped disks).

Constants are calibrated to the paper's Table 1 aggregates at 8 KB:
12,182 random-read / 15,980 sequential-read / 12,374 random-write /
14,965 sequential-write IOPS.
"""

from __future__ import annotations

from repro.sim import Environment
from repro.storage.device import Device
from repro.storage.request import IORequest

#: Number of independent flash channels the card exposes.
DEFAULT_CHANNELS = 8

# Per-channel service times (seconds) derived from Table 1 aggregates:
#   aggregate IOPS = channels / service_time  =>  service = channels / IOPS.
_PER_PAGE_SEQ_READ = DEFAULT_CHANNELS / 15_980.0
_PER_PAGE_SEQ_WRITE = DEFAULT_CHANNELS / 14_965.0
# A random 1-page op costs the sequential per-page time plus a small
# lookup/translation overhead that accounts for the random-vs-seq gap.
_RANDOM_READ_OVERHEAD = DEFAULT_CHANNELS / 12_182.0 - _PER_PAGE_SEQ_READ
_RANDOM_WRITE_OVERHEAD = DEFAULT_CHANNELS / 12_374.0 - _PER_PAGE_SEQ_WRITE


class Ssd(Device):
    """A multi-channel flash SSD."""

    def __init__(self, env: Environment, channels: int = DEFAULT_CHANNELS,
                 name: str = "ssd"):
        super().__init__(env, name, channels=channels)
        # Service times scale with the channel count so that the aggregate
        # IOPS stays calibrated to Table 1 whatever parallelism is chosen.
        scale = channels / DEFAULT_CHANNELS
        self._per_page_read = _PER_PAGE_SEQ_READ * scale
        self._per_page_write = _PER_PAGE_SEQ_WRITE * scale
        self._random_read_overhead = _RANDOM_READ_OVERHEAD * scale
        self._random_write_overhead = _RANDOM_WRITE_OVERHEAD * scale

    def service_time(self, request: IORequest) -> float:
        """Per-channel service time for ``request``."""
        if request.kind.is_read:
            per_page, overhead = self._per_page_read, self._random_read_overhead
        else:
            per_page, overhead = self._per_page_write, self._random_write_overhead
        return (overhead if request.kind.random else 0.0) + per_page * request.npages
