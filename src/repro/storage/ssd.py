"""Flash SSD model.

Models the paper's 160 GB SLC Fusion-io card as a multi-channel flash
device: several independent channels, nearly seek-free access, and only a
modest gap between random and sequential throughput (the property that
makes caching *randomly* accessed pages on it profitable while leaving
sequential scans to the striped disks).

Constants are calibrated to the paper's Table 1 aggregates at 8 KB:
12,182 random-read / 15,980 sequential-read / 12,374 random-write /
14,965 sequential-write IOPS.

Two service-time models are available:

* **Black box** (default, ``ftl=None``): one flat latency per op kind,
  exactly the paper-era model.  Behaviour is unchanged from before the
  FTL existed.
* **FTL-backed** (``ftl=FtlConfig(...)``): reads, programs, and erases
  are billed separately, and every host write is translated by a
  :class:`~repro.storage.ftl.FlashTranslationLayer` into the NAND work
  it really costs — including garbage-collection migration and erases,
  which land as latency on the write that triggered them.  This is what
  lets ``repro analyze`` report per-design write amplification.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Environment
from repro.storage.device import Device
from repro.storage.ftl import FlashTranslationLayer, FtlConfig
from repro.storage.request import IORequest

#: Number of independent flash channels the card exposes.
DEFAULT_CHANNELS = 8

# Per-channel service times (seconds) derived from Table 1 aggregates:
#   aggregate IOPS = channels / service_time  =>  service = channels / IOPS.
_PER_PAGE_SEQ_READ = DEFAULT_CHANNELS / 15_980.0
_PER_PAGE_SEQ_WRITE = DEFAULT_CHANNELS / 14_965.0
# A random 1-page op costs the sequential per-page time plus a small
# lookup/translation overhead that accounts for the random-vs-seq gap.
_RANDOM_READ_OVERHEAD = DEFAULT_CHANNELS / 12_182.0 - _PER_PAGE_SEQ_READ
_RANDOM_WRITE_OVERHEAD = DEFAULT_CHANNELS / 12_374.0 - _PER_PAGE_SEQ_WRITE
#: Block-erase time (seconds, per channel at DEFAULT_CHANNELS).  SLC
#: block erases run 1.5–2 ms on paper-era flash — several times a page
#: program; under the FTL model they surface as GC stalls on writes.
_BLOCK_ERASE = 0.002


class Ssd(Device):
    """A multi-channel flash SSD, optionally with modelled internals."""

    def __init__(self, env: Environment, channels: int = DEFAULT_CHANNELS,
                 name: str = "ssd", ftl: Optional[FtlConfig] = None,
                 logical_pages: int = 0,
                 erase_time: Optional[float] = None):
        # Service times scale with the channel count so that the aggregate
        # IOPS stays calibrated to Table 1 whatever parallelism is chosen.
        scale = channels / DEFAULT_CHANNELS
        self._per_page_read = _PER_PAGE_SEQ_READ * scale
        self._per_page_program = _PER_PAGE_SEQ_WRITE * scale
        self._random_read_overhead = _RANDOM_READ_OVERHEAD * scale
        self._random_write_overhead = _RANDOM_WRITE_OVERHEAD * scale
        self._block_erase = (_BLOCK_ERASE if erase_time is None
                             else erase_time) * scale
        self._channels_total = channels
        self._channels_dead = 0
        self._degrade = 1.0
        #: Modelled internals, or None for the flat black-box timing.
        #: Set before ``Device.__init__`` — it resolves telemetry, and
        #: :meth:`attach_telemetry` registers FTL gauges when present.
        self.ftl: Optional[FlashTranslationLayer] = None
        if ftl is not None:
            if logical_pages < 1:
                raise ValueError(
                    "an FTL-backed Ssd needs logical_pages >= 1")
            self.ftl = FlashTranslationLayer(logical_pages, ftl)
        super().__init__(env, name, channels=channels)

    def attach_telemetry(self, telemetry) -> None:
        super().attach_telemetry(telemetry)
        registry = telemetry.registry
        registry.gauge(
            "ssd_channels_alive", "Flash channels still in service"
        ).set_function(lambda: self._channels_total - self._channels_dead)
        ftl = self.ftl
        if ftl is None:
            return
        registry.gauge(
            "ftl_waf", "Device write amplification (NAND/host writes)"
        ).set_function(lambda: ftl.waf)
        registry.gauge(
            "ftl_erases_total", "Erase-block erasures performed by GC"
        ).set_function(lambda: ftl.stats.erases)
        registry.gauge(
            "ftl_free_blocks", "Erase blocks in the FTL free pool"
        ).set_function(lambda: ftl.free_block_count)
        registry.gauge(
            "ftl_wear_spread", "Max minus min per-block erase count"
        ).set_function(lambda: ftl.wear_spread)

    # ------------------------------------------------------------------
    # Channel failures (fault plan ``ssd_chan_die``)
    # ------------------------------------------------------------------

    @property
    def channels_alive(self) -> int:
        """Flash channels still in service."""
        return self._channels_total - self._channels_dead

    def fail_channels(self, count: int = 1) -> int:
        """Take ``count`` channels out of service; returns those left.

        A mid-flight queueing resource cannot shrink, so a dead channel
        is modelled as a proportional service-time inflation on the
        survivors (identical aggregate bandwidth loss).  Zero survivors
        means the device is dead — the fault plan escalates that to a
        full device kill + detach.
        """
        self._channels_dead = min(self._channels_total,
                                  self._channels_dead + max(0, count))
        alive = self._channels_total - self._channels_dead
        if alive > 0:
            self._degrade = self._channels_total / alive
        return alive

    # ------------------------------------------------------------------
    # TRIM (metadata-only; what keeps the LS design's GC victims empty)
    # ------------------------------------------------------------------

    def trim(self, address: int, npages: int = 1) -> None:
        """Declare ``npages`` logical pages from ``address`` dead.

        TRIM is a queued metadata command whose cost is negligible next
        to programs and erases, so it is free in virtual time; its value
        is entirely in the FTL bookkeeping.  A no-op without an FTL.
        """
        if self.ftl is not None:
            for page in range(npages):
                self.ftl.trim(address + page)

    # ------------------------------------------------------------------
    # Service-time model
    # ------------------------------------------------------------------

    def service_time(self, request: IORequest) -> float:
        """Per-channel service time for ``request``.

        Called exactly once per request (by ``Device._serve`` after the
        channel grant), so the FTL accounting below runs once per I/O.
        """
        if self.ftl is None:
            if request.kind.is_read:
                per_page = self._per_page_read
                overhead = self._random_read_overhead
            else:
                per_page = self._per_page_program
                overhead = self._random_write_overhead
            service = ((overhead if request.kind.random else 0.0)
                       + per_page * request.npages)
        else:
            service = self._ftl_service(request)
        if self._channels_dead:
            service *= self._degrade
        return service

    def _ftl_service(self, request: IORequest) -> float:
        """Bill the NAND work the FTL says this request really costs."""
        if request.kind.is_read:
            reads = 0
            for page in range(request.npages):
                reads += self.ftl.host_read(request.address + page).reads
            return ((self._random_read_overhead if request.kind.random
                     else 0.0) + reads * self._per_page_read)
        programs = reads = erases = 0
        for page in range(request.npages):
            work = self.ftl.host_write(request.address + page)
            programs += work.programs
            reads += work.reads
            erases += work.erases
        if erases and self._tracer.enabled:
            self._tracer.instant(
                "ftl_gc", "io", self._trace_track,
                {"erases": erases, "migrated_reads": reads,
                 "programs": programs})
        return ((self._random_write_overhead if request.kind.random else 0.0)
                + programs * self._per_page_program
                + reads * self._per_page_read
                + erases * self._block_erase)
