"""Striped hard-disk-array model.

Models the paper's data volume: eight 1 TB 7,200 RPM SATA drives with the
database striped across them.  Each drive is a single server with a
seek-plus-transfer service time; a random I/O pays the seek, a sequential
one (read-ahead, group-cleaned writes) pays only per-page transfer.

The per-operation constants are calibrated so that the saturated 8-disk
aggregate matches the paper's Table 1 within a couple of percent:
1,015 random-read / 26,370 sequential-read / 895 random-write /
9,463 sequential-write IOPS at 8 KB.
"""

from __future__ import annotations

from typing import List

from repro.sim import Environment, Event, Resource
from repro.storage.device import Device, KIND_LABELS
from repro.storage.request import IORequest

#: Pages per stripe unit.  The paper stripes file groups across the disks;
#: SQL Server allocates in 8-page (64 KB) extents, so we stripe by extent.
DEFAULT_STRIPE_PAGES = 8

# Per-disk service-time constants (seconds), derived from Table 1:
#   sequential read:   26,370/8 disks = 3,296 pages/s  -> 303.4 us/page
#   random read:        1,015/8      =   126.9 IOPS    -> 7.881 ms/op
#   sequential write:   9,463/8      = 1,182.9 pages/s -> 845.4 us/page
#   random write:         895/8      =   111.9 IOPS    -> 8.938 ms/op
_SEQ_READ_PER_PAGE = 1.0 / (26_370.0 / 8)
_SEQ_WRITE_PER_PAGE = 1.0 / (9_463.0 / 8)
_READ_SEEK = 8 / 1_015.0 - _SEQ_READ_PER_PAGE
_WRITE_SEEK = 8 / 895.0 - _SEQ_WRITE_PER_PAGE


class HddArray(Device):
    """A stripe set of identical hard drives.

    Page addresses are striped across the drives in ``stripe_pages`` units;
    a multi-page request is split into per-drive fragments that proceed in
    parallel, and the request completes when the slowest fragment does
    (this is what makes striped disks so strong at sequential reads, the
    effect the paper's admission policy is built around).
    """

    #: Per-drive LBA gap (pages) a drive can bridge without a full seek
    #: (~128 KB of short head movement).  Distances are measured in each
    #: drive's own block space, where a striped sequential stream is
    #: exactly contiguous.
    NEAR_PAGES = 16

    def __init__(self, env: Environment, ndisks: int = 8,
                 stripe_pages: int = DEFAULT_STRIPE_PAGES,
                 name: str = "hdd-array"):
        if ndisks < 1:
            raise ValueError(f"ndisks must be >= 1, got {ndisks}")
        super().__init__(env, name, channels=ndisks)
        self.ndisks = ndisks
        self.stripe_pages = stripe_pages
        self._disks: List[Resource] = [Resource(env, 1) for _ in range(ndisks)]
        # Per-drive head position: the page address just past the last
        # fragment each drive served.  Seek cost is *positional*: a
        # request pays the seek iff it is not near the head, whatever its
        # random/sequential tag says.  This is what makes concurrent
        # streams interleaving on one drive lose sequential bandwidth —
        # an effect the paper's TPC-H throughput test depends on.
        # Heads start parked far away so a drive's first I/O pays a seek.
        self._head: List[int] = [-(1 << 30)] * ndisks

    def disk_of(self, address: int) -> int:
        """Which drive holds page ``address``."""
        return (address // self.stripe_pages) % self.ndisks

    def lba_of(self, address: int) -> int:
        """Page address within its drive's own block space."""
        stripe_row = address // (self.stripe_pages * self.ndisks)
        return stripe_row * self.stripe_pages + address % self.stripe_pages

    def service_time(self, request: IORequest) -> float:
        """Service time of a single-drive fragment of ``request``.

        Uses the request's tag (kind) for the seek decision; the actual
        serving path (:meth:`_serve_one`) uses head position instead.
        """
        if request.kind.is_read:
            per_page, seek = _SEQ_READ_PER_PAGE, _READ_SEEK
        else:
            per_page, seek = _SEQ_WRITE_PER_PAGE, _WRITE_SEEK
        return (seek if request.kind.random else 0.0) + per_page * request.npages

    def _positional_service_time(self, fragment: IORequest,
                                 disk_index: int) -> float:
        """Seek iff the fragment is not near the drive's head position."""
        if fragment.kind.is_read:
            per_page, seek = _SEQ_READ_PER_PAGE, _READ_SEEK
        else:
            per_page, seek = _SEQ_WRITE_PER_PAGE, _WRITE_SEEK
        gap = abs(self.lba_of(fragment.address) - self._head[disk_index])
        seeking = gap > self.NEAR_PAGES
        return (seek if seeking else 0.0) + per_page * fragment.npages

    def submit(self, request: IORequest) -> Event:
        """Submit a request, splitting it into per-drive fragments."""
        request.submitted_at = self.env.now
        done = self.env.event()
        if self.faults is not None:
            error = self.faults.on_submit(request)
            if error is not None:
                done.fail(error)
                return done
        self._outstanding += 1
        fragments = self._split(request)
        self.env.process(self._serve_fragments(request, fragments, done))
        return done

    def reset(self) -> None:
        super().reset()
        self._disks = [Resource(self.env, 1) for _ in range(self.ndisks)]
        self._head = [-(1 << 30)] * self.ndisks

    def _split(self, request: IORequest) -> List[IORequest]:
        """Split a request into contiguous per-drive fragments."""
        if request.npages <= self.stripe_pages - (request.address % self.stripe_pages):
            return [request]
        fragments: List[IORequest] = []
        address, remaining = request.address, request.npages
        while remaining > 0:
            in_stripe = self.stripe_pages - (address % self.stripe_pages)
            take = min(in_stripe, remaining)
            fragments.append(IORequest(request.kind, address, take))
            address += take
            remaining -= take
        return fragments

    def _serve_fragments(self, request: IORequest, fragments, done: Event):
        failure = None
        try:
            if self.faults is not None:
                # Faults act on the whole request, not per fragment: one
                # straggling drive delays the stripe anyway.
                extra = self.faults.pre_service_delay(
                    request, self.service_time(request))
                if extra > 0:
                    yield self.env.timeout(extra)
            pending = [
                self.env.process(self._serve_one(fragment))
                for fragment in fragments
            ]
            yield self.env.all_of(pending)
            if self.faults is not None:
                failure = self.faults.on_complete(request)
            if failure is None:
                request.completed_at = self.env.now
                self._tm_requests[request.kind].inc()
                if self._tracer.enabled:
                    self._tracer.complete(KIND_LABELS[request.kind],
                                          request.submitted_at, self.env.now,
                                          "io", self._trace_track,
                                          ctx=request.ctx)
        finally:
            # Same rule as Device._serve: never leak the outstanding
            # count, or ``pending`` inflates and wedges the throttle.
            self._outstanding -= 1
        if failure is not None:
            done.fail(failure)
        else:
            done.succeed(request)

    def _serve_one(self, fragment: IORequest):
        disk_index = self.disk_of(fragment.address)
        disk = self._disks[disk_index]
        with disk.request() as slot:
            yield slot
            service = self._positional_service_time(fragment, disk_index)
            self._head[disk_index] = (self.lba_of(fragment.address)
                                      + fragment.npages)
            yield self.env.timeout(service)
            self.stats.record(fragment, service)
            self._tm_pages[fragment.kind].inc(fragment.npages)
            if self.traffic is not None:
                self.traffic.record(self.env.now, fragment)
