"""Simulated storage devices.

The paper's evaluation ran on 8 striped 7,200 RPM SATA HDDs and a 160 GB
SLC Fusion-io SSD; neither is available here, so this package models both
as queueing servers on the :mod:`repro.sim` kernel, calibrated so that an
Iometer-style measurement loop (:mod:`repro.storage.iometer`) reproduces
the sustained-IOPS figures of the paper's Table 1:

===========  ======  ======  ===========  ======  ======
READ         Ran.    Seq.    WRITE        Ran.    Seq.
===========  ======  ======  ===========  ======  ======
8 HDDs       1,015   26,370  8 HDDs       895     9,463
SSD          12,182  15,980  SSD          12,374  14,965
===========  ======  ======  ===========  ======  ======

(8 KB page-sized I/Os, disk write caching off.)
"""

from repro.storage.request import IoKind, IORequest
from repro.storage.device import Device, DeviceStats, TrafficRecorder
from repro.storage.hdd import HddArray
from repro.storage.ssd import Ssd
from repro.storage.iometer import measure_iops, run_table1

__all__ = [
    "Device",
    "DeviceStats",
    "HddArray",
    "IoKind",
    "IORequest",
    "Ssd",
    "TrafficRecorder",
    "measure_iops",
    "run_table1",
]
