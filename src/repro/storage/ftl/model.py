"""A page-mapping FTL with greedy garbage collection.

Geometry: the logical space (the SSD buffer pool's S frames) sits on a
slightly larger physical space of erase blocks (*over-provisioning*).
Host writes always *program* the next free page of the active block —
flash cannot overwrite in place — and the old physical page of the
logical address is merely marked invalid.  When the free-block pool runs
low, garbage collection picks the closed block with the fewest valid
pages (greedy victim selection), migrates those survivors to a separate
GC append stream, and erases the block.

Every migration is a NAND write the host never asked for: the ratio
``nand_writes / host_writes`` is the write amplification factor (WAF)
this subsystem exists to measure.  Random in-place traffic (the paper's
CW/DW/LC designs) leaves victims full of valid pages and amplifies;
sequential log-structured traffic with TRIM (the LS design) leaves
victims empty and stays near 1.0.

Wear leveling is implicit in allocation: the free block with the lowest
erase count is always programmed next, so erases spread across blocks.

The model is exact, deterministic, and synchronous — no randomness, no
simulated time.  Callers convert the returned :class:`FtlWork` into
service time (:meth:`repro.storage.ssd.Ssd.service_time`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

#: Slot value marking a physical page that holds no valid logical page.
_INVALID = -1


@dataclass(frozen=True)
class FtlConfig:
    """Geometry and GC policy knobs for the FTL model."""

    #: Pages per erase block (the erase granularity).
    pages_per_block: int = 32
    #: Over-provisioning: physical space exceeds logical by this ratio.
    #: 0.28 matches the paper-era Fusion-io card's 160 GB raw / 140 GB
    #: usable split that the reproduction already encodes in its scale
    #: profiles.
    op_ratio: float = 0.28
    #: GC starts when the free-block pool drops below this many blocks.
    gc_low_water_blocks: int = 2

    def __post_init__(self) -> None:
        if self.pages_per_block < 2:
            raise ValueError(
                f"pages_per_block must be >= 2, got {self.pages_per_block}")
        if self.op_ratio <= 0.0:
            raise ValueError(f"op_ratio must be > 0, got {self.op_ratio}")
        if self.gc_low_water_blocks < 1:
            raise ValueError(
                f"gc_low_water_blocks must be >= 1, "
                f"got {self.gc_low_water_blocks}")


@dataclass
class FtlStats:
    """Cumulative device-level counters (the WAF/wear evidence)."""

    host_writes: int = 0      # page writes the host submitted
    host_reads: int = 0       # page reads the host submitted
    nand_writes: int = 0      # pages actually programmed (host + GC)
    nand_reads: int = 0       # pages actually sensed (host + GC)
    erases: int = 0           # erase-block erasures
    gc_runs: int = 0          # GC victim reclamations
    gc_migrated_pages: int = 0  # valid pages GC relocated
    trims: int = 0            # logical pages invalidated by TRIM


@dataclass
class FtlWork:
    """NAND work one host operation triggered (converted to time)."""

    programs: int = 0
    reads: int = 0
    erases: int = 0


class FlashTranslationLayer:
    """Page-mapped FTL over ``logical_pages`` host-visible pages."""

    def __init__(self, logical_pages: int, config: FtlConfig = FtlConfig()):
        if logical_pages < 1:
            raise ValueError(
                f"logical_pages must be >= 1, got {logical_pages}")
        self.config = config
        self.logical_pages = logical_pages
        ppb = config.pages_per_block
        logical_blocks = -(-logical_pages // ppb)  # ceil division
        provisioned = -(-int(logical_pages * (1.0 + config.op_ratio)) // ppb)
        # GC needs room to breathe: beyond the logical blocks there must
        # be space for the low-water free pool, the two append streams,
        # and at least one block of slack for in-flight migration.
        floor = logical_blocks + config.gc_low_water_blocks + 3
        self.nblocks = max(provisioned, floor)
        self.stats = FtlStats()
        #: lpn -> ppn for every logically valid page.
        self._mapping: Dict[int, int] = {}
        #: ppn -> lpn, or ``_INVALID`` for erased/stale physical pages.
        self._owner: List[int] = [_INVALID] * (self.nblocks * ppb)
        self._valid: List[int] = [0] * self.nblocks
        self._erase_count: List[int] = [0] * self.nblocks
        self._free_blocks: Set[int] = set(range(self.nblocks))
        # Host and GC append streams (block id, next slot); -1 = none.
        self._active = -1
        self._active_slot = 0
        self._gc_active = -1
        self._gc_slot = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def waf(self) -> float:
        """Write amplification: NAND writes per host write."""
        if self.stats.host_writes == 0:
            return 0.0
        return self.stats.nand_writes / self.stats.host_writes

    @property
    def free_block_count(self) -> int:
        """Blocks in the erased free pool."""
        return len(self._free_blocks)

    @property
    def mapped_pages(self) -> int:
        """Logical pages currently holding valid data."""
        return len(self._mapping)

    def erase_counts(self) -> List[int]:
        """Per-block erase counts (the wear histogram)."""
        return list(self._erase_count)

    @property
    def wear_spread(self) -> int:
        """Max minus min per-block erase count (wear-leveling quality)."""
        return max(self._erase_count) - min(self._erase_count)

    def snapshot(self) -> Dict[str, object]:
        """Full deterministic state, for byte-identical-replay tests."""
        return {
            "mapping": dict(self._mapping),
            "erase_counts": list(self._erase_count),
            "free_blocks": sorted(self._free_blocks),
            "active": (self._active, self._active_slot),
            "gc_active": (self._gc_active, self._gc_slot),
            "stats": vars(self.stats).copy(),
        }

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------

    def host_read(self, lpn: int) -> FtlWork:
        """Account one host page read (one NAND sense)."""
        self._check_lpn(lpn)
        self.stats.host_reads += 1
        self.stats.nand_reads += 1
        return FtlWork(reads=1)

    def host_write(self, lpn: int) -> FtlWork:
        """One host page write: invalidate, program, GC if needed.

        Returns all NAND work charged to this write — including any
        garbage collection it triggered, so the GC cost lands as latency
        on the write that made it necessary (the foreground GC stall a
        real device exhibits).
        """
        self._check_lpn(lpn)
        work = FtlWork()
        self.stats.host_writes += 1
        self._invalidate(lpn)
        self._program(lpn, work, gc=False)
        while (len(self._free_blocks) < self.config.gc_low_water_blocks
               and self._collect_once(work)):
            pass
        return work

    def trim(self, lpn: int) -> None:
        """Host declares ``lpn`` dead: drop the mapping, free the page.

        TRIM is a metadata command — no NAND work — but it is what keeps
        a log-structured writer's GC victims empty.
        """
        self._check_lpn(lpn)
        if lpn in self._mapping:
            self._invalidate(lpn)
            self.stats.trims += 1

    def force_gc(self, blocks: int = 1) -> FtlWork:
        """Reclaim up to ``blocks`` victims now (fault injection hook)."""
        work = FtlWork()
        for _ in range(max(0, blocks)):
            if not self._collect_once(work):
                break
        return work

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"lpn {lpn} outside logical space [0, {self.logical_pages})")

    def _invalidate(self, lpn: int) -> None:
        ppn = self._mapping.pop(lpn, _INVALID)
        if ppn != _INVALID:
            self._owner[ppn] = _INVALID
            self._valid[ppn // self.config.pages_per_block] -= 1

    def _take_free_block(self) -> int:
        """Wear leveling: always program the least-erased free block."""
        if not self._free_blocks:
            raise RuntimeError(
                "FTL free-block pool exhausted — over-provisioning too "
                "small for the write pattern")
        block = min(self._free_blocks,
                    key=lambda b: (self._erase_count[b], b))
        self._free_blocks.discard(block)
        return block

    def _program(self, lpn: int, work: FtlWork, gc: bool) -> None:
        """Append ``lpn`` to the host or GC write stream."""
        ppb = self.config.pages_per_block
        if gc:
            if self._gc_active < 0 or self._gc_slot == ppb:
                self._gc_active = self._take_free_block()
                self._gc_slot = 0
            block, slot = self._gc_active, self._gc_slot
            self._gc_slot += 1
        else:
            if self._active < 0 or self._active_slot == ppb:
                self._active = self._take_free_block()
                self._active_slot = 0
            block, slot = self._active, self._active_slot
            self._active_slot += 1
        ppn = block * ppb + slot
        self._owner[ppn] = lpn
        self._mapping[lpn] = ppn
        self._valid[block] += 1
        work.programs += 1
        self.stats.nand_writes += 1

    def _collect_once(self, work: FtlWork) -> bool:
        """Greedy GC: reclaim the closed block with the fewest valid
        pages, migrating survivors to the GC stream.  Returns False when
        no block is reclaimable (all free or appending)."""
        victim = -1
        victim_key = (0, 0, 0)
        for block in range(self.nblocks):
            if (block in self._free_blocks or block == self._active
                    or block == self._gc_active):
                continue
            key = (self._valid[block], self._erase_count[block], block)
            if victim < 0 or key < victim_key:
                victim, victim_key = block, key
        if victim < 0:
            return False
        ppb = self.config.pages_per_block
        base = victim * ppb
        for slot in range(ppb):
            lpn = self._owner[base + slot]
            if lpn == _INVALID:
                continue
            # Relocate the survivor: read it off the victim, re-program
            # it in the GC stream.  The mapping moves transparently.
            self._owner[base + slot] = _INVALID
            self._valid[victim] -= 1
            work.reads += 1
            self.stats.nand_reads += 1
            self._program(lpn, work, gc=True)
            self.stats.gc_migrated_pages += 1
        assert self._valid[victim] == 0, (
            f"GC left valid pages behind in block {victim}")
        self._erase_count[victim] += 1
        self._free_blocks.add(victim)
        work.erases += 1
        self.stats.erases += 1
        self.stats.gc_runs += 1
        return True

    # ------------------------------------------------------------------
    # Invariants (property tests)
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Assert the mapping/valid-count/free-pool invariants hold."""
        ppb = self.config.pages_per_block
        for lpn, ppn in self._mapping.items():
            assert self._owner[ppn] == lpn, (
                f"mapping lpn {lpn} -> ppn {ppn} but owner is "
                f"{self._owner[ppn]}")
        per_block = [0] * self.nblocks
        for ppn, lpn in enumerate(self._owner):
            if lpn == _INVALID:
                continue
            assert self._mapping.get(lpn) == ppn, (
                f"owner ppn {ppn} -> lpn {lpn} but mapping says "
                f"{self._mapping.get(lpn)}")
            per_block[ppn // ppb] += 1
        assert per_block == self._valid, "per-block valid counts desynced"
        for block in self._free_blocks:
            assert self._valid[block] == 0, f"free block {block} has data"
            assert block not in (self._active, self._gc_active), (
                f"append stream block {block} is on the free list")
        assert len(self._mapping) == sum(self._valid), "mapping size desync"
        assert (self.stats.nand_writes
                == self.stats.host_writes + self.stats.gc_migrated_pages), (
            "nand_writes != host_writes + gc_migrated_pages")
