"""SSD internals: a flash translation layer (FTL) model.

The 2011 paper treats the SSD as a black box with Table 1 service times.
This package models what happens *underneath* those service times on
modern flash — a page-mapping FTL over erase blocks with background
garbage collection — so the reproduction can measure device-level write
amplification and wear per caching design ("How to Write to SSDs",
PVLDB 2026; see PAPERS.md and DESIGN.md §10).

The model is pure bookkeeping: it is deterministic, has no dependency on
the event kernel, and returns the NAND work (programs, reads, erases)
each host operation triggered.  :class:`repro.storage.ssd.Ssd` converts
that work into virtual service time.
"""

from repro.storage.ftl.model import (
    FlashTranslationLayer,
    FtlConfig,
    FtlStats,
    FtlWork,
)

__all__ = [
    "FlashTranslationLayer",
    "FtlConfig",
    "FtlStats",
    "FtlWork",
]
