"""I/O request descriptors shared by all device models."""

from __future__ import annotations

import enum
from typing import Any, Optional

#: Database page size used throughout the reproduction (SQL Server's 8 KB).
PAGE_SIZE_BYTES = 8192


class IoKind(enum.Enum):
    """The four I/O classes the paper's Table 1 distinguishes."""

    RANDOM_READ = ("read", True)
    SEQUENTIAL_READ = ("read", False)
    RANDOM_WRITE = ("write", True)
    SEQUENTIAL_WRITE = ("write", False)

    def __init__(self, direction: str, random: bool):
        self.direction = direction
        self.random = random

    @property
    def is_read(self) -> bool:
        """Whether this is a read class."""
        return self.direction == "read"

    @property
    def is_write(self) -> bool:
        """Whether this is a write class."""
        return self.direction == "write"

    @staticmethod
    def of(direction: str, random: bool) -> "IoKind":
        """Build the kind from a direction string and a randomness flag."""
        table = {
            ("read", True): IoKind.RANDOM_READ,
            ("read", False): IoKind.SEQUENTIAL_READ,
            ("write", True): IoKind.RANDOM_WRITE,
            ("write", False): IoKind.SEQUENTIAL_WRITE,
        }
        try:
            return table[(direction, random)]
        except KeyError:
            raise ValueError(f"unknown I/O direction {direction!r}") from None


class IORequest:
    """A single I/O against a device.

    ``address`` is a device-local page number (a disk page id for the HDD
    array, an SSD frame number for the SSD); ``npages`` contiguous pages are
    transferred starting there.  ``kind`` carries the random/sequential
    classification, which on real hardware determines whether a seek is
    paid and in this reproduction feeds both the service-time model and the
    SSD admission policy.

    A slotted plain class, not a dataclass: one is allocated per device
    I/O, which makes construction part of the simulator's hot path.
    """

    __slots__ = ("kind", "address", "npages", "tag", "ctx",
                 "submitted_at", "completed_at", "extra")

    def __init__(self, kind: IoKind, address: int, npages: int = 1,
                 tag: Any = None, ctx: Any = None,
                 submitted_at: Optional[float] = None,
                 completed_at: Optional[float] = None,
                 extra: Optional[dict] = None):
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        self.kind = kind
        self.address = address
        self.npages = npages
        self.tag = tag
        #: Trace context of the transaction (or background activity) that
        #: caused this I/O; carried onto the device's trace events.
        self.ctx = ctx
        #: Filled in by the device at completion time (virtual seconds).
        self.submitted_at = submitted_at
        self.completed_at = completed_at
        #: Scratch space for device models; allocated lazily by callers.
        self.extra = extra

    def __repr__(self) -> str:
        return (f"IORequest(kind={self.kind!r}, address={self.address}, "
                f"npages={self.npages})")

    @property
    def nbytes(self) -> int:
        """Transfer size in bytes."""
        return self.npages * PAGE_SIZE_BYTES

    @property
    def latency(self) -> float:
        """Queueing + service time, available after completion."""
        if self.submitted_at is None or self.completed_at is None:
            raise ValueError("request has not completed")
        return self.completed_at - self.submitted_at
