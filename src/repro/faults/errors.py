"""Fault exceptions and the shared retry policy.

These live in their own leaf module so that every layer that needs to
catch an injected fault (``storage``, ``engine``, ``core``) can import
them without pulling in the plan/injector machinery — and without any
import cycles, since this module depends on nothing else in the package.
"""

from __future__ import annotations


class IoFault(Exception):
    """An injected I/O failure (base class; transient unless subclassed)."""


class TransientIoError(IoFault):
    """A single I/O failed; retrying the same request may succeed."""


class DeviceDeadError(IoFault):
    """The device has failed permanently; no retry can succeed."""


#: Bounded-retry policy shared by :class:`~repro.engine.disk_manager
#: .DiskManager`, the WAL flusher and the SSD managers: up to
#: ``RETRY_LIMIT`` retries with exponential backoff starting at
#: ``RETRY_BASE_DELAY`` seconds, capped at ``RETRY_MAX_DELAY``.
RETRY_LIMIT = 4
RETRY_BASE_DELAY = 0.002
RETRY_MAX_DELAY = 0.05
