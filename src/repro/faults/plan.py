"""Fault plans: a parseable schedule of injected failures.

A plan is a comma-separated list of clauses, each a fault kind followed
by ``@t=<seconds>`` / ``:key=value`` parameters::

    ssd_die@t=30                    whole-SSD death at t=30
    transient:p=0.001               0.1% of I/Os fail transiently (all devices)
    transient:p=0.01:device=ssd     ... on the SSD only
    latency:p=0.005:x=20            0.5% of I/Os are 20x stragglers
    log_stall@t=10:dur=2            the log device freezes for 2 s at t=10
    disk_stall@t=10:dur=2           ... the data volume
    ssd_stall@t=10:dur=2            ... the SSD
    gc_stall@t=10:dur=0.5           forced GC burst + SSD freeze (FTL runs)
    ssd_chan_die@t=30:n=2           2 of the SSD's channels fail at t=30

``FaultPlan.parse("ssd_die@t=30,transient:p=0.001")`` builds the plan;
:meth:`FaultPlan.install` attaches one seeded :class:`~repro.faults
.injector.FaultInjector` per targeted device of a
:class:`~repro.harness.system.System` and spawns the timer processes
that trigger the scheduled faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, Generator, List, Optional, Set,
                    Tuple)

from repro.faults.injector import FaultInjector

if TYPE_CHECKING:
    from repro.harness.system import System

#: Known fault kinds and the parameters each accepts.
_KINDS: Dict[str, Set[str]] = {
    "transient": {"p", "device"},
    "latency": {"p", "x", "device"},
    "ssd_die": {"t"},
    "log_stall": {"t", "dur"},
    "disk_stall": {"t", "dur"},
    "ssd_stall": {"t", "dur"},
    "gc_stall": {"t", "dur"},
    "ssd_chan_die": {"t", "n"},
}
_DEVICES: Tuple[str, ...] = ("disk", "ssd", "log")
_STALL_DEVICE: Dict[str, str] = {"log_stall": "log", "disk_stall": "disk",
                                 "ssd_stall": "ssd"}


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault clause."""

    kind: str
    device: str = "all"          # disk | ssd | log | all
    p: float = 0.0               # per-I/O probability (transient/latency)
    factor: float = 10.0         # latency inflation (latency:x=)
    at: Optional[float] = None   # trigger time (ssd_die/.._stall:@t=)
    duration: float = 1.0        # stall window length (.._stall:dur=)
    count: int = 1               # failing channel count (ssd_chan_die:n=)


class FaultPlan:
    """A schedule of faults, installable onto a running system."""

    def __init__(self, specs: List[FaultSpec], seed: int = 20110612) -> None:
        self.specs = list(specs)
        self.seed = seed
        #: Populated by :meth:`install`: device role -> injector.
        self.injectors: Dict[str, FaultInjector] = {}

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str, seed: int = 20110612) -> "FaultPlan":
        """Parse a plan string (see the module docstring for the grammar)."""
        specs: List[FaultSpec] = []
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            specs.append(cls._parse_clause(clause))
        return cls(specs, seed=seed)

    @staticmethod
    def _parse_clause(clause: str) -> FaultSpec:
        parts = clause.replace("@", ":").split(":")
        kind = parts[0].strip()
        if kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {clause!r}; "
                f"choose from {sorted(_KINDS)}")
        params: Dict[str, str] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise ValueError(
                    f"malformed parameter {part!r} in {clause!r} "
                    f"(expected key=value)")
            key, value = part.split("=", 1)
            key, value = key.strip(), value.strip()
            if key not in _KINDS[kind]:
                raise ValueError(
                    f"fault {kind!r} does not take {key!r} "
                    f"(accepts {sorted(_KINDS[kind])})")
            params[key] = value

        def _float(key: str, default: Optional[float]) -> Optional[float]:
            if key not in params:
                return default
            try:
                return float(params[key])
            except ValueError:
                raise ValueError(
                    f"{key}={params[key]!r} in {clause!r} is not a number")

        device = params.get("device", "all")
        if device not in _DEVICES + ("all",):
            raise ValueError(
                f"unknown device {device!r} in {clause!r}; "
                f"choose from {_DEVICES + ('all',)}")
        if kind in _STALL_DEVICE:
            device = _STALL_DEVICE[kind]
        elif kind in ("ssd_die", "gc_stall", "ssd_chan_die"):
            device = "ssd"
        p = _float("p", 0.0)
        assert p is not None  # default is non-None
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p={p} in {clause!r} must be in [0, 1]")
        at = _float("t", None)
        timed = ("ssd_die", "gc_stall", "ssd_chan_die") + tuple(_STALL_DEVICE)
        if kind in timed and at is None:
            raise ValueError(f"fault {kind!r} requires @t=<seconds>")
        factor = _float("x", 10.0)
        duration = _float("dur", 1.0)
        assert factor is not None and duration is not None
        count_f = _float("n", 1.0)
        assert count_f is not None
        count = int(count_f)
        if count < 1:
            raise ValueError(f"n={count} in {clause!r} must be >= 1")
        return FaultSpec(kind=kind, device=device, p=p,
                         factor=factor, at=at, duration=duration,
                         count=count)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self, system: "System") -> Dict[str, FaultInjector]:
        """Attach injectors to ``system``'s devices and arm the timers."""
        env = system.env
        devices = {"disk": system.data_device, "ssd": system.ssd_device,
                   "log": system.wal.device}

        def injector(role: str) -> FaultInjector:
            if role not in self.injectors:
                rng = random.Random(f"{self.seed}:{role}")
                self.injectors[role] = FaultInjector(
                    env, devices[role], rng, telemetry=system.telemetry)
            return self.injectors[role]

        for spec in self.specs:
            roles = (_DEVICES if spec.device == "all" else (spec.device,))
            if spec.kind == "transient":
                for role in roles:
                    injector(role).transient_p = max(
                        injector(role).transient_p, spec.p)
            elif spec.kind == "latency":
                for role in roles:
                    inj = injector(role)
                    inj.latency_p = max(inj.latency_p, spec.p)
                    inj.latency_factor = spec.factor
            elif spec.kind == "ssd_die":
                assert spec.at is not None  # enforced by _parse_clause
                env.process(self._die_at(system, injector("ssd"), spec.at))
            elif spec.kind == "gc_stall":
                env.process(self._gc_stall_at(system, injector("ssd"), spec))
            elif spec.kind == "ssd_chan_die":
                env.process(self._chan_die_at(system, injector("ssd"), spec))
            else:  # *_stall
                env.process(self._stall_at(injector(spec.device), spec))
        return self.injectors

    @staticmethod
    def _die_at(system: "System", injector: FaultInjector,
                at: float) -> Generator[object, object, None]:
        env = injector.env
        if at > env.now:
            yield env.timeout(at - env.now)
        injector.kill()
        # Degradation is the SSD manager's job: detach and continue (or,
        # for LC, redo the dirty SSD pages from the log first).
        env.process(system.ssd_manager.detach())

    @staticmethod
    def _stall_at(injector: FaultInjector,
                  spec: FaultSpec) -> Generator[object, object, None]:
        env = injector.env
        at = spec.at
        assert at is not None  # enforced by _parse_clause
        if at > env.now:
            yield env.timeout(at - env.now)
        injector.stall(spec.duration)

    @staticmethod
    def _gc_stall_at(system: "System", injector: FaultInjector,
                     spec: FaultSpec) -> Generator[object, object, None]:
        """A garbage-collection storm: the device freezes while the FTL
        erases a burst of blocks (forced GC when the model is attached;
        a plain stall otherwise)."""
        env = injector.env
        at = spec.at
        assert at is not None  # enforced by _parse_clause
        if at > env.now:
            yield env.timeout(at - env.now)
        ftl = getattr(system.ssd_device, "ftl", None)
        if ftl is not None:
            ftl.force_gc()
        injector.stall(spec.duration)

    @staticmethod
    def _chan_die_at(system: "System", injector: FaultInjector,
                     spec: FaultSpec) -> Generator[object, object, None]:
        """Partial-failure mode: ``n`` of the SSD's channels die, slowing
        the survivors; losing every channel degenerates to ``ssd_die``."""
        env = injector.env
        at = spec.at
        assert at is not None  # enforced by _parse_clause
        if at > env.now:
            yield env.timeout(at - env.now)
        alive = system.ssd_device.fail_channels(spec.count)
        if alive == 0:
            injector.kill()
            env.process(system.ssd_manager.detach())
