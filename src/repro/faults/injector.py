"""Per-device fault injector.

A :class:`FaultInjector` sits beside one :class:`~repro.storage.device
.Device` and is consulted at three points of the request lifecycle:

* :meth:`on_submit` — before the request enters the queue (a dead device
  rejects immediately, without consuming a channel);
* :meth:`pre_service_delay` — once a channel is acquired (latency spikes
  and stall windows add virtual time here);
* :meth:`on_complete` — after the transfer (transient errors and
  mid-flight device death surface here, failing the completion event).

All randomness comes from one seeded :class:`random.Random` per injector
and is drawn in deterministic event order, so a faulted run replays
bit-identically for a given plan + seed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.faults.errors import DeviceDeadError, TransientIoError
from repro.telemetry import NULL_TELEMETRY

if TYPE_CHECKING:
    from repro.sim.environment import Environment
    from repro.storage.device import Device
    from repro.storage.request import IORequest
    from repro.telemetry import Telemetry


class FaultInjector:
    """Seeded fault source for a single device."""

    def __init__(self, env: "Environment", device: "Device",
                 rng: Optional[random.Random] = None,
                 telemetry: Optional["Telemetry"] = None) -> None:
        self.env = env
        self.device = device
        self.rng = rng or random.Random(0)
        self.dead = False
        #: Probability that a completed I/O reports a transient error.
        self.transient_p = 0.0
        #: Probability that an I/O is a straggler, and by which factor
        #: its service time is inflated.
        self.latency_p = 0.0
        self.latency_factor = 10.0
        #: Requests acquiring a channel before this instant wait it out
        #: (models firmware GC pauses / a hung controller).
        self.stall_until = 0.0
        self.stats: Dict[str, int] = {}
        telemetry = telemetry or NULL_TELEMETRY
        self._tracer = telemetry.tracer
        self._tm_faults = telemetry.registry.counter(
            "faults_injected_total", "Faults injected, by device and kind",
            labelnames=("device", "kind"))
        device.attach_faults(self)

    def _record(self, kind: str, **args: Any) -> None:
        self.stats[kind] = self.stats.get(kind, 0) + 1
        self._tm_faults.labels(device=self.device.name, kind=kind).inc()
        if self._tracer.enabled:
            self._tracer.instant(f"fault_{kind}", "fault", "faults",
                                 dict(args, device=self.device.name))

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by Device.submit/_serve)
    # ------------------------------------------------------------------

    def on_submit(self, request: "IORequest") -> Optional[Exception]:
        """Reject a request against a dead device (before queueing)."""
        if self.dead:
            self._record("dead_submit")
            return DeviceDeadError(f"{self.device.name} has failed")
        return None

    def pre_service_delay(self, request: "IORequest",
                          service: float) -> float:
        """Extra virtual seconds to wait before serving ``request``."""
        extra = 0.0
        if self.stall_until > self.env.now:
            extra += self.stall_until - self.env.now
            self._record("stall", seconds=round(extra, 6))
        if self.latency_p and self.rng.random() < self.latency_p:
            extra += service * (self.latency_factor - 1.0)
            self._record("latency")
        return extra

    def on_complete(self, request: "IORequest") -> Optional[Exception]:
        """Fault to report instead of a successful completion, if any."""
        if self.dead:
            self._record("dead_inflight")
            return DeviceDeadError(f"{self.device.name} died mid-flight")
        if self.transient_p and self.rng.random() < self.transient_p:
            self._record("transient")
            return TransientIoError(
                f"transient I/O error on {self.device.name}")
        return None

    # ------------------------------------------------------------------
    # Timed fault triggers (driven by FaultPlan processes)
    # ------------------------------------------------------------------

    def kill(self) -> None:
        """The device fails permanently, effective immediately."""
        if not self.dead:
            self.dead = True
            self._record("device_dead")

    def stall(self, duration: float) -> None:
        """Open a stall window: I/Os freeze for ``duration`` seconds."""
        self.stall_until = max(self.stall_until, self.env.now + duration)
