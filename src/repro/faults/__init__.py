"""Seeded, deterministic fault injection over the storage layer.

Layered over :mod:`repro.storage` devices: a :class:`FaultPlan` parsed
from the CLI (``--faults ssd_die@t=30,transient:p=0.001``) attaches
:class:`FaultInjector` instances to a system's devices and schedules
transient I/O errors, latency spikes, stall windows, and whole-SSD
death.  The exceptions and retry policy live in :mod:`repro.faults
.errors` so that upstream error handling can import them cheaply.
"""

from repro.faults.errors import (
    RETRY_BASE_DELAY,
    RETRY_LIMIT,
    RETRY_MAX_DELAY,
    DeviceDeadError,
    IoFault,
    TransientIoError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "DeviceDeadError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "IoFault",
    "TransientIoError",
    "RETRY_BASE_DELAY",
    "RETRY_LIMIT",
    "RETRY_MAX_DELAY",
]
