"""The exclusive multi-level caching design (Koltsidas & Viglas 2009),
described in the paper's §5.

A page never exists in both the memory buffer pool and the SSD:

* when a page is read from the SSD into memory, the SSD copy is removed
  (its frame freed);
* when a page is evicted from the memory pool, it is written to the SSD
  (clean or dirty — the SSD may hold the newest copy, so it shares LC's
  checkpoint obligation).

Exclusivity maximises the *combined* cache capacity (no duplication) but
pays an SSD write on every re-admission: a page bouncing between the
levels is written to the SSD each time it leaves memory, where the
inclusive designs find their copy still cached.  The design-comparison
benchmark measures that trade.
"""

from __future__ import annotations

from repro.core.ssd_manager import SsdManagerBase
from repro.engine.page import Frame
from repro.telemetry import CHECKPOINT_CTX, EVICTION_CTX


class ExclusiveSsdManager(SsdManagerBase):
    """Exclusive two-level cache: memory and SSD hold disjoint pages."""

    __slots__ = ()

    name = "EXCL"

    def _read_record(self, record, ctx=None):
        """Serve the read, then *remove* the SSD copy (exclusivity).

        If the SSD held the newest copy, the caller's memory frame now
        holds it; the WAL still protects it, and eviction will rewrite
        it to the SSD or disk.
        """
        version = record.version
        page_id = record.page_id
        self.stats.reads += 1
        must = version > self.disk.disk_version(page_id)
        ok = yield from self._ssd_read_frame(record.frame_no, must=must,
                                             ctx=ctx)
        if not ok:
            if must:
                # The device died holding the only newest copy; the
                # record is still in the table, so degradation redo
                # restores it to disk before the detach completes.
                yield from self._await_detach()
            return None
        # Drop only after the read, and only if the record still maps
        # this page: a concurrent replacement may have reused the frame
        # while the read (and any retries) ran.
        if (record.valid and record.page_id == page_id
                and record.version == version):
            self._drop_record(record)
        return version

    def on_evict_clean(self, frame: Frame):
        if not self.admission.qualifies(frame, self.admission_fill_level):
            if frame.version > self.disk.disk_version(frame.page_id):
                yield from self.disk.write(frame.page_id, frame.version,
                                           sequential=False,
                                           ctx=EVICTION_CTX)
            return
        dirty = frame.version > self.disk.disk_version(frame.page_id)
        cached = yield from self._cache_page(frame.page_id, frame.version,
                                             dirty=dirty, ctx=EVICTION_CTX)
        if dirty and not cached:
            yield from self.disk.write(frame.page_id, frame.version,
                                       sequential=False, ctx=EVICTION_CTX)

    def on_evict_dirty(self, frame: Frame):
        if self.admission.qualifies(frame, self.admission_fill_level):
            cached = yield from self._cache_page(frame.page_id,
                                                 frame.version, dirty=True,
                                                 ctx=EVICTION_CTX)
            if cached:
                return
        yield from self.disk.write(frame.page_id, frame.version,
                                   sequential=False, ctx=EVICTION_CTX)

    def on_checkpoint(self):
        """Dirty SSD pages hold the newest copies: flush them, as LC does."""
        for record in list(self.table.occupied_records()):
            if not (record.valid and record.dirty):
                continue
            if record.version > self.disk.disk_version(record.page_id):
                ok = yield from self._ssd_read_frame(record.frame_no,
                                                     must=True,
                                                     ctx=CHECKPOINT_CTX)
                if not ok:
                    # SSD death mid-checkpoint: the in-flight detach
                    # redoes every remaining dirty page from the log.
                    yield from self._await_detach()
                    return
                yield from self.disk.write(record.page_id, record.version,
                                           sequential=False,
                                           ctx=CHECKPOINT_CTX)
            self.table.set_dirty(record, False)
            self.clean_heap.push(record)
            self.stats.checkpoint_ssd_flushes += 1
