"""Victim-selection heaps for the SSD manager (the paper's Figure 4).

The paper keeps one array holding two heaps: a *clean heap* growing from
the left (root = oldest clean page, the replacement victim) and a *dirty
heap* growing from the right (root = oldest dirty page, the next page the
LC cleaner writes back).  Both are ordered by the SSD replacement policy
(LRU-2).

The reproduction implements each heap as a lazy-deletion binary heap: an
entry is pushed on every (re)insertion with a stamp; stale entries (the
record moved heaps, was freed, or was re-accessed) are discarded at pop
time.  The observable behaviour — which record is selected — is identical
to the paper's in-place structure; only the memory layout differs.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.ssd_buffer_table import SsdRecord


class LazyMinHeap:
    """A min-heap of SSD records with lazy deletion.

    ``key`` extracts the ordering value from a record (LRU-2 penultimate
    access time for the clean/dirty heaps, extent temperature for TAC).
    ``member`` decides at pop time whether a record still belongs to this
    heap; entries that fail it, or whose pushed stamp is stale, are
    dropped silently.
    """

    #: Compaction floor: below this many stale entries the heap is left
    #: alone, so small heaps never pay the rebuild.
    MIN_COMPACT = 64

    def __init__(self, key: Callable[[SsdRecord], float],
                 member: Callable[[SsdRecord], bool]) -> None:
        self._key = key
        self._member = member
        self._heap: List[Tuple[float, int, SsdRecord]] = []
        self._stamps: Dict[int, int] = {}
        self._next_stamp = 0

    def __len__(self) -> int:
        """Upper bound on live entries (lazy entries inflate it)."""
        return len(self._heap)

    @property
    def live_count(self) -> int:
        """Records currently considered members of this heap."""
        return len(self._stamps)

    def push(self, record: SsdRecord) -> None:
        """(Re)insert a record with its current key."""
        self._next_stamp += 1
        self._stamps[record.frame_no] = self._next_stamp
        heapq.heappush(self._heap,
                       (self._key(record), self._next_stamp, record))
        if len(self._heap) - len(self._stamps) > max(
                self.MIN_COMPACT, 2 * len(self._stamps)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live stamps, dropping stale entries.

        Without this, every re-access and every remove leaves a dead
        tuple behind; under churn (LC re-dirtying hot pages) the heap
        grows without bound and each pop wades through the garbage.
        Rebuilding is O(live) and amortized free because it only runs
        once the garbage outnumbers the live entries 2:1.
        """
        stamps = self._stamps
        self._heap = [entry for entry in self._heap
                      if stamps.get(entry[2].frame_no) == entry[1]]
        heapq.heapify(self._heap)

    def remove(self, record: SsdRecord) -> None:
        """Lazily remove a record (its entries become stale)."""
        self._stamps.pop(record.frame_no, None)

    def pop(self) -> Optional[SsdRecord]:
        """Remove and return the minimum live record, or None if empty."""
        while self._heap:
            key, stamp, record = heapq.heappop(self._heap)
            if self._stamps.get(record.frame_no) != stamp:
                continue
            if not self._member(record):
                del self._stamps[record.frame_no]
                continue
            if self._key(record) != key:
                # Key changed since push (e.g. re-accessed): reinsert with
                # the fresh key and keep looking.
                self.push(record)
                continue
            del self._stamps[record.frame_no]
            return record
        return None

    def peek(self) -> Optional[SsdRecord]:
        """The minimum live record without removing it, or None."""
        record = self.pop()
        if record is not None:
            self.push(record)
        return record

    def clear(self) -> None:
        """Drop every entry (cold restart)."""
        self._heap.clear()
        self._stamps.clear()
