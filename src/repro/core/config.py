"""Configuration for the SSD designs (the paper's Table 2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SsdDesignConfig:
    """Tunables shared by all SSD designs.

    Defaults follow the paper's Table 2, except ``ssd_frames`` (S), which
    the paper sets to 18,350,080 (140 GB) and a scaled run sets to its own
    profile's value, and λ, which the paper varies by benchmark (50% for
    TPC-C, 1% for TPC-E/H).
    """

    #: S — number of page frames in the SSD buffer pool.
    ssd_frames: int = 14_000
    #: τ — aggressive-filling threshold (§3.3.1): until the SSD is this
    #: full, *every* evicted page is cached regardless of admission.
    fill_threshold: float = 0.95
    #: μ — throttle-control threshold (§3.3.2): optional SSD I/Os are
    #: skipped while more than this many I/Os are pending on the SSD.
    throttle_limit: int = 100
    #: N — number of SSD partitions (§3.3.4).
    partitions: int = 16
    #: α — max dirty SSD pages gathered into one LC write request (§3.3.5).
    group_clean_pages: int = 32
    #: λ — dirty fraction of SSD space at which the LC cleaner wakes
    #: (§2.3.3).  The paper uses 1% for TPC-E/H and 50% for TPC-C.
    dirty_threshold: float = 0.5
    #: How far below λ the cleaner drains before sleeping (the paper
    #: cleans to "about 0.01% of the SSD space below the threshold").
    clean_slack: float = 0.0001
    #: Extent size in pages for TAC's temperature tracking (§2.5).
    extent_pages: int = 32
    #: Concurrent group-clean batches the LC cleaner keeps in flight.
    #: The paper's cleaner sustained 521–950 IOPS against the disks
    #: (§4.2.1), which requires overlapping I/Os; a serial cleaner tops
    #: out near one page per disk-write latency.
    cleaner_concurrency: int = 8
    #: Persist the SSD buffer table at checkpoints so a restart can reuse
    #: SSD contents (the paper's §6 future-work extension; off = paper
    #: behaviour, where the SSD restarts cold).
    warm_restart: bool = False
    #: Model the SSD's internals (FTL, erase blocks, GC, write-amp
    #: accounting; DESIGN.md §10).  Off = the paper-era black-box timing.
    ftl_enabled: bool = False
    #: FTL geometry/policy when ``ftl_enabled`` (see
    #: :class:`repro.storage.ftl.FtlConfig` for semantics).
    ftl_pages_per_block: int = 32
    ftl_op_ratio: float = 0.28
    ftl_gc_low_water: int = 2
    #: LS design: pages per group-commit admission batch.
    ls_batch_pages: int = 16
    #: LS design: seconds a partial batch waits before flushing anyway.
    ls_batch_timeout: float = 0.002
    #: LS design: pages reclaimed from the log tail per GC segment.
    ls_segment_pages: int = 64

    def __post_init__(self) -> None:
        if self.ssd_frames < 0:
            raise ValueError(f"ssd_frames must be >= 0, got {self.ssd_frames}")
        if not 0.0 <= self.fill_threshold <= 1.0:
            raise ValueError(f"fill_threshold must be in [0, 1]")
        if not 0.0 <= self.dirty_threshold <= 1.0:
            raise ValueError(f"dirty_threshold must be in [0, 1]")
        if self.throttle_limit < 1:
            raise ValueError("throttle_limit must be >= 1")
        if self.partitions < 1:
            raise ValueError("partitions must be >= 1")
        if self.group_clean_pages < 1:
            raise ValueError("group_clean_pages must be >= 1")
        if self.extent_pages < 1:
            raise ValueError("extent_pages must be >= 1")
        if self.ftl_pages_per_block < 2:
            raise ValueError("ftl_pages_per_block must be >= 2")
        if self.ftl_op_ratio <= 0.0:
            raise ValueError("ftl_op_ratio must be > 0")
        if self.ftl_gc_low_water < 1:
            raise ValueError("ftl_gc_low_water must be >= 1")
        if self.ls_batch_pages < 1:
            raise ValueError("ls_batch_pages must be >= 1")
        if self.ls_batch_timeout <= 0.0:
            raise ValueError("ls_batch_timeout must be > 0")
        if self.ls_segment_pages < 1:
            raise ValueError("ls_segment_pages must be >= 1")

    @property
    def fill_target_frames(self) -> int:
        """Frame count at which aggressive filling stops (τ · S)."""
        return int(self.fill_threshold * self.ssd_frames)

    @property
    def dirty_limit_frames(self) -> int:
        """Dirty frame count at which the LC cleaner wakes (λ · S)."""
        return int(self.dirty_threshold * self.ssd_frames)

    @property
    def clean_target_frames(self) -> int:
        """Dirty frame count the LC cleaner drains down to."""
        return max(0, self.dirty_limit_frames
                   - max(1, int(self.clean_slack * self.ssd_frames)))
