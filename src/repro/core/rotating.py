"""The rotating-SSD design (Holloway 2009), described in the paper's §5.

The SSD buffer pool is organised as a circular queue with a logical
``next_frame`` pointer.  Every page evicted from the memory buffer pool —
clean or dirty — is written to the frame under the pointer, which then
advances; whatever page occupied that frame is evicted, *even if it is
hot*.  If the displaced page's copy is newer than disk and the page is
not in memory, it must first be copied back to disk.

The design trades replacement quality for strictly sequential SSD write
behaviour (it was motivated by the poor random-write speed of early
consumer SSDs).  The paper notes the premise is obsolete on enterprise
SSDs — this implementation exists so that claim can be measured: on our
(enterprise-calibrated) SSD model the rotation costs hit rate without
buying meaningful write speed.
"""

from __future__ import annotations

from repro.core.ssd_manager import SsdManagerBase
from repro.engine.page import Frame
from repro.telemetry import CHECKPOINT_CTX, EVICTION_CTX


class RotatingSsdManager(SsdManagerBase):
    """Rotating circular-queue SSD cache (write-back variant)."""

    __slots__ = ("_next_frame",)

    name = "ROT"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._next_frame = 0

    def on_evict_clean(self, frame: Frame):
        if self.detached:
            if frame.version > self.disk.disk_version(frame.page_id):
                yield from self.disk.write(frame.page_id, frame.version,
                                           sequential=False,
                                           ctx=EVICTION_CTX)
            return
        existing = self.table.lookup_valid(frame.page_id)
        if existing is not None:
            existing.record_access(self.env.now)
            return
        yield from self._rotate_in(frame.page_id, frame.version,
                                   dirty=frame.version
                                   > self.disk.disk_version(frame.page_id))

    def on_evict_dirty(self, frame: Frame):
        if self.detached:
            yield from self.disk.write(frame.page_id, frame.version,
                                       sequential=False, ctx=EVICTION_CTX)
            return
        existing = self.table.lookup_valid(frame.page_id)
        if existing is not None:
            self._drop_record(existing)
        if self._throttled():
            self.stats.declined_throttle += 1
            yield from self.disk.write(frame.page_id, frame.version,
                                       sequential=False, ctx=EVICTION_CTX)
            return
        yield from self._rotate_in(frame.page_id, frame.version, dirty=True)

    def _rotate_in(self, page_id: int, version: int, dirty: bool):
        """Claim the frame under the pointer, displacing its occupant."""
        if self.config.ssd_frames == 0:
            if dirty:
                yield from self.disk.write(page_id, version,
                                           sequential=False, ctx=EVICTION_CTX)
            return
        record = self.table.records[self._next_frame]
        self._next_frame = (self._next_frame + 1) % self.config.ssd_frames
        # Displace the current occupant regardless of its heat, capturing
        # what must be copied back *before* any I/O yields (a concurrent
        # rotation or invalidation may otherwise race for the frame).
        displaced = None
        if record.occupied:
            if (record.valid and record.dirty
                    and record.version > self.disk.disk_version(record.page_id)):
                displaced = (record.page_id, record.version)
            self.stats.evictions += 1
            self._drop_record(record)
        self.table.take_frame(record.frame_no)
        self.table.install(record, page_id, version, dirty, self.env.now)
        if dirty:
            self.dirty_heap.push(record)
        if displaced is not None:
            # The displaced page's newest copy lived here: it goes to
            # disk via memory (read the old frame content, write it out).
            # The read is a must (sole newest copy), but the disk write
            # proceeds even if the SSD died mid-read: the displaced
            # record was already dropped from the table, so degradation
            # redo no longer covers it — the durable WAL does (rotating
            # installs with rec_lsn=0, which blocks log truncation).
            yield from self._ssd_read_frame(record.frame_no, must=True,
                                            ctx=EVICTION_CTX)
            yield from self.disk.write(displaced[0], displaced[1],
                                       sequential=False, ctx=EVICTION_CTX)
        self.stats.writes += 1
        # The whole point of the design: the SSD write is sequential.
        ok = yield from self._ssd_io(
            lambda: self.device.write(record.frame_no, 1, random=False,
                                      ctx=EVICTION_CTX))
        if not ok:
            # The image never reached the SSD: the record must not claim
            # it did.  Guard against the record having been invalidated
            # or reused while the failed write (and retries) ran.
            if (record.valid and record.page_id == page_id
                    and record.version == version):
                self._drop_record(record)
            if dirty:
                # The newest copy must not be dropped with it.
                yield from self.disk.write(page_id, version,
                                           sequential=False,
                                           ctx=EVICTION_CTX)

    def on_checkpoint(self):
        """Flush every dirty SSD page (same obligation as LC)."""
        for record in list(self.table.occupied_records()):
            if not (record.valid and record.dirty):
                continue
            if record.version > self.disk.disk_version(record.page_id):
                ok = yield from self._ssd_read_frame(record.frame_no,
                                                     must=True,
                                                     ctx=CHECKPOINT_CTX)
                if not ok:
                    # SSD death mid-checkpoint: the in-flight detach
                    # redoes every remaining dirty page from the log.
                    yield from self._await_detach()
                    return
                yield from self.disk.write(record.page_id, record.version,
                                           sequential=False,
                                           ctx=CHECKPOINT_CTX)
            self.table.set_dirty(record, False)
            self.stats.checkpoint_ssd_flushes += 1
