"""SSD admission policy (§2.2, §3.3.1).

The SSD only pays off for pages the disks would serve with *random* I/O,
so the baseline policy admits a page iff it entered the buffer pool via a
random read (not via read-ahead).  Two refinements from the paper:

* **Aggressive filling (τ)** — from a cold start, *all* evicted pages are
  admitted until the SSD reaches τ of its capacity, priming it quickly.
* **Alternative classifier** — instead of the read-ahead flag, the
  64-page-window heuristic (Narayanan et al.) can supply the
  random/sequential signal; the paper found it far less accurate, and the
  admission ablation reproduces the comparison.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SsdDesignConfig
from repro.engine.page import Frame
from repro.engine.readahead import WindowClassifier


class AdmissionPolicy:
    """Decides whether an evicted page qualifies for SSD caching."""

    def __init__(self, config: SsdDesignConfig,
                 classifier: Optional[WindowClassifier] = None):
        self.config = config
        #: Optional window classifier; when present it *overrides* the
        #: read-ahead flag (the ablation's "window" admission mode).
        self.classifier = classifier
        self.admitted = 0
        self.rejected = 0
        self.fill_admitted = 0

    def qualifies(self, frame: Frame, ssd_used: int) -> bool:
        """Should this evicted page be cached in the SSD?"""
        if self.config.ssd_frames == 0:
            return False
        if ssd_used < self.config.fill_target_frames:
            self.fill_admitted += 1
            return True
        if self.classifier is not None:
            sequential = self.classifier.classify(frame.page_id)
        else:
            sequential = frame.sequential
        if sequential:
            self.rejected += 1
            return False
        self.admitted += 1
        return True
