"""The SSD manager's bookkeeping structures (the paper's Figure 4).

* **SSD buffer pool** — S page-sized frames on the SSD device itself; in
  this reproduction the device stores no payload, so each record carries
  the version number of the page cached in its frame.
* **SSD buffer table** — an array of S records (page id, dirty bit, last
  two access times, …), one per frame.
* **SSD hash table** — page id → record, for O(1) lookups.
* **SSD free list** — records whose frames are unoccupied.

Partitioning (§3.3.4) assigns each frame to one of N partitions; the hash
table is shared while the buffer table segments and heaps are per
partition in the paper.  The reproduction keeps the partition id on each
record and counts per-partition operations (the contention the partitions
remove is not otherwise modelled — a documented simplification).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional


class SsdRecord:
    """One SSD buffer-table record, corresponding to one SSD frame."""

    __slots__ = ("frame_no", "page_id", "valid", "dirty", "version",
                 "rec_lsn", "last_access", "prev_access", "temperature")

    def __init__(self, frame_no: int):
        self.frame_no = frame_no
        self.page_id: Optional[int] = None
        self.valid = False
        #: Set when the SSD copy may be newer than the disk copy (LC).
        self.dirty = False
        #: recLSN of the dirty content (for fuzzy-checkpoint truncation).
        self.rec_lsn = -1
        #: Version of the page content stored in this SSD frame.
        self.version = -1
        # LRU-2 history of accesses to the cached page *on the SSD*.
        self.last_access = 0.0
        self.prev_access = float("-inf")
        #: TAC keeps the owning extent's temperature snapshot here.
        self.temperature = 0.0

    @property
    def occupied(self) -> bool:
        """Whether the frame holds any page image (valid or invalidated)."""
        return self.page_id is not None

    def lru2_key(self) -> float:
        """Replacement priority: penultimate access time (LRU-2)."""
        return self.prev_access

    def record_access(self, now: float) -> None:
        """Push the LRU-2 access history."""
        self.prev_access = self.last_access
        self.last_access = now

    def reset(self) -> None:
        """Return the record to its free state."""
        self.page_id = None
        self.valid = False
        self.dirty = False
        self.rec_lsn = -1
        self.version = -1
        self.last_access = 0.0
        self.prev_access = float("-inf")
        self.temperature = 0.0

    def __repr__(self) -> str:
        state = ("free" if not self.occupied else
                 f"page={self.page_id} v{self.version}"
                 f"{' dirty' if self.dirty else ''}"
                 f"{'' if self.valid else ' INVALID'}")
        return f"<SsdRecord #{self.frame_no} {state}>"


class SsdBufferTable:
    """Buffer table + hash table + free list over S SSD frames."""

    __slots__ = ("nframes", "partitions", "records", "_free", "_hash",
                 "partition_ops", "_valid", "_dirty")

    def __init__(self, nframes: int, partitions: int = 1):
        if nframes < 0:
            raise ValueError(f"nframes must be >= 0, got {nframes}")
        self.nframes = nframes
        self.partitions = max(1, partitions)
        self.records: List[SsdRecord] = [SsdRecord(i) for i in range(nframes)]
        self._free: Deque[int] = deque(range(nframes))
        self._hash: Dict[int, SsdRecord] = {}
        self.partition_ops = [0] * self.partitions
        # Incremental counters (kept exact by install/release/set_dirty/
        # invalidate_logical) so occupancy queries are O(1).
        self._valid = 0
        self._dirty = 0

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def lookup(self, page_id: int) -> Optional[SsdRecord]:
        """The record caching ``page_id`` (valid or invalidated), if any."""
        record = self._hash.get(page_id)
        if record is not None:
            # Inlined partition_of: one lookup per page access.
            self.partition_ops[record.frame_no % self.partitions] += 1
        return record

    def lookup_valid(self, page_id: int) -> Optional[SsdRecord]:
        """The record caching a *valid* copy of ``page_id``, if any."""
        record = self.lookup(page_id)
        return record if record is not None and record.valid else None

    def partition_of(self, record: SsdRecord) -> int:
        """The §3.3.4 partition this record's frame belongs to."""
        return record.frame_no % self.partitions

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------

    @property
    def free_count(self) -> int:
        """Frames on the free list."""
        return len(self._free)

    @property
    def used_count(self) -> int:
        """Occupied frames (valid or logically invalidated)."""
        return self.nframes - len(self._free)

    @property
    def valid_count(self) -> int:
        """Frames holding valid page copies."""
        return self._valid

    @property
    def invalid_count(self) -> int:
        """Occupied frames holding logically invalidated pages (TAC waste)."""
        return self.used_count - self._valid

    @property
    def dirty_count(self) -> int:
        """Valid frames whose copy may be newer than disk."""
        return self._dirty

    def occupied_records(self) -> Iterator[SsdRecord]:
        """Iterate over records whose frames hold a page image."""
        return (r for r in self.records if r.occupied)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def take_free(self) -> Optional[SsdRecord]:
        """Pop a record off the free list, or None if the SSD is full."""
        if not self._free:
            return None
        return self.records[self._free.popleft()]

    def take_frame(self, frame_no: int) -> SsdRecord:
        """Claim a *specific* free frame (the rotating design's pointer)."""
        record = self.records[frame_no]
        if record.occupied:
            raise ValueError(f"{record!r} is not free")
        self._free.remove(frame_no)
        return record

    def install(self, record: SsdRecord, page_id: int, version: int,
                dirty: bool, now: float, rec_lsn: int = -1) -> None:
        """Bind ``record`` (taken from the free list or evicted) to a page."""
        if record.occupied:
            raise ValueError(f"installing over occupied {record!r}")
        record.page_id = page_id
        record.version = version
        record.valid = True
        record.dirty = dirty
        record.rec_lsn = rec_lsn if dirty else -1
        record.last_access = now
        record.prev_access = float("-inf")
        self._hash[page_id] = record
        self._valid += 1
        if dirty:
            self._dirty += 1
        self.partition_ops[self.partition_of(record)] += 1

    def revalidate(self, record: SsdRecord, version: int, now: float) -> None:
        """Make an invalidated record valid again with fresh content.

        TAC re-writes a dirty evicted page into the SSD frame still holding
        its logically invalidated old version (§2.5 page flow, step iv).
        """
        if not record.occupied or record.valid:
            raise ValueError(f"revalidating {record!r}")
        record.version = version
        record.valid = True
        record.dirty = False
        record.record_access(now)
        self._valid += 1

    def set_dirty(self, record: SsdRecord, dirty: bool) -> None:
        """Flip a valid record's dirty bit, keeping counters exact."""
        if record.dirty == dirty:
            return
        record.dirty = dirty
        if not dirty:
            record.rec_lsn = -1
        self._dirty += 1 if dirty else -1

    def release(self, record: SsdRecord) -> None:
        """Free a record's frame entirely (physical invalidation)."""
        if not record.occupied:
            raise ValueError(f"releasing free {record!r}")
        if record.valid:
            self._valid -= 1
            if record.dirty:
                self._dirty -= 1
        # The hash may already point at a *newer* record for the same
        # page (the LS log supersedes entries in place and frees the old
        # one only when its segment is reclaimed) — only unlink the hash
        # entry if it is ours.
        if self._hash.get(record.page_id) is record:
            del self._hash[record.page_id]
        record.reset()
        self._free.append(record.frame_no)

    def invalidate_logical(self, record: SsdRecord) -> None:
        """Mark invalid without freeing the frame (TAC's invalidation)."""
        if record.valid:
            self._valid -= 1
            if record.dirty:
                self._dirty -= 1
        record.valid = False
        record.dirty = False

    def clear(self) -> None:
        """Drop every mapping (cold restart)."""
        for record in self.records:
            record.reset()
        self._free = deque(range(self.nframes))
        self._hash.clear()
        self._valid = 0
        self._dirty = 0
