"""The Lazy-Cleaning (LC) design (§2.3.3, §3.3.5).

Dirty pages evicted from the buffer pool are written *only* to the SSD
(write-back).  A background lazy-cleaning thread copies dirty SSD pages
back to disk:

* it wakes when the dirty fraction of the SSD exceeds λ and drains until
  slightly below it (``clean_slack``);
* each pass gathers up to α dirty pages with consecutive disk addresses
  and writes them to disk with a single I/O (*group cleaning*);
* pages cannot move SSD→disk directly — they are read into memory first,
  so cleaning consumes both SSD read and disk write bandwidth (this is
  the throughput drop visible in Figure 6 when the λ threshold is first
  crossed).

Because the SSD can hold the newest copy of a page, LC changes the sharp
checkpoint: all dirty SSD pages are flushed to disk during a checkpoint,
and no new dirty pages are cached while one is in progress (§3.2).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.ssd_buffer_table import SsdRecord
from repro.core.ssd_manager import SsdManagerBase
from repro.engine.page import Frame
from repro.faults.errors import IoFault
from repro.telemetry import CLEANER_CTX, EVICTION_CTX


class LazyCleaningManager(SsdManagerBase):
    """LC: write-back caching of dirty evictions with a cleaner thread."""

    __slots__ = ("_cleaner_started", "_cleaner_wakeup", "_above_lambda",
                 "_cleaning_frames", "_tm_cleaner_rounds",
                 "_tm_cleaner_pages", "_tm_lambda_crossings")

    name = "LC"

    #: Empty drain rounds between dirty-heap reseed attempts, and the
    #: consecutive-empty-round budget before declaring the drain stalled.
    _RESEED_AFTER = 3
    _STALL_LIMIT = 64

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cleaner_started = False
        self._cleaner_wakeup = None
        self._above_lambda = False
        #: SSD frame slots with a clean-back transfer in flight; their
        #: records are legitimately absent from the dirty heap and must
        #: not be re-seeded into it.
        self._cleaning_frames: Set[int] = set()
        registry = self.telemetry.registry
        self._tm_cleaner_rounds = registry.counter(
            "lc_cleaner_rounds_total", "Group-clean batches the LC cleaner ran")
        self._tm_cleaner_pages = registry.counter(
            "lc_cleaner_pages_total", "Dirty SSD pages the LC cleaner wrote back")
        self._tm_lambda_crossings = registry.counter(
            "lc_lambda_crossings_total",
            "Upward crossings of the dirty-fraction threshold (lambda)")

    def _note_lambda(self) -> None:
        """Record crossings of λ (in either direction) as trace instants."""
        above = self.table.dirty_count > self.config.dirty_limit_frames
        if above == self._above_lambda:
            return
        self._above_lambda = above
        if above:
            self.stats.lambda_crossings += 1
            self._tm_lambda_crossings.inc()
        if self._tracer.enabled:
            self._tracer.instant(
                "lambda_crossed" if above else "lambda_recovered",
                "cleaner", "cleaner",
                {"dirty_fraction": self.dirty_fraction})

    # ------------------------------------------------------------------
    # Eviction hook
    # ------------------------------------------------------------------

    def on_evict_dirty(self, frame: Frame):
        """Cache the dirty page in the SSD; fall back to disk if we can't.

        Falls back when: admission rejects the page, a checkpoint is in
        progress (§3.2: LC stops caching new dirty pages then), the SSD
        is throttled, or no frame can be reclaimed (every frame dirty).
        """
        checkpointing = self.bp is not None and self.bp.checkpoint_active
        if not checkpointing and self.admission.qualifies(
                frame, self.admission_fill_level):
            cached = yield from self._cache_page(frame.page_id, frame.version,
                                                 dirty=True,
                                                 rec_lsn=max(0, frame.rec_lsn),
                                                 ctx=EVICTION_CTX)
            if cached:
                self._maybe_wake_cleaner()
                return
        self.stats.fallback_disk_writes += 1
        self._tm_fallback.inc()
        yield from self.disk.write(frame.page_id, frame.version,
                                   sequential=False, ctx=EVICTION_CTX)

    # ------------------------------------------------------------------
    # The lazy-cleaning thread
    # ------------------------------------------------------------------

    def _after_dirty_cached(self) -> None:
        self._maybe_wake_cleaner()

    def start_cleaner(self) -> None:
        """Launch the background cleaner process (idempotent)."""
        if not self._cleaner_started:
            self._cleaner_started = True
            self._cleaner_wakeup = self.env.event()
            self.env.process(self._cleaner_loop())

    def _maybe_wake_cleaner(self) -> None:
        self._note_lambda()
        if (self._cleaner_wakeup is not None
                and not self._cleaner_wakeup.triggered
                and self.table.dirty_count > self.config.dirty_limit_frames):
            self._cleaner_wakeup.succeed()

    def _cleaner_loop(self):
        while True:
            if self._detach_started:
                return  # the SSD died; detach empties the table
            if self.table.dirty_count <= self.config.dirty_limit_frames:
                self._cleaner_wakeup = self.env.event()
                yield self._cleaner_wakeup
            target = self.config.clean_target_frames
            empty_rounds = 0
            while self.table.dirty_count > target:
                if self._detach_started:
                    return
                # Keep several group-clean batches in flight: a serial
                # cleaner is capped at one page per disk-write latency and
                # silently turns λ into "never" under load.
                batches = []
                for _ in range(self.config.cleaner_concurrency):
                    if self.table.dirty_count - len(batches) <= target:
                        break
                    batches.append(self.env.process(self._clean_batch()))
                if not batches:
                    break
                results = yield self.env.all_of(batches)
                if any(results.values()):
                    empty_rounds = 0
                else:
                    # Nothing cleanable right now; yield and retry.
                    empty_rounds += 1
                    self._note_drain_stall(empty_rounds)
                    yield self.env.timeout(0.001)

    def _clean_batch(self):
        """Process step: clean one group of dirty SSD pages (§3.3.5).

        Starting from the oldest dirty page (dirty-heap root), gathers up
        to α dirty pages with consecutive disk addresses, reads each from
        the SSD into memory, writes them to disk as one I/O, and marks
        them clean.  Returns the number of pages cleaned.
        """
        group = self._gather_group()
        if not group:
            return 0
        round_started = self.env.now
        # Capture addresses/versions now: a page may be invalidated (and
        # its record even reused for a different page) while the cleaning
        # I/O is in flight.
        first = group[0].page_id
        versions = [record.version for record in group]
        captured = [(record, record.page_id, record.version)
                    for record in group]
        frames = [record.frame_no for record in group]
        self._cleaning_frames.update(frames)
        try:
            # SSD -> memory: one read per page (they are scattered on the
            # SSD).  These are transfer reads, not page accesses: the
            # LRU-2 history of the records must not be touched.
            reads = [
                self.env.process(self._raw_ssd_read(record.frame_no))
                for record in group
            ]
            results = yield self.env.all_of(reads)
            if not all(results.values()):
                # A read failed past the retry budget, or the device
                # died: nothing was transferred.  Requeue for a later
                # attempt (or for the detach redo) and report no
                # progress.
                self._requeue(captured)
                return 0
            try:
                yield from self.disk.write_run(first, versions,
                                               ctx=CLEANER_CTX)
            except IoFault:
                self._requeue(captured)
                return 0
        finally:
            self._cleaning_frames.difference_update(frames)
        self.stats.cleaner_pages += len(group)
        self.stats.cleaner_ios += 1
        for record, page_id, version in captured:
            # Mark clean only if the record still describes the exact
            # page/version we wrote out — it may have been invalidated
            # (re-dirtied in the pool) or reused for another page while
            # the clean-back I/O was in flight.
            if (record.valid and record.dirty
                    and record.page_id == page_id
                    and record.version == version):
                self.table.set_dirty(record, False)
                self.clean_heap.push(record)
        self._tm_cleaner_rounds.inc()
        self._tm_cleaner_pages.inc(len(group))
        if self._tracer.enabled:
            self._tracer.complete("clean_batch", round_started, self.env.now,
                                  "cleaner", "cleaner",
                                  {"pages": len(group), "first_page": first})
        self._note_lambda()
        return len(group)

    def _requeue(self, captured) -> None:
        """Put an unfinished batch's records back in the dirty heap."""
        for record, page_id, version in captured:
            if (record.valid and record.dirty
                    and record.page_id == page_id
                    and record.version == version):
                self.dirty_heap.push(record)

    def _gather_group(self) -> List[SsdRecord]:
        """Oldest dirty page plus dirty neighbours at consecutive disk
        addresses, up to α pages, sorted by disk address."""
        seed = self.dirty_heap.pop()
        if seed is None:
            return []
        group = [seed]
        limit = self.config.group_clean_pages
        # Extend left, then right, while neighbours are dirty in the SSD.
        low = seed.page_id - 1
        while len(group) < limit:
            record = self._dirty_record(low)
            if record is None:
                break
            self.dirty_heap.remove(record)
            group.insert(0, record)
            low -= 1
        high = seed.page_id + 1
        while len(group) < limit:
            record = self._dirty_record(high)
            if record is None:
                break
            self.dirty_heap.remove(record)
            group.append(record)
            high += 1
        return group

    def _dirty_record(self, page_id: int) -> Optional[SsdRecord]:
        record = self.table.lookup_valid(page_id)
        return record if record is not None and record.dirty else None

    def _raw_ssd_read(self, frame_no: int):
        """Transfer read for cleaning: no LRU-2 or hit accounting.

        Returns True on success so a batch can detect failed transfers."""
        return (yield from self._ssd_read_frame(frame_no, ctx=CLEANER_CTX))

    # ------------------------------------------------------------------
    # Drain liveness (dirty-heap/table desync recovery)
    # ------------------------------------------------------------------

    def _note_drain_stall(self, empty_rounds: int) -> None:
        """React to consecutive empty drain rounds.

        Empty rounds are legitimate while other batches hold records in
        flight (``_cleaning_frames``), but ``dirty_count > 0`` with an
        empty dirty heap and *nothing* in flight means the heap and the
        table have desynced — without intervention the drain loop would
        busy-spin forever.  Every ``_RESEED_AFTER`` rounds the heap is
        re-seeded from the table (the authoritative source); if that
        finds nothing and nothing is in flight, the counters themselves
        are inconsistent and we fail loudly rather than hang.
        """
        if empty_rounds % self._RESEED_AFTER != 0:
            return
        reseeded = self._reseed_dirty_heap()
        if reseeded:
            return
        if not self._cleaning_frames and self.table.dirty_count > 0:
            raise RuntimeError(
                f"LC drain stalled: dirty_count={self.table.dirty_count} "
                f"but no dirty records exist in the table and none are in "
                f"flight — table/counter desync")
        if empty_rounds >= self._STALL_LIMIT:
            raise RuntimeError(
                f"LC drain stalled: {empty_rounds} consecutive empty "
                f"rounds with {len(self._cleaning_frames)} transfers "
                f"still in flight")

    def _reseed_dirty_heap(self) -> int:
        """Re-push every table-dirty record absent from in-flight batches.

        Duplicate pushes are harmless (the lazy heap re-validates on
        pop).  Returns the number of records pushed; healthy runs never
        get here, so the count doubles as a desync detector.
        """
        reseeded = 0
        for record in self.table.occupied_records():
            if (record.valid and record.dirty
                    and record.frame_no not in self._cleaning_frames):
                self.dirty_heap.push(record)
                reseeded += 1
        if reseeded:
            self.stats.heap_reseeds += 1
            if self._tracer.enabled:
                self._tracer.instant("dirty_heap_reseed", "cleaner",
                                     "cleaner", {"records": reseeded})
        return reseeded

    # ------------------------------------------------------------------
    # Checkpoint integration (§3.2)
    # ------------------------------------------------------------------

    def on_checkpoint(self):
        """Flush *all* dirty SSD pages to disk (sharp checkpoint rule)."""
        empty_rounds = 0
        while self.table.dirty_count > 0:
            if self._detach_started:
                # The SSD died mid-checkpoint; the detach redo makes the
                # dirty pages durable on disk, which is all this phase
                # needs.  Wait for it rather than racing it.
                yield from self._await_detach()
                break
            batches = [
                self.env.process(self._clean_batch())
                for _ in range(self.config.cleaner_concurrency)
            ]
            results = yield self.env.all_of(batches)
            cleaned = sum(results.values())
            self.stats.checkpoint_ssd_flushes += cleaned
            if cleaned == 0:
                empty_rounds += 1
                self._note_drain_stall(empty_rounds)
                yield self.env.timeout(0.001)
            else:
                empty_rounds = 0

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------

    def crash_reset(self) -> None:
        """Hard-crash restart: the cleaner process died with the event
        queue; clear its in-flight bookkeeping and relaunch it (unless
        the SSD is gone, in which case there is nothing to clean)."""
        super().crash_reset()
        self._cleaning_frames.clear()
        self._cleaner_started = False
        self._cleaner_wakeup = None
        self._above_lambda = False
        if not self.detached:
            self.start_cleaner()
