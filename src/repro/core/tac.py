"""Temperature-Aware Caching (TAC) — the Canim et al. baseline (§2.5).

TAC's page flow differs from the paper's designs in three ways that the
evaluation leans on:

1. **Write-through on read**: a page that qualifies is written to the SSD
   immediately after being read from disk, while forward processing may
   want the page — the write holds the frame latch, which is the extra
   latch contention the paper measured (~25% longer latch waits).  And if
   a transaction dirties the page *before* the write starts, TAC must
   skip it (the SSD would otherwise hold a version newer than disk,
   violating write-through); pages dirtied on first touch, and pages
   created on the fly (B+-tree splits), therefore never reach the SSD.
2. **Logical invalidation**: dirtying a buffered page marks the SSD copy
   invalid but does not free its frame, so invalid pages waste SSD space
   (the paper measured 7–10 GB of a 140 GB SSD on TPC-C).
3. **Temperature-based admission/replacement**: each 32-page extent has a
   temperature, incremented on every buffer-pool miss by the milliseconds
   the SSD would have saved; after the SSD fills, a page is admitted only
   if its extent is hotter than the coldest cached page, which is then
   replaced — valid or not.

Aggressive filling (τ) and throttle control (μ) are applied to TAC too,
matching the paper's implementation notes (§3.3.1–3.3.2).
"""

from __future__ import annotations

from typing import Dict

from repro.core.heaps import LazyMinHeap
from repro.core.ssd_manager import SsdManagerBase
from repro.engine.page import Frame
from repro.storage.request import IoKind, IORequest
from repro.telemetry import ADMISSION_CTX, EVICTION_CTX


class TemperatureAwareManager(SsdManagerBase):
    """TAC: temperature-aware second-level write-through cache."""

    __slots__ = ("temperatures", "temp_heap", "_saving_ms",
                 "_saving_seq_ms", "_tm_admission_writes",
                 "_tm_missed_dirty")

    name = "TAC"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.temperatures: Dict[int, float] = {}
        self.temp_heap = LazyMinHeap(
            key=self._record_temperature,
            member=lambda r: r.occupied)
        # Milliseconds saved by serving one random 8 KB read from the SSD
        # instead of the disk — the temperature increment unit.
        probe = IORequest(IoKind.RANDOM_READ, 0, 1)
        saving = (self.disk.device.service_time(probe)
                  - self.device.service_time(probe))
        self._saving_ms = max(0.0, saving * 1000.0)
        probe_seq = IORequest(IoKind.SEQUENTIAL_READ, 0, 1)
        saving_seq = (self.disk.device.service_time(probe_seq)
                      - self.device.service_time(probe_seq))
        self._saving_seq_ms = max(0.0, saving_seq * 1000.0)
        registry = self.telemetry.registry
        self._tm_admission_writes = registry.counter(
            "tac_admission_writes_total",
            "Pages written to the SSD right after a disk read")
        self._tm_missed_dirty = registry.counter(
            "tac_missed_dirty_writes_total",
            "Admission writes abandoned because the page was dirtied first")

    # ------------------------------------------------------------------
    # Temperature bookkeeping
    # ------------------------------------------------------------------

    def extent_of(self, page_id: int) -> int:
        """The 32-page extent that owns ``page_id``."""
        return page_id // self.config.extent_pages

    def temperature_of(self, page_id: int) -> float:
        """Current temperature of the page's extent."""
        return self.temperatures.get(self.extent_of(page_id), 0.0)

    def _record_temperature(self, record) -> float:
        if record.page_id is None:
            return float("-inf")
        return self.temperature_of(record.page_id)

    def _bump(self, page_id: int, sequential: bool = False) -> None:
        extent = self.extent_of(page_id)
        saving = self._saving_seq_ms if sequential else self._saving_ms
        self.temperatures[extent] = self.temperatures.get(extent, 0.0) + saving

    # ------------------------------------------------------------------
    # Read path: every call is a buffer-pool miss, so bump temperature
    # ------------------------------------------------------------------

    def try_read(self, page_id: int, ctx=None):
        """Process step: serve a miss from the SSD, bumping the extent
        temperature (every call is a buffer-pool miss)."""
        self._bump(page_id)
        return (yield from super().try_read(page_id, ctx=ctx))

    def _reheap(self, record) -> None:
        """TAC replacement is temperature-ordered, not LRU-2: reads do
        not change a record's replacement priority."""

    # ------------------------------------------------------------------
    # TAC's page flow
    # ------------------------------------------------------------------

    def on_read_from_disk(self, frame: Frame) -> None:
        """Step (ii): schedule an immediate write of the page to the SSD.

        The write runs as its own process; by the time it starts, forward
        processing may already have dirtied (or evicted) the page, in
        which case the write is abandoned — TAC cannot cache a page whose
        SSD copy would be newer than disk.
        """
        if frame.sequential:
            self._bump(frame.page_id, sequential=True)
        if self.config.ssd_frames == 0 or self.detached:
            return
        self.env.process(self._write_after_read(frame))

    def _write_after_read(self, frame: Frame):
        if frame.dirty or frame.io_busy is not None:
            self.stats.missed_dirty_writes += 1
            self._tm_missed_dirty.inc()
            return
        if not self._admit(frame.page_id):
            return
        # Hold the frame latch for the duration of the SSD write — the
        # §2.5 latch-contention effect.
        busy = self.env.event()
        frame.io_busy = busy
        frame.busy_reason = "admission-write"
        started = self.env.now
        try:
            cached = yield from self._cache_tac(frame.page_id, frame.version)
            if cached:
                self._tm_admission_writes.inc()
        finally:
            frame.io_busy = None
            frame.busy_reason = None
            busy.succeed()
            if self._tracer.enabled:
                self._tracer.complete("admission_write", started,
                                      self.env.now, "ssd", "ssd_manager",
                                      {"page": frame.page_id})

    def _admit(self, page_id: int) -> bool:
        """Temperature admission: always before the fill threshold, then
        only if hotter than the coldest cached page."""
        if self.used_frames < self.config.fill_target_frames:
            return True
        if self.table.free_count > 0:
            return True
        coldest = self.temp_heap.peek()
        if coldest is None:
            return True
        return self.temperature_of(page_id) > self._record_temperature(coldest)

    def _cache_tac(self, page_id: int, version: int):
        """Process step: write one page into the SSD, TAC-style."""
        if self.detached:
            return False
        if self._throttled():
            self.stats.declined_throttle += 1
            self._tm_declined.inc()
            return False
        existing = self.table.lookup(page_id)
        if existing is not None:
            if existing.valid and existing.version == version:
                existing.record_access(self.env.now)
                return True
            self._drop_record(existing)
        record = self.table.take_free()
        if record is None:
            victim = self.temp_heap.pop()
            if victim is None:
                return False
            self.stats.evictions += 1
            self._tm_evictions.inc()
            self.table.release(victim)
            record = self.table.take_free()
        self.table.install(record, page_id, version, dirty=False,
                           now=self.env.now)
        self.temp_heap.push(record)
        self.stats.writes += 1
        self._tm_writes.inc()
        if self._tracer.enabled:
            self._tracer.instant("admit", "ssd", "ssd_manager",
                                 {"page": page_id, "dirty": False})
        ok = yield from self._ssd_write_frame(record.frame_no,
                                              ctx=ADMISSION_CTX)
        if not ok:
            # The image never reached the SSD; drop the claim unless the
            # record was already invalidated or reused meanwhile.
            if (record.valid and record.page_id == page_id
                    and record.version == version):
                self._drop_record(record)
            return False
        return True

    def on_evict_clean(self, frame: Frame):
        """TAC caches on read, not on eviction: nothing to do."""
        return
        yield  # pragma: no cover - makes this a generator

    def on_evict_dirty(self, frame: Frame):
        """Step (iv): write to disk; if an *invalidated* version of the
        page sits in the SSD, also write the new version there."""
        disk_write = self.env.process(
            self.disk.write(frame.page_id, frame.version, sequential=False,
                            ctx=EVICTION_CTX))
        record = self.table.lookup(frame.page_id)
        if record is not None and not record.valid:
            ssd_write = self.env.process(
                self._revalidate_write(record, frame.page_id, frame.version))
            yield self.env.all_of([disk_write, ssd_write])
        else:
            yield disk_write

    def _revalidate_write(self, record, page_id: int, version: int):
        if self.detached:
            return
        if self._throttled():
            self.stats.declined_throttle += 1
            self._tm_declined.inc()
            return
        if (not record.occupied or record.page_id != page_id
                or record.valid):
            # The frame's state changed between scheduling and execution
            # (another write re-validated or replaced it): stand down.
            return
        self.table.revalidate(record, version, self.env.now)
        self.temp_heap.push(record)
        self.stats.writes += 1
        self._tm_writes.inc()
        ok = yield from self._ssd_write_frame(record.frame_no,
                                              ctx=EVICTION_CTX)
        if not ok:
            # Write never landed: the record must not claim the version.
            if (record.occupied and record.valid
                    and record.page_id == page_id
                    and record.version == version):
                self.table.invalidate_logical(record)

    # ------------------------------------------------------------------
    # Logical invalidation (§2.5: the frame is *not* reclaimed)
    # ------------------------------------------------------------------

    def invalidate(self, page_id: int) -> None:
        """Logical invalidation: mark invalid but keep the frame."""
        record = self.table.lookup(page_id)
        if record is not None and record.valid:
            self.stats.invalidations += 1
            self._tm_invalidations.inc()
            self.table.invalidate_logical(record)
            # The record stays in the temperature heap: TAC may replace a
            # valid page while invalid ones linger — the §4.2 waste.

    def _drop_record(self, record) -> None:
        self.temp_heap.remove(record)
        self.table.release(record)

    @property
    def wasted_frames(self) -> int:
        """Occupied-but-invalid SSD frames (the paper's 7–10 GB waste)."""
        return self.table.invalid_count

    def _clear_ssd_state(self) -> None:
        """Detach/cold restart also empties the temperature heap (extent
        temperatures themselves are statistics, not mapping state, and
        survive — as they would in a server that logs them)."""
        super()._clear_ssd_state()
        self.temp_heap.clear()

    def checkpoint_write(self, frame: Frame):
        """Checkpoint flush: disk write, plus the SSD if an invalidated
        copy can be refreshed (mirrors the eviction flow)."""
        yield from self.on_evict_dirty(frame)
