"""The paper's contribution: SSD buffer-pool extension designs.

This package implements the storage-module extension of the paper's
Figure 1 — an *SSD manager* sitting between the buffer manager and the
disk manager — in four flavours plus the baseline:

* :class:`~repro.core.cw.CleanWriteManager` (**CW**) — dirty evictions go
  only to disk; the SSD caches clean pages.
* :class:`~repro.core.dw.DualWriteManager` (**DW**) — dirty evictions go
  to both the SSD and the disk (write-through).
* :class:`~repro.core.lc.LazyCleaningManager` (**LC**) — dirty evictions
  go only to the SSD; a background lazy-cleaner thread copies dirty SSD
  pages to disk (write-back), governed by the dirty-fraction threshold λ.
* :class:`~repro.core.tac.TemperatureAwareManager` (**TAC**) — the Canim
  et al. (VLDB 2010) baseline: extent temperatures, write-through on read,
  logical invalidation.
* :class:`~repro.core.ssd_manager.NoSsdManager` (**noSSD**) — the
  unmodified engine.
* :class:`~repro.core.ls.LogStructuredManager` (**LS**) — this
  reproduction's extension beyond the paper: the SSD laid out as an
  append-only log with group-commit admission and GC-aware tail
  reclamation, designed against the modelled flash internals of
  :mod:`repro.storage.ftl` (DESIGN.md §10).

All designs share the Figure 4 data structures
(:mod:`~repro.core.ssd_buffer_table`), LRU-2 replacement over clean/dirty
heaps (:mod:`~repro.core.heaps`), the random-only admission policy with
aggressive filling (:mod:`~repro.core.admission`), throttle control, and
multi-page trimming (§3.3).
"""

from repro.core.config import SsdDesignConfig
from repro.core.ssd_buffer_table import SsdBufferTable, SsdRecord
from repro.core.heaps import LazyMinHeap
from repro.core.admission import AdmissionPolicy
from repro.core.ssd_manager import NoSsdManager, SsdManagerBase, TrimPlan
from repro.core.cw import CleanWriteManager
from repro.core.dw import DualWriteManager
from repro.core.lc import LazyCleaningManager
from repro.core.ls import LogStructuredManager
from repro.core.tac import TemperatureAwareManager
from repro.core.rotating import RotatingSsdManager
from repro.core.exclusive import ExclusiveSsdManager

#: Registry mapping design names used throughout the paper's figures to
#: the classes implementing them.  ``ROT`` and ``EXCL`` are the related-
#: work designs the paper discusses in §5 (Holloway's rotating SSD and
#: Koltsidas & Viglas's exclusive approach), implemented for the
#: extended design-comparison benchmark.
DESIGNS = {
    "noSSD": NoSsdManager,
    "CW": CleanWriteManager,
    "DW": DualWriteManager,
    "LC": LazyCleaningManager,
    "LS": LogStructuredManager,
    "TAC": TemperatureAwareManager,
    "ROT": RotatingSsdManager,
    "EXCL": ExclusiveSsdManager,
}

__all__ = [
    "AdmissionPolicy",
    "CleanWriteManager",
    "DESIGNS",
    "DualWriteManager",
    "ExclusiveSsdManager",
    "LazyCleaningManager",
    "LazyMinHeap",
    "LogStructuredManager",
    "NoSsdManager",
    "RotatingSsdManager",
    "SsdBufferTable",
    "SsdDesignConfig",
    "SsdManagerBase",
    "SsdRecord",
    "TemperatureAwareManager",
    "TrimPlan",
]
