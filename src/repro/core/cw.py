"""The Clean-Write (CW) design (§2.3.1).

Only clean pages are ever cached in the SSD.  A dirty page evicted from
the buffer pool is written to disk alone, so every SSD copy is identical
to its disk copy and the checkpoint/recovery logic needs no change.  The
paper finds CW consistently slower than DW and LC (21.6% / 23.3% on the
TPC-E 20K-customer database) because the hot, frequently updated part of
the working set never benefits from the SSD.
"""

from __future__ import annotations

from repro.core.ssd_manager import SsdManagerBase
from repro.engine.page import Frame
from repro.telemetry import EVICTION_CTX


class CleanWriteManager(SsdManagerBase):
    """CW: never write dirty pages to the SSD."""

    __slots__ = ()

    name = "CW"

    def on_evict_dirty(self, frame: Frame):
        """Dirty evictions go to disk only; the SSD is not touched.

        (The dirtying itself already invalidated any SSD copy.)
        """
        yield from self.disk.write(frame.page_id, frame.version,
                                   sequential=False, ctx=EVICTION_CTX)
