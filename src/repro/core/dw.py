"""The Dual-Write (DW) design (§2.3.2).

A dirty page evicted from the buffer pool is written "simultaneously" to
both the database on disk and (if it qualifies for admission) the SSD —
a write-through cache for dirty pages.  SSD and disk copies therefore
stay identical (barring a crash between the two writes, which recovery
repairs from the log), so checkpoint/recovery logic is unchanged.

DW also implements the §3.2 checkpoint extension: dirty pages flushed by
a checkpoint that are marked *random* are written to the SSD as well as
the disk, filling the SSD faster with useful data.
"""

from __future__ import annotations

from repro.core.ssd_manager import SsdManagerBase
from repro.engine.page import Frame
from repro.telemetry import CHECKPOINT_CTX, EVICTION_CTX


class DualWriteManager(SsdManagerBase):
    """DW: write-through caching of dirty evictions."""

    __slots__ = ()

    name = "DW"

    def on_evict_dirty(self, frame: Frame):
        """Write to disk and SSD in parallel; the frame is reusable when
        both complete (the paper's "synchronize dirty page writes")."""
        disk_write = self.env.process(
            self.disk.write(frame.page_id, frame.version, sequential=False,
                            ctx=EVICTION_CTX))
        if self.admission.qualifies(frame, self.admission_fill_level):
            ssd_write = self.env.process(
                self._cache_page(frame.page_id, frame.version, dirty=False,
                                 ctx=EVICTION_CTX))
            yield self.env.all_of([disk_write, ssd_write])
        else:
            yield disk_write

    def checkpoint_write(self, frame: Frame):
        """§3.2: checkpointed dirty random pages also prime the SSD."""
        disk_write = self.env.process(
            self.disk.write(frame.page_id, frame.version, sequential=False,
                            ctx=CHECKPOINT_CTX))
        if not frame.sequential:
            ssd_write = self.env.process(
                self._cache_page(frame.page_id, frame.version, dirty=False,
                                 ctx=CHECKPOINT_CTX))
            yield self.env.all_of([disk_write, ssd_write])
        else:
            yield disk_write
